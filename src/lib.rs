//! Umbrella crate for the SDDS reproduction workspace.
//!
//! This crate re-exports the public API of every member crate so that
//! integration tests and examples at the repository root can exercise the
//! whole stack through one dependency. Library users should depend on the
//! individual crates (most commonly [`sdds`]) directly.

pub use sdds;
pub use sdds_compiler as compiler;
pub use sdds_disk as disk;
pub use sdds_power as power;
pub use sdds_runtime as runtime;
pub use sdds_storage as storage;
pub use sdds_workloads as workloads;
pub use simkit;
