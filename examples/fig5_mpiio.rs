//! The paper's Fig. 5 code, transcribed through the MPI-IO-style front
//! end, then compiled: slack analysis, scheduling, and a dump of the
//! per-process scheduling table in its on-disk format.
//!
//! ```text
//! cargo run --release --example fig5_mpiio
//! ```

use sdds_repro::compiler::mpiio::{MpiApp, MpiAppExt};
use sdds_repro::compiler::{analyze_slacks, SchedulerConfig, SlotGranularity};
use sdds_repro::storage::StripingLayout;
use simkit::SimDuration;

fn main() {
    // MPI_File_open(..., U, &fh_U, ...); // Open files U, V, and W
    let r = 6; // R x R blocks per matrix
    let mut app = MpiApp::new("fig5-matmul", 4);
    let u = app.file_open("U", 128 * 1024, r);
    let v = app.file_open("V", 128 * 1024, r);
    let w = app.file_open("W", 128 * 1024, r * r);
    let (ru, rv, rw) = (app.region_of(u), app.region_of(v), app.region_of(w));

    // A setup phase before the multiplication (matrix generation in the
    // real code): an I/O-free stretch the scheduler can prefetch into.
    app.compute_phase(10, SimDuration::from_millis(300));

    // for m = 1, R, 1 {                // Loop on horizontal file block
    //   MPI_File_read(fh_U, ...);      // Read next block of matrix U
    //   for n = 1, R, 1 {              // Loop on vertical file block
    //     MPI_File_read(fh_V, ...);    // Read next block of matrix V
    //     for i, j, k ... W += U * V;  // Actual matrix product
    //     MPI_File_write(fh_W, ...);   // Write block of W
    //   }
    // }
    app.parallel_for("m", 0, r - 1, |body| {
        body.read(u, |e| e.var("m").rank(ru));
        body.nested_for("n", 0, r - 1, |body| {
            body.read(v, |e| e.var("n").rank(rv));
            body.compute(SimDuration::from_millis(60));
            body.write(w, |e| e.scaled("m", r).var("n").rank(rw));
        });
    });
    let program = app.close(); // MPI_File_close(&fh_U); ...

    println!("--- the program as the compiler sees it ---");
    print!("{program}");

    let trace = program.trace(SlotGranularity::unit()).expect("valid");
    let layout = StripingLayout::paper_defaults();
    let accesses = analyze_slacks(&trace, &layout).expect("consistent trace");
    let table = SchedulerConfig::paper_defaults()
        .schedule(&accesses, &trace)
        .expect("valid scheduler configuration");
    println!(
        "\ncompiled: {} accesses, {} moved earlier, mean advance {:.1} slots",
        table.scheduled_count(),
        table.moved_earlier(),
        table.mean_advance()
    );

    // The scheduling table in its Fig. 4 hand-off format (first lines).
    let mut buf = Vec::new();
    table.write_tsv(&mut buf).expect("in-memory write");
    let text = String::from_utf8(buf).expect("utf8");
    println!("\n--- scheduling table (first 8 records) ---");
    for line in text.lines().take(9) {
        println!("{line}");
    }
    println!("... ({} records total)", table.scheduled_count());
}
