//! Quickstart: run one application under the Default Scheme and under the
//! history-based multi-speed policy, with and without the software-directed
//! data access scheduling framework.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sdds_repro::power::PolicyKind;
use sdds_repro::sdds::metrics::{energy_savings, perf_degradation};
use sdds_repro::sdds::{run, SystemConfig};
use sdds_repro::workloads::{App, WorkloadScale};

fn main() {
    // A small configuration so the example finishes in a few seconds:
    // 16 processes, half-length phases, short compute gaps.
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = WorkloadScale {
        procs: 16,
        factor: 0.5,
        gap_factor: 0.5,
    };

    let app = App::Astro;
    println!("application: {app}");

    // 1. The Default Scheme: no power management, no software scheme.
    let default = run(app, &cfg).expect("valid configuration");
    println!(
        "default scheme:     exec {:7.1} s   energy {:9.0} J",
        default.result.exec_time.as_secs_f64(),
        default.result.energy_joules
    );

    // 2. History-based multi-speed disks, hardware policy alone.
    let history_cfg = cfg.with_policy(PolicyKind::history_based_default());
    let history = run(app, &history_cfg).expect("valid configuration");
    println!(
        "history-based:      exec {:7.1} s   energy {:9.0} J   savings {:5.1}%   perf {:+5.1}%",
        history.result.exec_time.as_secs_f64(),
        history.result.energy_joules,
        energy_savings(&default, &history),
        perf_degradation(&default, &history),
    );

    // 3. The same policy with the compiler-directed scheduling framework:
    //    slack analysis, data access scheduling, and the runtime prefetcher.
    let scheme = run(app, &history_cfg.with_scheme(true)).expect("valid configuration");
    println!(
        "history + scheme:   exec {:7.1} s   energy {:9.0} J   savings {:5.1}%   perf {:+5.1}%",
        scheme.result.exec_time.as_secs_f64(),
        scheme.result.energy_joules,
        energy_savings(&default, &scheme),
        perf_degradation(&default, &scheme),
    );
    println!(
        "scheme compiled {} accesses in {:.2} s; moved {} earlier (mean advance {:.1} slots)",
        scheme.analyzed_accesses, scheme.compile_seconds, scheme.moved_earlier, scheme.mean_advance
    );
    println!(
        "prefetcher: issued {}, buffer hits {}, misses {}",
        scheme.result.prefetch.issued, scheme.result.buffer.hits, scheme.result.buffer.misses
    );

    // 4. The idle-period story behind the numbers (Fig. 12's CDFs).
    println!("\nidle-period CDF (without -> with the scheme):");
    let without = default.result.idle_histogram.cdf();
    let with = scheme.result.idle_histogram.cdf();
    for ((upto, a), (_, b)) in without.iter().zip(with.iter()) {
        println!(
            "  <= {:>9}: {:5.1}% -> {:5.1}%",
            upto.to_string(),
            a * 100.0,
            b * 100.0
        );
    }
}
