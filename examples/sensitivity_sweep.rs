//! A miniature version of the paper's §V-D sensitivity study: sweep the
//! number of I/O nodes and the scheduler's δ and θ parameters on one
//! application, printing the additional benefit the software scheme brings
//! over the history-based hardware policy.
//!
//! ```text
//! cargo run --release --example sensitivity_sweep
//! ```

use sdds_repro::sdds::experiments::{fig13c_io_nodes, fig13d_delta, fig14_theta};
use sdds_repro::sdds::SystemConfig;
use sdds_repro::workloads::{App, WorkloadScale};

fn main() {
    let mut base = SystemConfig::paper_defaults();
    base.scale = WorkloadScale {
        procs: 8,
        factor: 0.5,
        gap_factor: 0.5,
    };
    let apps = [App::Madbench2];

    println!("Fig. 13(c) (mini): scheme benefit over history-based vs I/O nodes");
    for (nodes, benefit) in
        fig13c_io_nodes(&base, &apps, &[2, 4, 8, 16]).expect("valid configuration")
    {
        println!("  {nodes:>2} nodes: {benefit:+6.2}%");
    }

    println!("\nFig. 13(d) (mini): scheme benefit vs delta");
    for (delta, benefit) in
        fig13d_delta(&base, &apps, &[5, 10, 20, 40, 80]).expect("valid configuration")
    {
        println!("  delta {delta:>2}: {benefit:+6.2}%");
    }

    println!("\nFig. 14 (mini): theta sensitivity");
    for p in fig14_theta(&base, &apps, &[2, 4, 6, 8]).expect("valid configuration") {
        println!(
            "  theta {}: energy reduction {:+6.2}%, perf improvement {:+6.2}%",
            p.theta, p.energy_reduction, p.perf_improvement
        );
    }
}
