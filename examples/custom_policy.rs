//! Implementing a custom disk power-management policy against the public
//! `EnergyPolicy` trait, and racing it against the built-in strategies.
//!
//! The custom policy is a *two-speed threshold* controller: after a fixed
//! idleness it drops the whole node to half speed, and only returns to
//! full speed when a request arrives — a middle ground between the paper's
//! staggered descent and a plain timeout.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use sdds_repro::disk::{Disk, DiskParams, Rpm, RpmChangePriority};
use sdds_repro::power::{Decision, EnergyPolicy, PolicyEvent, PolicyKind, PoweredArray};
use sdds_repro::sdds::{run, SystemConfig};
use sdds_repro::workloads::{App, WorkloadScale};
use simkit::{SimDuration, SimTime};

/// Drop to `low` after `timeout` of node idleness; recover on arrival.
#[derive(Debug)]
struct TwoSpeed {
    timeout: SimDuration,
    low: Rpm,
    max: Rpm,
}

impl TwoSpeed {
    fn new(params: &DiskParams, timeout: SimDuration) -> Self {
        // Pick the middle of the supported speed range.
        let levels = params.rpm_levels();
        TwoSpeed {
            timeout,
            low: levels[levels.len() / 2],
            max: params.max_rpm,
        }
    }
}

impl EnergyPolicy for TwoSpeed {
    fn name(&self) -> &'static str {
        "two-speed"
    }

    fn decide(&mut self, event: PolicyEvent, disks: &[Disk], out: &mut Decision) {
        match event {
            PolicyEvent::IdleStart { t } => out.set_timer(t + self.timeout),
            PolicyEvent::Timer { .. } => {
                for (i, d) in disks.iter().enumerate() {
                    if d.outstanding() == 0 && d.current_rpm() == Some(self.max) {
                        out.set_rpm(i, self.low, RpmChangePriority::Immediate);
                    }
                }
                out.clear_timer();
            }
            PolicyEvent::RequestArrival { .. } => {
                for (i, d) in disks.iter().enumerate() {
                    if d.current_rpm() != Some(self.max) {
                        out.set_rpm(i, self.max, RpmChangePriority::Immediate);
                    }
                }
            }
            PolicyEvent::AfterSubmit { .. } => {}
        }
    }
}

fn main() {
    // First exercise the policy directly against a single powered node.
    let params = DiskParams::paper_defaults();
    let mut node = PoweredArray::with_policy(
        params.clone(),
        1,
        Box::new(TwoSpeed::new(&params, SimDuration::from_millis(500))),
    )
    .expect("valid disk parameters");
    node.submit(
        0,
        sdds_repro::disk::DiskRequest::new(0, sdds_repro::disk::RequestKind::Read, 0, 64),
        SimTime::ZERO,
    );
    node.finish(SimTime::ZERO + SimDuration::from_secs(30));
    println!(
        "unit drive: {} rpm changes over 30 s of mostly-idle time, {:.0} J",
        node.disks()[0].counters().rpm_changes,
        node.total_joules()
    );

    // Then compare against the built-in strategies on a real workload.
    // (The experiment grid uses PolicyKind; custom policies plug in at the
    // PoweredArray level, so here we reuse the closest built-in for the
    // end-to-end run and show where a custom policy would slot in.)
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = WorkloadScale {
        procs: 8,
        factor: 0.5,
        gap_factor: 0.5,
    };
    let app = App::Astro;
    let default = run(app, &cfg).expect("valid configuration");
    println!(
        "\n{app} under Default:        {:8.0} J",
        default.result.energy_joules
    );
    for kind in PolicyKind::paper_strategies() {
        let o = run(app, &cfg.with_policy(kind.clone())).expect("valid configuration");
        println!(
            "{app} under {:<16} {:8.0} J ({:+.1}% energy, {:+.1}% time)",
            kind.name(),
            o.result.energy_joules,
            (o.result.energy_joules / default.result.energy_joules - 1.0) * 100.0,
            (o.result.exec_time.as_secs_f64() / default.result.exec_time.as_secs_f64() - 1.0)
                * 100.0,
        );
    }
}
