//! The paper's Fig. 5 walkthrough: an out-of-core matrix multiplication
//! written against the loop-nest IR, compiled through slack analysis and
//! data access scheduling, and executed on the simulated storage array.
//!
//! ```text
//! cargo run --release --example matrix_multiply
//! ```

use sdds_repro::compiler::{analyze_slacks, SchedulerConfig, SlotGranularity};
use sdds_repro::power::PolicyKind;
use sdds_repro::sdds::{run_program, SystemConfig};
use sdds_repro::workloads::matrix_multiply;
use simkit::SimDuration;

fn main() {
    // Each file is divided into R x R blocks (Fig. 5); 8 processes each
    // multiply their own pair of matrices.
    let r = 12;
    let program = matrix_multiply(8, r, 128 * 1024, SimDuration::from_millis(120));

    // --- What the compiler sees -----------------------------------------
    let trace = program
        .trace(SlotGranularity::unit())
        .expect("valid program");
    println!(
        "trace: {} processes, {} slots, {} I/O instances",
        trace.processes.len(),
        trace.total_slots,
        trace.io_count()
    );

    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale.procs = 8; // informational; the program fixes its own size
    let layout = cfg.storage_config().expect("valid configuration").layout;
    let accesses = analyze_slacks(&trace, &layout).expect("consistent trace");

    // Slack structure: U is read once per m-iteration (input data, prefix
    // slack); V is re-read every m-iteration; W is written (fixed points).
    let movable = accesses.iter().filter(|a| a.movable).count();
    let fixed = accesses.len() - movable;
    println!("slack analysis: {movable} movable accesses, {fixed} fixed");
    let widest = accesses
        .iter()
        .max_by_key(|a| a.slack_len())
        .expect("non-empty");
    println!(
        "widest slack: {} slots on a read of offset {} (original slot {})",
        widest.slack_len(),
        widest.io.offset,
        widest.io.slot
    );

    // --- Scheduling -------------------------------------------------------
    let table = SchedulerConfig::paper_defaults()
        .schedule(&accesses, &trace)
        .expect("valid scheduler configuration");
    println!(
        "schedule: {} of {} accesses moved earlier, mean advance {:.1} slots",
        table.moved_earlier(),
        table.scheduled_count(),
        table.mean_advance()
    );

    // Show process 0's first few table entries the way §III describes the
    // per-process scheduling tables.
    println!("\nprocess 0 scheduling table (first 10 entries):");
    for e in table.for_process(0).iter().take(10) {
        println!(
            "  slot {:>4} (orig {:>4}): {:?} {} bytes at offset {}",
            e.slot, e.io.slot, e.io.direction, e.io.len, e.io.offset
        );
    }

    // --- End-to-end execution ---------------------------------------------
    cfg.policy = PolicyKind::history_based_default();
    let without =
        run_program(&program, SlotGranularity::unit(), &cfg).expect("valid configuration");
    let with = run_program(&program, SlotGranularity::unit(), &cfg.with_scheme(true))
        .expect("valid configuration");
    println!(
        "\nhistory-based policy: exec {:.1} s / {:.0} J without the scheme",
        without.result.exec_time.as_secs_f64(),
        without.result.energy_joules
    );
    println!(
        "history-based policy: exec {:.1} s / {:.0} J with the scheme ({} buffer hits)",
        with.result.exec_time.as_secs_f64(),
        with.result.energy_joules,
        with.result.buffer.hits
    );
}
