//! Replicated object-store request generator.
//!
//! The keyed workloads of [`crate::KeyedWorkloadSpec`] drive the
//! *compiled* pipeline; the object-store stream here instead feeds the
//! replica-routing and rebuild scenario in `sdds-runtime`, which needs
//! whole-object GET/PUT traffic against a [`Placement`]: a zipfian
//! popularity skew (a few hot objects dominate), deterministic
//! pseudo-Poisson arrivals, and per-object sizes drawn once so every
//! replica of an object agrees on its length.
//!
//! Everything is a pure function of the spec: the object table and the
//! request stream come from named substreams of the spec's
//! [`StreamId::Workload`] stream, so two builds are identical and the
//! scenario reports built on top can be compared byte-for-byte.
//!
//! [`Placement`]: sdds_storage::Placement

use sdds_storage::ObjectSpec;
use simkit::{DetRng, SimDuration, SimTime, StreamId};

/// One whole-object request against the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjRequest {
    /// Arrival time.
    pub at: SimTime,
    /// Index into the object table ([`ObjectStoreSpec::objects`]).
    pub object: usize,
    /// `true` for a GET (read), `false` for a PUT (full overwrite).
    pub read: bool,
}

/// Shape of an object-store workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectStoreSpec {
    /// Objects in the store.
    pub objects: u32,
    /// Distinct locality tags; object `i` carries tag `i % tags`.
    pub tags: u32,
    /// Smallest object size in KiB (inclusive).
    pub min_kib: u64,
    /// Largest object size in KiB (inclusive).
    pub max_kib: u64,
    /// Requests to generate.
    pub ops: u32,
    /// Zipfian skew of object popularity; weight ∝ `1/(rank+1)^θ`.
    pub zipf_theta: f64,
    /// Fraction of requests that are GETs, in `[0, 1]`.
    pub read_fraction: f64,
    /// Mean inter-arrival gap of the pseudo-Poisson arrival process.
    pub mean_gap: SimDuration,
    /// RNG seed for sizes, arrivals, popularity and direction draws.
    pub seed: u64,
}

impl ObjectStoreSpec {
    /// Individual gaps are clamped to this multiple of the mean so one
    /// extreme exponential draw cannot stretch the scenario horizon.
    const GAP_CAP: f64 = 8.0;

    /// The datacenter-shaped preset the `repro rebuild` scenario runs:
    /// a read-heavy store with a tight hot set and arrivals fast enough
    /// that replica choice (queueing behind a straggler or not) shows up
    /// in the read tail.
    pub fn paper_default(seed: u64) -> Self {
        ObjectStoreSpec {
            objects: 96,
            tags: 8,
            min_kib: 256,
            max_kib: 2048,
            ops: 3000,
            zipf_theta: 0.9,
            read_fraction: 0.9,
            mean_gap: SimDuration::from_millis(60),
            seed,
        }
    }

    /// A small, fast preset for tests.
    pub fn small(seed: u64) -> Self {
        ObjectStoreSpec {
            objects: 24,
            tags: 4,
            min_kib: 64,
            max_kib: 256,
            ops: 400,
            zipf_theta: 1.0,
            read_fraction: 0.8,
            mean_gap: SimDuration::from_millis(40),
            seed,
        }
    }

    fn check(&self) {
        assert!(self.objects > 0, "at least one object");
        assert!(self.tags > 0, "at least one tag");
        assert!(self.ops > 0, "at least one request");
        assert!(
            self.min_kib > 0 && self.min_kib <= self.max_kib,
            "object sizes must satisfy 0 < min_kib <= max_kib"
        );
        assert!(
            self.zipf_theta > 0.0 && self.zipf_theta.is_finite(),
            "zipf_theta must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read_fraction must be in [0, 1]"
        );
        assert!(!self.mean_gap.is_zero(), "mean_gap must be positive");
    }

    /// Builds the object table: sizes drawn once from the `"objects"`
    /// substream, tags assigned round-robin.
    ///
    /// # Panics
    ///
    /// Panics if any spec field is out of range (see the field docs).
    pub fn object_table(&self) -> Vec<ObjectSpec> {
        self.check();
        let mut rng = DetRng::for_stream(self.seed, StreamId::Workload).substream("objects");
        (0..self.objects)
            .map(|id| ObjectSpec {
                id: u64::from(id),
                tag: id % self.tags,
                bytes: rng.range_u64(self.min_kib, self.max_kib) * 1024,
            })
            .collect()
    }

    /// Builds the request stream, sorted by arrival time.
    ///
    /// # Panics
    ///
    /// Panics if any spec field is out of range (see the field docs).
    pub fn requests(&self) -> Vec<ObjRequest> {
        self.check();
        // Zipfian CDF over objects: weight(k) ∝ 1 / (k + 1)^θ.
        let mut cdf = Vec::with_capacity(self.objects as usize);
        let mut total = 0.0f64;
        for k in 0..self.objects {
            total += 1.0 / f64::from(k + 1).powf(self.zipf_theta);
            cdf.push(total);
        }
        let mut rng = DetRng::for_stream(self.seed, StreamId::Workload).substream("requests");
        let mut at = SimTime::ZERO;
        let mut out = Vec::with_capacity(self.ops as usize);
        for _ in 0..self.ops {
            // Deterministic exponential draw: u in [0, 1) keeps the log
            // argument in (0, 1], and the cap bounds the extreme tail.
            let u = rng.unit_f64();
            let scale = (-(1.0 - u).ln()).min(Self::GAP_CAP);
            at += self.mean_gap.mul_f64(scale);
            let draw = rng.unit_f64() * total;
            let object = cdf
                .partition_point(|&c| c < draw)
                .min(self.objects as usize - 1);
            let read = rng.unit_f64() < self.read_fraction;
            out.push(ObjRequest { at, object, read });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = ObjectStoreSpec::small(42);
        assert_eq!(spec.object_table(), spec.object_table());
        assert_eq!(spec.requests(), spec.requests());
        let other = ObjectStoreSpec::small(43);
        assert_ne!(spec.requests(), other.requests(), "seed must matter");
    }

    #[test]
    fn arrivals_are_sorted_and_objects_in_range() {
        let spec = ObjectStoreSpec::paper_default(7);
        let table = spec.object_table();
        assert_eq!(table.len(), spec.objects as usize);
        for o in &table {
            assert!(o.bytes >= spec.min_kib * 1024 && o.bytes <= spec.max_kib * 1024);
            assert!(o.tag < spec.tags);
        }
        let reqs = spec.requests();
        assert_eq!(reqs.len(), spec.ops as usize);
        for w in reqs.windows(2) {
            assert!(w[0].at <= w[1].at, "arrivals must be sorted");
        }
        assert!(reqs.iter().all(|r| r.object < table.len()));
    }

    #[test]
    fn popularity_is_skewed_and_read_heavy() {
        let spec = ObjectStoreSpec::paper_default(11);
        let reqs = spec.requests();
        let mut counts = vec![0u32; spec.objects as usize];
        let mut reads = 0u32;
        for r in &reqs {
            counts[r.object] += 1;
            if r.read {
                reads += 1;
            }
        }
        // The hottest decile must dominate a uniform share.
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let hot: u32 = sorted.iter().take(spec.objects as usize / 10).sum();
        assert!(
            u64::from(hot) * 4 > u64::from(spec.ops),
            "top decile should carry >25% of traffic, got {hot}/{}",
            spec.ops
        );
        let frac = f64::from(reads) / f64::from(spec.ops);
        assert!((frac - spec.read_fraction).abs() < 0.05);
    }
}
