//! Generators for the six applications of Table III.
//!
//! Each application alternates three kinds of activity, whose mixture
//! produces the idle-period economics of Fig. 12(a):
//!
//! * **I/O phases** — dense loops with one access every few tens of
//!   milliseconds; these produce the mass of very short disk idle periods
//!   (86.4% below 100 ms on average in the paper).
//! * **Medium gaps** — compute stretches of a few seconds between phases;
//!   long enough for multi-speed disks to exploit, far too short for a
//!   spin-down (break-even ≈ 1 minute with Table II constants).
//! * **Long gaps** — a few compute stretches of 30–90 s per run; the only
//!   places where plain spin-down pays off, mirroring the ~3.5% of idle
//!   periods above 5 s in Fig. 12(a) that carry most of the idle time.
//!
//! The long gaps are emitted between *chunks* of the outer phase loop
//! (affine offsets take a per-chunk base constant), so the generated
//! programs stay within the affine class the polyhedral path resolves.

use sdds_compiler::ir::{IoDirection, Program};
use sdds_compiler::SlotGranularity;
use sdds_storage::FileId;
use simkit::SimDuration;

/// One file stripe (Table II).
const STRIPE: i64 = 64 * 1024;

/// The applications of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Hartree–Fock method: SCF iterations re-reading large read-only
    /// integral files and writing small Fock-matrix updates; I/O-dense
    /// with very short disk idle periods.
    Hf,
    /// Synthetic Aperture Radar kernel: streams raw frames in, runs a long
    /// FFT phase, writes the image out.
    Sar,
    /// Analysis of astronomical data: repeated sky-survey scans with an
    /// analysis gap and a refinement pass re-reading a subset.
    Astro,
    /// Pollutant-distribution modeling (out-of-core SPEC apsi): timestep
    /// loop reading the previous plane and writing the next one.
    Apsi,
    /// Cosmic microwave background calculation (MADbench2): write-all /
    /// compute / read-all matrix phases.
    Madbench2,
    /// Quantum chromodynamics (out-of-core SPEC wupwise): re-reads a
    /// read-only gauge field and carries fermion planes between
    /// iterations; the longest-running application.
    Wupwise,
}

/// Scale of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadScale {
    /// Number of client processes (Table II: 32).
    pub procs: usize,
    /// Multiplier on each application's phase count. `1.0` reproduces the
    /// paper-shaped runs (a few minutes of simulated time per app, with
    /// request rates and gap structure preserving the Fig. 12(a) idle
    /// shapes); smaller values give fast test runs.
    pub factor: f64,
    /// Multiplier on the long-gap durations; `1.0` for paper-shaped runs,
    /// smaller in tests so spin-down cycles still fit.
    pub gap_factor: f64,
}

// Scales are built from finite literals and CLI-parsed floats (never
// NaN), so bitwise hashing is consistent with the derived `PartialEq`;
// this makes `(App, WorkloadScale, SlotGranularity)` usable as a
// compilation-cache key.
impl Eq for WorkloadScale {}

impl std::hash::Hash for WorkloadScale {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_usize(self.procs);
        state.write_u64(self.factor.to_bits());
        state.write_u64(self.gap_factor.to_bits());
    }
}

impl WorkloadScale {
    /// The paper-shaped scale: 32 processes, full phase counts and gaps.
    pub fn paper() -> Self {
        WorkloadScale {
            procs: 32,
            factor: 1.0,
            gap_factor: 1.0,
        }
    }

    /// A small scale for unit and integration tests.
    pub fn test() -> Self {
        WorkloadScale {
            procs: 4,
            factor: 0.25,
            gap_factor: 0.05,
        }
    }

    fn phases(&self, base: u32) -> i64 {
        ((base as f64 * self.factor).round() as i64).max(1)
    }

    fn gap(&self, seconds: f64) -> SimDuration {
        SimDuration::from_secs_f64((seconds * self.gap_factor).max(0.05))
    }
}

impl App {
    /// All six applications in Table III order.
    pub fn all() -> [App; 6] {
        [
            App::Hf,
            App::Sar,
            App::Astro,
            App::Apsi,
            App::Madbench2,
            App::Wupwise,
        ]
    }

    /// The application's name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            App::Hf => "hf",
            App::Sar => "sar",
            App::Astro => "astro",
            App::Apsi => "apsi",
            App::Madbench2 => "madbench2",
            App::Wupwise => "wupwise",
        }
    }

    /// Table III reference numbers: (execution minutes, disk energy in
    /// joules) under the Default Scheme on the authors' testbed.
    pub fn table3_reference(&self) -> (f64, f64) {
        match self {
            App::Hf => (27.9, 3_637.4),
            App::Sar => (11.1, 1_227.3),
            App::Astro => (16.8, 2_837.6),
            App::Apsi => (13.7, 3_094.1),
            App::Madbench2 => (9.8, 1_955.3),
            App::Wupwise => (39.8, 4_812.1),
        }
    }

    /// Scheduling-slot granularity used for this application.
    pub fn granularity(&self) -> SlotGranularity {
        SlotGranularity::unit()
    }

    /// Builds the application's loop-nest program at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale.procs` is zero.
    pub fn program(&self, scale: &WorkloadScale) -> Program {
        assert!(scale.procs > 0, "workloads need at least one process");
        match self {
            App::Hf => hf(scale),
            App::Sar => sar(scale),
            App::Astro => astro(scale),
            App::Apsi => apsi(scale),
            App::Madbench2 => madbench2(scale),
            App::Wupwise => wupwise(scale),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Splits `total` phases into `chunks` contiguous chunks and emits each
/// through `emit(program, chunk_base, chunk_len)`, separated by long gaps
/// of `gap` spread over `gap_slots` scheduling slots.
fn chunked<F>(
    program: &mut Program,
    total: i64,
    chunks: i64,
    gap: SimDuration,
    gap_slots: u32,
    mut emit: F,
) where
    F: FnMut(&mut Program, i64, i64),
{
    let chunks = chunks.clamp(1, total);
    let per = total / chunks;
    let extra = total % chunks;
    let mut base = 0;
    for c in 0..chunks {
        let len = per + i64::from(c < extra);
        if len == 0 {
            continue;
        }
        emit(program, base, len);
        base += len;
        if c + 1 < chunks {
            program.push_skip(gap_slots, gap / gap_slots as u64);
        }
    }
}

/// Hartree–Fock: SCF iterations streaming two integral files (fresh
/// tiles per pass — the real data sets dwarf the server caches) plus
/// small Fock-matrix writes. Dense access cadence keeps hf's idle
/// periods short (Fig. 12(a): >90% below 50 ms); three ~90 s gaps model
/// the Fock-assembly stages that never touch the disks.
fn hf(scale: &WorkloadScale) -> Program {
    let s_count = scale.phases(22);
    let procs = scale.procs as i64;
    let blk = 2 * STRIPE; // 128 KB accesses spanning two I/O nodes
    let b_ints = 30i64;
    let mut p = Program::new("hf", scale.procs);
    let span0 = b_ints * blk + STRIPE; // one-stripe stagger per process
    let ints0 = p.add_file(FileId(0), (s_count * procs * span0) as u64);
    let span1 = (b_ints / 2) * blk + STRIPE;
    let ints1 = p.add_file(FileId(1), (s_count * procs * span1) as u64);
    let span_w = 4 * blk + STRIPE;
    let fock = p.add_file(FileId(2), (s_count * procs * span_w) as u64);
    let gap = scale.gap(90.0);
    chunked(&mut p, s_count, 4, gap, 1, |p, base, len| {
        p.push_loop("s", 0, len - 1, move |b| {
            b.loop_("i", 0, b_ints - 1, move |b| {
                b.io(
                    IoDirection::Read,
                    ints0,
                    |e| {
                        e.term("s", procs * span0)
                            .term("p", span0)
                            .term("i", blk)
                            .plus(base * procs * span0)
                    },
                    blk as u64,
                );
                b.compute(ms(67));
                b.skip(5, ms(67));
            });
            b.loop_("j", 0, b_ints / 2 - 1, move |b| {
                b.io(
                    IoDirection::Read,
                    ints1,
                    |e| {
                        e.term("s", procs * span1)
                            .term("p", span1)
                            .term("j", blk)
                            .plus(base * procs * span1)
                    },
                    blk as u64,
                );
                b.compute(ms(67));
                b.skip(5, ms(67));
            });
            b.skip(1, ms(2_000)); // Fock assembly: a ~2 s medium gap
            b.loop_("k", 0, 3, move |b| {
                b.io(
                    IoDirection::Write,
                    fock,
                    |e| {
                        e.term("s", procs * span_w)
                            .term("p", span_w)
                            .term("k", blk)
                            .plus(base * procs * span_w)
                    },
                    blk as u64,
                );
                b.compute(ms(67));
                b.skip(5, ms(67));
            });
        });
    });
    p
}

/// SAR kernel: stream a raw frame in, run the FFT as a medium compute
/// gap, write the image; three ~90 s gaps model the geo-registration
/// stages.
fn sar(scale: &WorkloadScale) -> Program {
    let frames = scale.phases(10);
    let procs = scale.procs as i64;
    let blk = 4 * STRIPE; // 256 KB accesses spanning four I/O nodes
    let mut p = Program::new("sar", scale.procs);
    let span_r = 24 * blk + STRIPE; // one-stripe stagger per process
    let raw = p.add_file(FileId(0), (frames * procs * span_r) as u64);
    let span_w = 8 * blk + STRIPE;
    let img = p.add_file(FileId(1), (frames * procs * span_w) as u64);
    let gap = scale.gap(90.0);
    chunked(&mut p, frames, 4, gap, 1, |p, base, len| {
        p.push_loop("f", 0, len - 1, move |b| {
            b.loop_("i", 0, 23, move |b| {
                b.io(
                    IoDirection::Read,
                    raw,
                    |e| {
                        e.term("f", procs * span_r)
                            .term("p", span_r)
                            .term("i", blk)
                            .plus(base * procs * span_r)
                    },
                    blk as u64,
                );
                b.compute(ms(100));
                b.skip(5, ms(100));
            });
            b.skip(1, ms(2_000)); // FFT: a ~2 s medium gap
            b.loop_("j", 0, 7, move |b| {
                b.io(
                    IoDirection::Write,
                    img,
                    |e| {
                        e.term("f", procs * span_w)
                            .term("p", span_w)
                            .term("j", blk)
                            .plus(base * procs * span_w)
                    },
                    blk as u64,
                );
                b.compute(ms(84));
                b.skip(5, ms(84));
            });
        });
    });
    p
}

/// Astronomical data analysis: scan an epoch-unique survey slice,
/// analyze (medium gap), re-read a subset (server-cache locality) and
/// record results; three ~90 s gaps model the model-fitting stages.
fn astro(scale: &WorkloadScale) -> Program {
    let epochs = scale.phases(8);
    let procs = scale.procs as i64;
    let blk = 2 * STRIPE;
    let mut p = Program::new("astro", scale.procs);
    let span_s = 30 * blk + STRIPE; // one-stripe stagger per process
    let sky = p.add_file(FileId(0), (epochs * procs * span_s) as u64);
    let span_c = 6 * blk + STRIPE;
    let cat = p.add_file(FileId(1), (epochs * procs * span_c) as u64);
    let gap = scale.gap(90.0);
    chunked(&mut p, epochs, 4, gap, 1, |p, base, len| {
        p.push_loop("e", 0, len - 1, move |b| {
            b.loop_("i", 0, 29, move |b| {
                b.io(
                    IoDirection::Read,
                    sky,
                    |e| {
                        e.term("e", procs * span_s)
                            .term("p", span_s)
                            .term("i", blk)
                            .plus(base * procs * span_s)
                    },
                    blk as u64,
                );
                b.compute(ms(84));
                b.skip(5, ms(84));
            });
            b.skip(1, ms(2_000)); // analysis: a ~2 s medium gap
            b.loop_("j", 0, 9, move |b| {
                // Refinement re-reads every third scan block.
                b.io(
                    IoDirection::Read,
                    sky,
                    |e| {
                        e.term("e", procs * span_s)
                            .term("p", span_s)
                            .term("j", 3 * blk)
                            .plus(base * procs * span_s)
                    },
                    blk as u64,
                );
                b.compute(ms(84));
                b.skip(5, ms(84));
            });
            b.loop_("k", 0, 5, move |b| {
                b.io(
                    IoDirection::Write,
                    cat,
                    |e| {
                        e.term("e", procs * span_c)
                            .term("p", span_c)
                            .term("k", blk)
                            .plus(base * procs * span_c)
                    },
                    blk as u64,
                );
                b.compute(ms(67));
                b.skip(5, ms(67));
            });
        });
    });
    p
}

/// apsi (out-of-core): timestep loop reading plane `t` and writing plane
/// `t + lag` (the lag keeps produced data out of the server caches until
/// its reader arrives), giving multi-phase producer–consumer slacks;
/// three ~90 s gaps model the chemistry solver between sweeps.
fn apsi(scale: &WorkloadScale) -> Program {
    let steps = scale.phases(10);
    let procs = scale.procs as i64;
    let blk = 2 * STRIPE;
    let slice = 12i64; // blocks per process per plane
    let mut p = Program::new("apsi", scale.procs);
    let span = slice * blk + STRIPE; // one-stripe stagger per process
    let lag = 5i64; // write plane t+lag so reads outlive the server caches
    let grid = p.add_file(FileId(0), ((steps + lag) * procs * span) as u64);
    let gap = scale.gap(90.0);
    chunked(&mut p, steps, 4, gap, 1, |p, base, len| {
        p.push_loop("t", 0, len - 1, move |b| {
            b.loop_("i", 0, slice - 1, move |b| {
                b.io(
                    IoDirection::Read,
                    grid,
                    |e| {
                        e.term("t", procs * span)
                            .term("p", span)
                            .term("i", blk)
                            .plus(base * procs * span)
                    },
                    blk as u64,
                );
                b.compute(ms(100));
                b.skip(5, ms(100));
            });
            b.skip(1, ms(2_000)); // solver: a ~2 s medium gap
            b.loop_("j", 0, slice - 1, move |b| {
                b.io(
                    IoDirection::Write,
                    grid,
                    |e| {
                        e.term("t", procs * span)
                            .term("p", span)
                            .term("j", blk)
                            .plus((base + lag) * procs * span)
                    },
                    blk as u64,
                );
                b.compute(ms(67));
                b.skip(5, ms(67));
            });
        });
    });
    p
}

/// MADbench2: write-all / compute / read-all matrix phases whose
/// footprint exceeds the server caches, so the read-back truly hits the
/// disks; the read slack spans its phase's compute gap. Two ~110 s gaps
/// model the dense-solver stages.
fn madbench2(scale: &WorkloadScale) -> Program {
    let phases = scale.phases(3);
    let procs = scale.procs as i64;
    let blk = 4 * STRIPE;
    let mats = 64i64;
    let mut p = Program::new("madbench2", scale.procs);
    let span = mats * blk + STRIPE; // one-stripe stagger per process
    let file = p.add_file(FileId(0), (phases * procs * span) as u64);
    let gap = scale.gap(90.0);
    chunked(&mut p, phases, 3, gap, 1, |p, base, len| {
        p.push_loop("m", 0, len - 1, move |b| {
            b.loop_("i", 0, mats - 1, move |b| {
                b.io(
                    IoDirection::Write,
                    file,
                    |e| {
                        e.term("m", procs * span)
                            .term("p", span)
                            .term("i", blk)
                            .plus(base * procs * span)
                    },
                    blk as u64,
                );
                b.compute(ms(50));
                b.skip(5, ms(50));
            });
            b.skip(1, ms(2_000)); // a ~2 s medium gap
            b.loop_("j", 0, mats - 1, move |b| {
                b.io(
                    IoDirection::Read,
                    file,
                    |e| {
                        e.term("m", procs * span)
                            .term("p", span)
                            .term("j", blk)
                            .plus(base * procs * span)
                    },
                    blk as u64,
                );
                b.compute(ms(50));
                b.skip(5, ms(50));
            });
        });
    });
    p
}

/// wupwise (out-of-core): streams per-iteration gauge-field tiles and
/// carries fermion planes between iterations with a cache-defeating lag;
/// the longest run, with four ~100 s gaps for the BiCGStab solves.
fn wupwise(scale: &WorkloadScale) -> Program {
    let iters = scale.phases(16);
    let procs = scale.procs as i64;
    let blk = 2 * STRIPE;
    let mut p = Program::new("wupwise", scale.procs);
    let span_g = 16 * blk + STRIPE; // one-stripe stagger per process
    let gauge = p.add_file(FileId(0), (iters * procs * span_g) as u64);
    let span_f = 8 * blk + STRIPE;
    let lag = 5i64; // write plane it+lag so reads outlive the server caches
    let ferm = p.add_file(FileId(1), ((iters + lag) * procs * span_f) as u64);
    let gap = scale.gap(100.0);
    chunked(&mut p, iters, 5, gap, 1, |p, base, len| {
        p.push_loop("it", 0, len - 1, move |b| {
            b.loop_("g", 0, 15, move |b| {
                b.io(
                    IoDirection::Read,
                    gauge,
                    |e| {
                        e.term("it", procs * span_g)
                            .term("p", span_g)
                            .term("g", blk)
                            .plus(base * procs * span_g)
                    },
                    blk as u64,
                );
                b.compute(ms(134));
                b.skip(5, ms(134));
            });
            b.loop_("r", 0, 7, move |b| {
                b.io(
                    IoDirection::Read,
                    ferm,
                    |e| {
                        e.term("it", procs * span_f)
                            .term("p", span_f)
                            .term("r", blk)
                            .plus(base * procs * span_f)
                    },
                    blk as u64,
                );
                b.compute(ms(84));
                b.skip(5, ms(84));
            });
            b.loop_("w", 0, 7, move |b| {
                b.io(
                    IoDirection::Write,
                    ferm,
                    |e| {
                        e.term("it", procs * span_f)
                            .term("p", span_f)
                            .term("w", blk)
                            .plus((base + lag) * procs * span_f)
                    },
                    blk as u64,
                );
                b.compute(ms(67));
                b.skip(5, ms(67));
            });
            b.skip(1, ms(2_000)); // a ~2 s medium gap
        });
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_compiler::analyze_slacks;
    use sdds_storage::StripingLayout;

    #[test]
    fn all_apps_validate_and_trace_at_test_scale() {
        for app in App::all() {
            let program = app.program(&WorkloadScale::test());
            let trace = program
                .trace(app.granularity())
                .unwrap_or_else(|e| panic!("{app} failed to trace: {e}"));
            assert!(trace.io_count() > 0, "{app} performs no I/O");
            assert!(trace.total_slots > 0);
        }
    }

    #[test]
    fn all_apps_trace_at_paper_scale() {
        for app in App::all() {
            let program = app.program(&WorkloadScale::paper());
            let trace = program.trace(app.granularity()).unwrap();
            // Bounded sizes keep the scheduler tractable.
            assert!(
                trace.total_slots < 8_000,
                "{app}: {} slots is too many",
                trace.total_slots
            );
            assert!(
                trace.io_count() < 40_000,
                "{app}: {} accesses is too many",
                trace.io_count()
            );
        }
    }

    #[test]
    fn producer_consumer_apps_have_produced_reads() {
        let layout = StripingLayout::paper_defaults();
        for app in [App::Apsi, App::Madbench2, App::Wupwise] {
            // apsi and wupwise carry planes with a 5-phase write lag, so
            // the run needs enough phases for a produced read to appear.
            let program = app.program(&WorkloadScale {
                procs: 4,
                factor: 1.0,
                gap_factor: 0.05,
            });
            let trace = program.trace(app.granularity()).unwrap();
            let accesses = analyze_slacks(&trace, &layout).unwrap();
            let produced = accesses
                .iter()
                .filter(|a| a.is_read() && a.producer.is_some())
                .count();
            assert!(produced > 0, "{app} should have produced reads");
        }
    }

    #[test]
    fn input_stream_apps_have_prefix_slacks() {
        let layout = StripingLayout::paper_defaults();
        for app in [App::Hf, App::Sar, App::Astro] {
            let program = app.program(&WorkloadScale::test());
            let trace = program.trace(app.granularity()).unwrap();
            let accesses = analyze_slacks(&trace, &layout).unwrap();
            let prefix = accesses
                .iter()
                .filter(|a| a.is_read() && a.producer.is_none() && a.begin == 0)
                .count();
            assert!(prefix > 0, "{app} should have input reads");
        }
    }

    #[test]
    fn scale_factor_controls_phases() {
        let small = App::Sar.program(&WorkloadScale {
            procs: 2,
            factor: 0.5,
            gap_factor: 0.05,
        });
        let big = App::Sar.program(&WorkloadScale {
            procs: 2,
            factor: 2.0,
            gap_factor: 0.05,
        });
        let ts = small.trace(SlotGranularity::unit()).unwrap();
        let tb = big.trace(SlotGranularity::unit()).unwrap();
        assert!(tb.total_slots > ts.total_slots);
        assert!(tb.io_count() > ts.io_count());
    }

    #[test]
    fn names_and_references() {
        assert_eq!(App::Hf.name(), "hf");
        assert_eq!(App::Wupwise.to_string(), "wupwise");
        let (mins, joules) = App::Madbench2.table3_reference();
        assert_eq!(mins, 9.8);
        assert_eq!(joules, 1_955.3);
        assert_eq!(App::all().len(), 6);
    }

    #[test]
    fn offsets_stay_within_files() {
        // trace() enforces bounds; run every app at an uneven process
        // count to exercise the `p` terms.
        for app in App::all() {
            let program = app.program(&WorkloadScale {
                procs: 5,
                factor: 0.4,
                gap_factor: 0.05,
            });
            program.trace(SlotGranularity::unit()).unwrap();
        }
    }

    #[test]
    fn paper_runs_include_long_gaps() {
        // Every app at paper scale must contain at least one compute-only
        // stretch of 20 s or more (where spin-down pays off).
        for app in App::all() {
            let trace = app
                .program(&WorkloadScale::paper())
                .trace(app.granularity())
                .unwrap();
            let compute = &trace.processes[0].compute;
            // Find the longest run of consecutive I/O-free slots.
            let io_slots: std::collections::HashSet<u32> =
                trace.processes[0].ios.iter().map(|io| io.slot).collect();
            let mut longest = SimDuration::ZERO;
            let mut current = SimDuration::ZERO;
            for (slot, &cost) in compute.iter().enumerate() {
                if io_slots.contains(&(slot as u32)) {
                    current = SimDuration::ZERO;
                } else {
                    current += cost;
                    longest = longest.max(current);
                }
            }
            assert!(
                longest >= SimDuration::from_secs(20),
                "{app}: longest I/O-free stretch is only {longest}"
            );
        }
    }

    #[test]
    fn durations_roughly_track_table3_ratios() {
        // Summed compute time per process should order the apps the way
        // Table III orders their execution times (wupwise longest,
        // madbench2 shortest).
        let mut totals = Vec::new();
        for app in App::all() {
            let trace = app
                .program(&WorkloadScale::paper())
                .trace(app.granularity())
                .unwrap();
            let total: f64 = trace.processes[0]
                .compute
                .iter()
                .map(|d| d.as_secs_f64())
                .sum();
            totals.push((app, total));
        }
        let wup = totals.iter().find(|(a, _)| *a == App::Wupwise).unwrap().1;
        let mad = totals.iter().find(|(a, _)| *a == App::Madbench2).unwrap().1;
        for (app, t) in &totals {
            assert!(*t <= wup + 1e-9, "{app} should not exceed wupwise");
            assert!(*t >= mad - 1e-9, "{app} should not undercut madbench2");
        }
    }
}
