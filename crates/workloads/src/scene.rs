//! Scaled datacenter scene specifications for the sharded kernel.
//!
//! [`scaled_scene`] generates the `--scale F` scene used by `repro scale`:
//! client process count and I/O-group (disk) count grow linearly with `F`
//! while the shared-link count grows as `√F`, so the per-link fan-in also
//! grows with `F` — at large scale the links become congestion-limited,
//! exactly the supercomputer regime of "Periodic I/O scheduling for
//! super-computers" (PAPERS.md). The spec is pure data; `sdds-runtime`
//! turns it into shard components.
//!
//! All variation across clients is simple modular arithmetic on the
//! client index — no RNG — so a spec is a deterministic function of `F`.

use simkit::SimDuration;

/// The periodic global I/O schedule: simulated time is divided into
/// repeating cycles of `classes` slices of `slice` each; class `c` may
/// issue I/O only inside its slice of each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleSpec {
    /// Number of I/O classes (and slices per cycle).
    pub classes: u32,
    /// Length of one class's slice.
    pub slice: SimDuration,
}

impl ScheduleSpec {
    /// Length of a full schedule cycle.
    #[must_use]
    pub fn cycle(&self) -> SimDuration {
        SimDuration::from_micros(self.slice.as_micros() * u64::from(self.classes.max(1)))
    }
}

/// One client process's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneClientSpec {
    /// Compute time between I/O bursts.
    pub compute: SimDuration,
    /// Offset of the first compute phase from time zero.
    pub start_offset: SimDuration,
    /// Number of compute + burst iterations.
    pub iters: u32,
    /// Requests per burst.
    pub burst: u32,
    /// Bytes per request.
    pub req_bytes: u32,
    /// Every `write_period`-th request is a write (0 = reads only).
    pub write_period: u32,
    /// The client's I/O class under the global schedule.
    pub class: u32,
    /// Index of the shared link this client sits behind.
    pub link: usize,
    /// First I/O group this client targets (requests round-robin from
    /// here across all groups).
    pub group_base: usize,
}

/// A complete scene: clients behind shared links in front of
/// burst-buffered I/O groups, optionally under a global I/O schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneSpec {
    /// The scale factor the spec was generated with.
    pub scale: f64,
    /// Client processes.
    pub clients: Vec<SceneClientSpec>,
    /// Number of I/O groups.
    pub groups: usize,
    /// Disks per I/O group.
    pub disks_per_group: usize,
    /// Number of shared links.
    pub links: usize,
    /// Per-link bandwidth in bytes per second.
    pub link_bytes_per_sec: u64,
    /// One-hop message latency; also the kernel's default epoch window.
    pub hop_latency: SimDuration,
    /// Fixed per-request disk overhead.
    pub disk_overhead: SimDuration,
    /// Disk media bandwidth in bytes per second.
    pub disk_bytes_per_sec: u64,
    /// Burst-buffer capacity per group in bytes (0 disables).
    pub bb_capacity: u64,
    /// Burst-buffer ingest bandwidth in bytes per second.
    pub bb_bytes_per_sec: u64,
    /// Bytes drained per drain tick.
    pub bb_drain_chunk: u64,
    /// Drain tick cadence while the buffer holds data.
    pub bb_drain_period: SimDuration,
    /// Disk spin-down timeout for the scene power model.
    pub idle_timeout: SimDuration,
    /// The periodic global I/O schedule, if the scene runs one.
    pub schedule: Option<ScheduleSpec>,
}

impl SceneSpec {
    /// Total component count: groups + links + clients (+ scheduler).
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.groups + self.links + self.clients.len() + usize::from(self.schedule.is_some())
    }

    /// Total disks across all groups.
    #[must_use]
    pub fn disk_count(&self) -> usize {
        self.groups * self.disks_per_group
    }
}

/// Builds the standard scaled scene for factor `scale` (clamped to a sane
/// positive range; `scale = 1.0` is a small tabletop system, `100.0` the
/// datacenter-sized benchmark scene).
#[must_use]
pub fn scaled_scene(scale: f64) -> SceneSpec {
    let f = scale.clamp(0.05, 100_000.0);
    let clients = ((32.0 * f).round() as usize).max(1);
    let groups = ((16.0 * f).round() as usize).max(1);
    let links = ((2.0 * f.sqrt()).round() as usize).max(1);
    let classes = 4u32;
    let hop = SimDuration::from_millis(4);

    let client_specs = (0..clients)
        .map(|i| {
            let i64x = i as u64;
            SceneClientSpec {
                // 160..257 ms of compute, varied per client.
                compute: SimDuration::from_micros(160_000 + (i64x * 7_919) % 97 * 1_000),
                // Starts staggered across the first ~200 ms.
                start_offset: SimDuration::from_micros((i64x * 131) % 199 * 1_000),
                iters: 12,
                burst: 4,
                req_bytes: 256 * 1024,
                write_period: 2,
                class: (i as u32) % classes,
                link: i % links,
                group_base: i % groups,
            }
        })
        .collect();

    SceneSpec {
        scale: f,
        clients: client_specs,
        groups,
        disks_per_group: 8,
        links,
        link_bytes_per_sec: 400 * 1024 * 1024,
        hop_latency: hop,
        disk_overhead: SimDuration::from_millis(6),
        disk_bytes_per_sec: 80 * 1024 * 1024,
        bb_capacity: 8 * 1024 * 1024,
        bb_bytes_per_sec: 2 * 1024 * 1024 * 1024,
        bb_drain_chunk: 1024 * 1024,
        bb_drain_period: SimDuration::from_millis(10),
        idle_timeout: SimDuration::from_secs(2),
        schedule: Some(ScheduleSpec {
            classes,
            slice: SimDuration::from_millis(12),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_dimensions_grow_with_scale() {
        let s1 = scaled_scene(1.0);
        let s100 = scaled_scene(100.0);
        assert_eq!(s1.clients.len(), 32);
        assert_eq!(s100.clients.len(), 3200);
        assert_eq!(s100.groups, 1600);
        assert_eq!(s100.disk_count(), 12800);
        // Link count grows as sqrt: fan-in per link grows with scale.
        let fan1 = s1.clients.len() / s1.links;
        let fan100 = s100.clients.len() / s100.links;
        assert!(fan100 > 5 * fan1, "fan-in must grow with scale");
    }

    #[test]
    fn spec_is_deterministic() {
        assert_eq!(scaled_scene(3.5), scaled_scene(3.5));
    }

    #[test]
    fn component_count_includes_scheduler() {
        let s = scaled_scene(1.0);
        assert_eq!(
            s.component_count(),
            s.groups + s.links + s.clients.len() + 1
        );
    }
}
