//! The out-of-core matrix multiplication of the paper's Fig. 5.

use sdds_compiler::ir::{IoDirection, Program};
use sdds_storage::FileId;
use simkit::SimDuration;

/// Builds the Fig. 5 matrix-multiplication program: each file is divided
/// into `r × r` blocks; the code reads a horizontal block of `U`, then for
/// each vertical block of `V` computes and writes a block of `W`:
///
/// ```text
/// for m = 1, R { read U[m];
///     for n = 1, R { read V[n]; compute; write W[m,n]; } }
/// ```
///
/// `block_bytes` is the size of one matrix block on disk and
/// `compute_per_block` the modeled cost of the innermost product loops.
/// Each process multiplies its own pair of matrices (the paper runs one
/// process per client node over disjoint data).
///
/// # Example
///
/// ```
/// use sdds_workloads::matrix_multiply;
/// use sdds_compiler::SlotGranularity;
/// use simkit::SimDuration;
///
/// let p = matrix_multiply(2, 4, 128 * 1024, SimDuration::from_millis(50));
/// let trace = p.trace(SlotGranularity::unit()).unwrap();
/// assert_eq!(trace.total_slots, 16); // R * R inner iterations
/// ```
///
/// # Panics
///
/// Panics if `r` or `block_bytes` is zero.
pub fn matrix_multiply(
    nprocs: usize,
    r: i64,
    block_bytes: u64,
    compute_per_block: SimDuration,
) -> Program {
    assert!(r > 0, "matrix dimension must be positive");
    assert!(block_bytes > 0, "block size must be positive");
    let blk = block_bytes as i64;
    let procs = nprocs as i64;
    let mut p = Program::new("matrix-multiply", nprocs);
    let u = p.add_file(FileId(0), (procs * r * blk) as u64);
    let v = p.add_file(FileId(1), (procs * r * blk) as u64);
    let w = p.add_file(FileId(2), (procs * r * r * blk) as u64);
    p.push_loop("m", 0, r - 1, move |b| {
        b.io(
            IoDirection::Read,
            u,
            |e| e.term("p", r * blk).term("m", blk),
            block_bytes,
        );
        b.loop_("n", 0, r - 1, move |b| {
            b.io(
                IoDirection::Read,
                v,
                |e| e.term("p", r * blk).term("n", blk),
                block_bytes,
            );
            b.compute(compute_per_block);
            b.io(
                IoDirection::Write,
                w,
                |e| e.term("p", r * r * blk).term("m", r * blk).term("n", blk),
                block_bytes,
            );
        });
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_compiler::{analyze_slacks, SlotGranularity};
    use sdds_storage::StripingLayout;

    #[test]
    fn structure_matches_fig5() {
        let p = matrix_multiply(1, 3, 64 * 1024, SimDuration::from_millis(10));
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        // 3 U reads, 9 V reads, 9 W writes.
        assert_eq!(trace.io_count(), 3 + 9 + 9);
        assert_eq!(trace.total_slots, 9);
    }

    #[test]
    fn v_reads_are_repeated_inputs() {
        let p = matrix_multiply(1, 4, 64 * 1024, SimDuration::from_millis(10));
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        // V block n is read once per m iteration: 4 reads of each of the
        // 4 blocks, all unproduced (input data).
        let v_reads = accesses
            .iter()
            .filter(|a| a.is_read() && a.io.file == FileId(1))
            .count();
        assert_eq!(v_reads, 16);
        assert!(accesses
            .iter()
            .filter(|a| a.is_read())
            .all(|a| a.producer.is_none()));
    }

    #[test]
    fn processes_use_disjoint_regions() {
        let p = matrix_multiply(2, 2, 64 * 1024, SimDuration::from_millis(1));
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let p0_max = trace.processes[0]
            .ios
            .iter()
            .filter(|io| io.file == FileId(0))
            .map(|io| io.offset + io.len)
            .max()
            .unwrap();
        let p1_min = trace.processes[1]
            .ios
            .iter()
            .filter(|io| io.file == FileId(0))
            .map(|io| io.offset)
            .min()
            .unwrap();
        assert!(p0_max <= p1_min);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_r_panics() {
        let _ = matrix_multiply(1, 0, 1024, SimDuration::ZERO);
    }
}
