//! The six parallel I/O-intensive applications of Table III, as loop-nest
//! program generators.
//!
//! The paper evaluates on hf, sar, astro, apsi, madbench2 and wupwise —
//! out-of-core parallel codes whose sources and inputs are not available
//! to us. What the scheduling framework actually consumes is their loop
//! structure and file-access functions, so each generator here builds a
//! synthetic program whose *shape* matches the published description:
//!
//! * alternating I/O-dense phases and compute-only gaps, sized so that the
//!   disk idle-period distribution without the scheme matches the
//!   character of Fig. 12(a) (hf and madbench2 dominated by very short
//!   idles, the others more spread out);
//! * producer–consumer structure where the real code has it (apsi's
//!   timestep planes, wupwise's fermion fields, madbench2's write-then-
//!   read matrices) so inter-slot slacks exist;
//! * pure input streams where the real code re-reads read-only data (hf's
//!   integral files, wupwise's gauge field, sar's raw frames), giving the
//!   long prefix slacks the scheduler exploits.
//!
//! Every generator takes a process count and a scale factor; [`App`]
//! carries the per-app tuned scale used for the paper-shaped experiments
//! and the published reference numbers of Table III.
//!
//! # Example
//!
//! ```
//! use sdds_workloads::{App, WorkloadScale};
//!
//! let program = App::Sar.program(&WorkloadScale::test());
//! let trace = program.trace(App::Sar.granularity()).unwrap();
//! assert!(trace.io_count() > 0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_debug_implementations)]

mod apps;
mod matmul;
mod objstore;
pub mod scene;
mod synthetic;

pub use apps::{App, WorkloadScale};
pub use matmul::matrix_multiply;
pub use objstore::{ObjRequest, ObjectStoreSpec};
pub use scene::{scaled_scene, SceneClientSpec, SceneSpec, ScheduleSpec};
pub use synthetic::{KeyedWorkloadSpec, SyntheticSpec};
