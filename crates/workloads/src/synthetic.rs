//! A configurable synthetic workload builder.
//!
//! The six named applications fix their shapes to match the paper's
//! descriptions; this builder exposes the same skeleton — I/O phases of a
//! given cadence, medium compute gaps, long idle gaps, optional
//! producer–consumer structure — as an open parameter space, for
//! controlled studies (policy tuning, oscillation hunting, scheduler
//! stress) beyond the paper's evaluation.

use sdds_compiler::ir::{IoDirection, Program};
use sdds_storage::FileId;
use simkit::SimDuration;

/// One stripe (Table II).
const STRIPE: i64 = 64 * 1024;

/// Specification of a synthetic phased workload.
///
/// # Example
///
/// ```
/// use sdds_workloads::SyntheticSpec;
/// use sdds_compiler::SlotGranularity;
///
/// let program = SyntheticSpec::default().procs(4).phases(3).build();
/// let trace = program.trace(SlotGranularity::unit()).unwrap();
/// assert!(trace.io_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    procs: usize,
    phases: u32,
    reads_per_phase: u32,
    writes_per_phase: u32,
    block_stripes: u32,
    cadence: SimDuration,
    /// I/O-free slots interleaved after each access (scheduling headroom).
    interleave: u32,
    medium_gap: SimDuration,
    long_gap: SimDuration,
    long_gap_every: u32,
    /// When true, each phase's reads consume the blocks written
    /// `producer_lag` phases earlier (producer–consumer slacks); when
    /// false, reads stream fresh input data (prefix slacks).
    produced_reads: bool,
    producer_lag: u32,
}

impl Default for SyntheticSpec {
    /// A small balanced workload: 8 processes, 4 phases of 16 reads + 8
    /// writes at a 200 ms cadence, 2 s medium gaps, a 60 s long gap every
    /// 2 phases, streaming reads.
    fn default() -> Self {
        SyntheticSpec {
            procs: 8,
            phases: 4,
            reads_per_phase: 16,
            writes_per_phase: 8,
            block_stripes: 2,
            cadence: SimDuration::from_millis(200),
            interleave: 2,
            medium_gap: SimDuration::from_secs(2),
            long_gap: SimDuration::from_secs(60),
            long_gap_every: 2,
            produced_reads: false,
            producer_lag: 5,
        }
    }
}

impl SyntheticSpec {
    /// Sets the process count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn procs(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one process");
        self.procs = n;
        self
    }

    /// Sets the number of I/O phases.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn phases(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one phase");
        self.phases = n;
        self
    }

    /// Sets reads and writes per phase per process.
    pub fn accesses_per_phase(mut self, reads: u32, writes: u32) -> Self {
        assert!(reads + writes > 0, "a phase needs some I/O");
        self.reads_per_phase = reads;
        self.writes_per_phase = writes;
        self
    }

    /// Sets the access size in stripes (64 KB each).
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero.
    pub fn block_stripes(mut self, stripes: u32) -> Self {
        assert!(stripes > 0, "blocks need at least one stripe");
        self.block_stripes = stripes;
        self
    }

    /// Sets the per-access compute cadence.
    pub fn cadence(mut self, d: SimDuration) -> Self {
        self.cadence = d;
        self
    }

    /// Sets how many I/O-free slots follow each access (scheduling
    /// headroom; 0 saturates the per-process timeline).
    pub fn interleave(mut self, slots: u32) -> Self {
        self.interleave = slots;
        self
    }

    /// Sets the medium compute gap inside each phase.
    pub fn medium_gap(mut self, d: SimDuration) -> Self {
        self.medium_gap = d;
        self
    }

    /// Sets the long idle gap and its cadence in phases (0 disables long
    /// gaps).
    pub fn long_gaps(mut self, d: SimDuration, every_phases: u32) -> Self {
        self.long_gap = d;
        self.long_gap_every = every_phases;
        self
    }

    /// Reads consume blocks written `lag` phases earlier instead of
    /// streaming fresh input.
    ///
    /// # Panics
    ///
    /// Panics if `lag` is zero.
    pub fn produced_reads(mut self, lag: u32) -> Self {
        assert!(lag > 0, "producer lag must be positive");
        self.produced_reads = true;
        self.producer_lag = lag;
        self
    }

    /// Builds the program.
    pub fn build(&self) -> Program {
        let procs = self.procs as i64;
        let blk = self.block_stripes as i64 * STRIPE;
        let phases = self.phases as i64;
        let lag = self.producer_lag as i64;
        // One-stripe stagger per process (see the named workloads).
        let read_span = self.reads_per_phase as i64 * blk + STRIPE;
        let write_span = self.writes_per_phase.max(1) as i64 * blk + STRIPE;
        let cadence = self.cadence;
        let idle = self.interleave;

        let mut p = Program::new("synthetic", self.procs);
        let produced = self.produced_reads;
        let (read_file, write_file);
        if produced {
            // A single carried file: phase t reads plane t, writes plane
            // t + lag (planes 0..lag pre-exist as input).
            let planes = phases + lag;
            read_file = p.add_file(FileId(0), (planes * procs * read_span) as u64);
            write_file = read_file;
        } else {
            read_file = p.add_file(FileId(0), (phases * procs * read_span) as u64);
            write_file = p.add_file(FileId(1), (phases * procs * write_span) as u64);
        }

        let reads = self.reads_per_phase as i64;
        let writes = self.writes_per_phase as i64;
        let medium = self.medium_gap;
        let long_every = self.long_gap_every as i64;
        let long_gap = self.long_gap;

        for chunk_base in (0..phases).step_by(self.long_gap_every.max(1) as usize) {
            let len = (phases - chunk_base).min(long_every.max(1));
            p.push_loop("t", 0, len - 1, move |b| {
                if reads > 0 {
                    b.loop_("i", 0, reads - 1, move |b| {
                        b.io(
                            IoDirection::Read,
                            read_file,
                            |e| {
                                e.term("t", procs * read_span)
                                    .term("p", read_span)
                                    .term("i", blk)
                                    .plus(chunk_base * procs * read_span)
                            },
                            blk as u64,
                        );
                        b.compute(cadence);
                        if idle > 0 {
                            b.skip(idle, cadence);
                        }
                    });
                }
                if !medium.is_zero() {
                    b.skip(1, medium);
                }
                if writes > 0 {
                    b.loop_("j", 0, writes - 1, move |b| {
                        let (wfile, wspan, wbase) = if produced {
                            (read_file, read_span, (chunk_base + lag) * procs * read_span)
                        } else {
                            (write_file, write_span, chunk_base * procs * write_span)
                        };
                        b.io(
                            IoDirection::Write,
                            wfile,
                            |e| {
                                e.term("t", procs * wspan)
                                    .term("p", wspan)
                                    .term("j", blk)
                                    .plus(wbase)
                            },
                            blk as u64,
                        );
                        b.compute(cadence);
                        if idle > 0 {
                            b.skip(idle, cadence);
                        }
                    });
                }
            });
            if !long_gap.is_zero() && chunk_base + len < phases {
                p.push_skip(1, long_gap);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_compiler::{analyze_slacks, SlotGranularity};
    use sdds_storage::StripingLayout;

    #[test]
    fn default_spec_builds_and_traces() {
        let p = SyntheticSpec::default().build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        // 4 phases x (16 reads + 8 writes) x 8 procs.
        assert_eq!(trace.io_count(), 4 * 24 * 8);
        assert!(trace.total_slots > 0);
    }

    #[test]
    fn produced_reads_have_producers() {
        let p = SyntheticSpec::default()
            .procs(2)
            .phases(8)
            .accesses_per_phase(4, 4)
            .produced_reads(3)
            .build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        let produced = accesses
            .iter()
            .filter(|a| a.is_read() && a.producer.is_some())
            .count();
        // Phases 3..7 read planes written by phases 0..4.
        assert!(produced > 0, "lagged writes should produce later reads");
    }

    #[test]
    fn streaming_reads_have_prefix_slacks() {
        let p = SyntheticSpec::default().procs(2).build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        assert!(accesses
            .iter()
            .filter(|a| a.is_read())
            .all(|a| a.producer.is_none() && a.begin == 0));
    }

    #[test]
    fn long_gaps_appear_in_compute() {
        let p = SyntheticSpec::default()
            .procs(1)
            .phases(4)
            .long_gaps(SimDuration::from_secs(30), 2)
            .build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let max_slot_compute = trace.processes[0].compute.iter().copied().max().unwrap();
        assert_eq!(max_slot_compute, SimDuration::from_secs(30));
    }

    #[test]
    fn zero_interleave_saturates_timeline() {
        let p = SyntheticSpec::default()
            .procs(1)
            .phases(1)
            .accesses_per_phase(8, 0)
            .interleave(0)
            .medium_gap(SimDuration::ZERO)
            .long_gaps(SimDuration::ZERO, 0)
            .build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        assert_eq!(trace.total_slots as usize, 8);
        assert_eq!(trace.io_count(), 8);
    }

    #[test]
    fn end_to_end_with_scheme() {
        use sdds_compiler::SchedulerConfig;
        let p = SyntheticSpec::default().procs(4).build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        let table = SchedulerConfig::paper_defaults()
            .schedule(&accesses, &trace)
            .unwrap();
        assert_eq!(table.scheduled_count(), accesses.len());
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_procs_panics() {
        let _ = SyntheticSpec::default().procs(0);
    }
}
