//! A configurable synthetic workload builder.
//!
//! The six named applications fix their shapes to match the paper's
//! descriptions; this builder exposes the same skeleton — I/O phases of a
//! given cadence, medium compute gaps, long idle gaps, optional
//! producer–consumer structure — as an open parameter space, for
//! controlled studies (policy tuning, oscillation hunting, scheduler
//! stress) beyond the paper's evaluation.

use sdds_compiler::ir::{IoDirection, Program};
use sdds_storage::FileId;
use simkit::{DetRng, SimDuration, StreamId};

/// One stripe (Table II).
const STRIPE: i64 = 64 * 1024;

/// Specification of a synthetic phased workload.
///
/// # Example
///
/// ```
/// use sdds_workloads::SyntheticSpec;
/// use sdds_compiler::SlotGranularity;
///
/// let program = SyntheticSpec::default().procs(4).phases(3).build();
/// let trace = program.trace(SlotGranularity::unit()).unwrap();
/// assert!(trace.io_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    procs: usize,
    phases: u32,
    reads_per_phase: u32,
    writes_per_phase: u32,
    block_stripes: u32,
    cadence: SimDuration,
    /// I/O-free slots interleaved after each access (scheduling headroom).
    interleave: u32,
    medium_gap: SimDuration,
    long_gap: SimDuration,
    long_gap_every: u32,
    /// When true, each phase's reads consume the blocks written
    /// `producer_lag` phases earlier (producer–consumer slacks); when
    /// false, reads stream fresh input data (prefix slacks).
    produced_reads: bool,
    producer_lag: u32,
}

impl Default for SyntheticSpec {
    /// A small balanced workload: 8 processes, 4 phases of 16 reads + 8
    /// writes at a 200 ms cadence, 2 s medium gaps, a 60 s long gap every
    /// 2 phases, streaming reads.
    fn default() -> Self {
        SyntheticSpec {
            procs: 8,
            phases: 4,
            reads_per_phase: 16,
            writes_per_phase: 8,
            block_stripes: 2,
            cadence: SimDuration::from_millis(200),
            interleave: 2,
            medium_gap: SimDuration::from_secs(2),
            long_gap: SimDuration::from_secs(60),
            long_gap_every: 2,
            produced_reads: false,
            producer_lag: 5,
        }
    }
}

impl SyntheticSpec {
    /// Sets the process count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn procs(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one process");
        self.procs = n;
        self
    }

    /// Sets the number of I/O phases.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn phases(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one phase");
        self.phases = n;
        self
    }

    /// Sets reads and writes per phase per process.
    pub fn accesses_per_phase(mut self, reads: u32, writes: u32) -> Self {
        assert!(reads + writes > 0, "a phase needs some I/O");
        self.reads_per_phase = reads;
        self.writes_per_phase = writes;
        self
    }

    /// Sets the access size in stripes (64 KB each).
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero.
    pub fn block_stripes(mut self, stripes: u32) -> Self {
        assert!(stripes > 0, "blocks need at least one stripe");
        self.block_stripes = stripes;
        self
    }

    /// Sets the per-access compute cadence.
    pub fn cadence(mut self, d: SimDuration) -> Self {
        self.cadence = d;
        self
    }

    /// Sets how many I/O-free slots follow each access (scheduling
    /// headroom; 0 saturates the per-process timeline).
    pub fn interleave(mut self, slots: u32) -> Self {
        self.interleave = slots;
        self
    }

    /// Sets the medium compute gap inside each phase.
    pub fn medium_gap(mut self, d: SimDuration) -> Self {
        self.medium_gap = d;
        self
    }

    /// Sets the long idle gap and its cadence in phases (0 disables long
    /// gaps).
    pub fn long_gaps(mut self, d: SimDuration, every_phases: u32) -> Self {
        self.long_gap = d;
        self.long_gap_every = every_phases;
        self
    }

    /// Reads consume blocks written `lag` phases earlier instead of
    /// streaming fresh input.
    ///
    /// # Panics
    ///
    /// Panics if `lag` is zero.
    pub fn produced_reads(mut self, lag: u32) -> Self {
        assert!(lag > 0, "producer lag must be positive");
        self.produced_reads = true;
        self.producer_lag = lag;
        self
    }

    /// Builds the program.
    pub fn build(&self) -> Program {
        let procs = self.procs as i64;
        let blk = self.block_stripes as i64 * STRIPE;
        let phases = self.phases as i64;
        let lag = self.producer_lag as i64;
        // One-stripe stagger per process (see the named workloads).
        let read_span = self.reads_per_phase as i64 * blk + STRIPE;
        let write_span = self.writes_per_phase.max(1) as i64 * blk + STRIPE;
        let cadence = self.cadence;
        let idle = self.interleave;

        let mut p = Program::new("synthetic", self.procs);
        let produced = self.produced_reads;
        let (read_file, write_file);
        if produced {
            // A single carried file: phase t reads plane t, writes plane
            // t + lag (planes 0..lag pre-exist as input).
            let planes = phases + lag;
            read_file = p.add_file(FileId(0), (planes * procs * read_span) as u64);
            write_file = read_file;
        } else {
            read_file = p.add_file(FileId(0), (phases * procs * read_span) as u64);
            write_file = p.add_file(FileId(1), (phases * procs * write_span) as u64);
        }

        let reads = self.reads_per_phase as i64;
        let writes = self.writes_per_phase as i64;
        let medium = self.medium_gap;
        let long_every = self.long_gap_every as i64;
        let long_gap = self.long_gap;

        for chunk_base in (0..phases).step_by(self.long_gap_every.max(1) as usize) {
            let len = (phases - chunk_base).min(long_every.max(1));
            p.push_loop("t", 0, len - 1, move |b| {
                if reads > 0 {
                    b.loop_("i", 0, reads - 1, move |b| {
                        b.io(
                            IoDirection::Read,
                            read_file,
                            |e| {
                                e.term("t", procs * read_span)
                                    .term("p", read_span)
                                    .term("i", blk)
                                    .plus(chunk_base * procs * read_span)
                            },
                            blk as u64,
                        );
                        b.compute(cadence);
                        if idle > 0 {
                            b.skip(idle, cadence);
                        }
                    });
                }
                if !medium.is_zero() {
                    b.skip(1, medium);
                }
                if writes > 0 {
                    b.loop_("j", 0, writes - 1, move |b| {
                        let (wfile, wspan, wbase) = if produced {
                            (read_file, read_span, (chunk_base + lag) * procs * read_span)
                        } else {
                            (write_file, write_span, chunk_base * procs * write_span)
                        };
                        b.io(
                            IoDirection::Write,
                            wfile,
                            |e| {
                                e.term("t", procs * wspan)
                                    .term("p", wspan)
                                    .term("j", blk)
                                    .plus(wbase)
                            },
                            blk as u64,
                        );
                        b.compute(cadence);
                        if idle > 0 {
                            b.skip(idle, cadence);
                        }
                    });
                }
            });
            if !long_gap.is_zero() && chunk_base + len < phases {
                p.push_skip(1, long_gap);
            }
        }
        p
    }
}

/// A DBMS-style keyed workload: each process owns a shard of a keyed
/// store and issues point reads/updates whose keys follow a zipfian hot
/// set, with the inter-operation gap swinging on a diurnal cycle.
///
/// Unlike the phased [`SyntheticSpec`], the access pattern here is
/// *data-dependent* — the key sequence comes from a seeded RNG, not a
/// loop bound — which is exactly the workload class the paper's
/// compile-time scheme cannot see. It exists to compare the compile-time,
/// online and hybrid decision layers on equal footing: the generated
/// program is still a loop nest (one single-iteration loop per
/// operation), so the compiler can schedule it, but nothing about the
/// key distribution is declared to it.
///
/// The diurnal swing is a triangle wave (no floating-point
/// transcendentals, so the trace is bit-identical across platforms):
/// over one `diurnal_period` of operations the gap ramps from
/// `base_gap * (1 - amplitude)` up to `base_gap * (1 + amplitude)` and
/// back.
///
/// # Example
///
/// ```
/// use sdds_workloads::KeyedWorkloadSpec;
/// use sdds_compiler::SlotGranularity;
///
/// let trace = KeyedWorkloadSpec::zipfian_hot_set(42)
///     .program()
///     .trace(SlotGranularity::unit())
///     .unwrap();
/// assert!(trace.io_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedWorkloadSpec {
    /// Number of client processes (shards).
    pub procs: usize,
    /// Distinct keys per shard; each key maps to one stripe-sized record.
    pub keys: u64,
    /// Operations issued per process.
    pub ops_per_proc: u32,
    /// Zipfian skew exponent θ (> 0); higher concentrates the hot set.
    pub zipf_theta: f64,
    /// Fraction of operations that are reads (the rest update in place).
    pub read_fraction: f64,
    /// Mean inter-operation think time.
    pub base_gap: SimDuration,
    /// Operations per diurnal cycle (0 disables the swing).
    pub diurnal_period: u32,
    /// Peak-to-mean swing of the diurnal cycle, in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// RNG seed for the key and read/write draws.
    pub seed: u64,
}

impl KeyedWorkloadSpec {
    /// A skew-dominated preset: a tight zipfian hot set at a steady load
    /// — most idle gaps look alike, so learned predictions converge fast.
    pub fn zipfian_hot_set(seed: u64) -> Self {
        KeyedWorkloadSpec {
            procs: 8,
            keys: 512,
            ops_per_proc: 96,
            zipf_theta: 1.1,
            read_fraction: 0.8,
            base_gap: SimDuration::from_secs(8),
            diurnal_period: 0,
            diurnal_amplitude: 0.0,
            seed,
        }
    }

    /// A load-swing preset: moderate skew with the think time ramping
    /// between 2 s and 38 s over each simulated "day" — the idle
    /// distribution is bimodal, so a single fixed timeout fits neither
    /// half.
    pub fn diurnal(seed: u64) -> Self {
        KeyedWorkloadSpec {
            procs: 8,
            keys: 512,
            ops_per_proc: 96,
            zipf_theta: 0.9,
            read_fraction: 0.7,
            base_gap: SimDuration::from_secs(20),
            diurnal_period: 24,
            diurnal_amplitude: 0.9,
            seed,
        }
    }

    /// The per-operation think time at operation index `n`.
    fn gap_at(&self, n: u32) -> SimDuration {
        if self.diurnal_period == 0 || self.diurnal_amplitude == 0.0 {
            return self.base_gap;
        }
        let phase = n % self.diurnal_period;
        let half = (self.diurnal_period / 2).max(1);
        // Triangle wave in [-1, 1]: trough at phase 0, peak at mid-cycle.
        let tri = if phase < half {
            -1.0 + 2.0 * f64::from(phase) / f64::from(half)
        } else {
            1.0 - 2.0 * f64::from(phase - half) / f64::from(half)
        };
        self.base_gap.mul_f64(1.0 + self.diurnal_amplitude * tri)
    }

    /// Builds the keyed program: one single-iteration loop per operation
    /// (the op's I/O plus service time), followed by one I/O-free slot
    /// holding the think time.
    ///
    /// # Panics
    ///
    /// Panics if `procs`, `keys` or `ops_per_proc` is zero, `zipf_theta`
    /// is not positive, or `read_fraction`/`diurnal_amplitude` fall
    /// outside `[0, 1]`/`[0, 1)`.
    pub fn program(&self) -> Program {
        assert!(self.procs > 0, "at least one process");
        assert!(self.keys > 0, "at least one key");
        assert!(self.ops_per_proc > 0, "at least one operation");
        assert!(
            self.zipf_theta > 0.0 && self.zipf_theta.is_finite(),
            "zipf_theta must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read_fraction must be in [0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&self.diurnal_amplitude),
            "diurnal_amplitude must be in [0, 1)"
        );

        // Zipfian CDF over keys: weight(k) ∝ 1 / (k + 1)^θ.
        let mut cdf = Vec::with_capacity(self.keys as usize);
        let mut total = 0.0f64;
        for k in 0..self.keys {
            total += 1.0 / ((k + 1) as f64).powf(self.zipf_theta);
            cdf.push(total);
        }

        let mut rng = DetRng::for_stream(self.seed, StreamId::Workload).substream("keyed");
        let shard = self.keys as i64 * STRIPE;
        let service = SimDuration::from_millis(50);

        let mut p = Program::new("keyed", self.procs);
        let file = p.add_file(FileId(0), (self.procs as i64 * shard) as u64);
        for n in 0..self.ops_per_proc {
            let u = rng.unit_f64() * total;
            let key = cdf.partition_point(|&c| c < u).min(self.keys as usize - 1) as i64;
            let dir = if rng.unit_f64() < self.read_fraction {
                IoDirection::Read
            } else {
                IoDirection::Write
            };
            let gap = self.gap_at(n);
            p.push_loop("i", 0, 0, move |b| {
                b.io(
                    dir,
                    file,
                    |e| e.term("p", shard).plus(key * STRIPE),
                    STRIPE as u64,
                );
                b.compute(service);
                b.skip(1, gap);
            });
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_compiler::{analyze_slacks, SlotGranularity};
    use sdds_storage::StripingLayout;

    #[test]
    fn default_spec_builds_and_traces() {
        let p = SyntheticSpec::default().build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        // 4 phases x (16 reads + 8 writes) x 8 procs.
        assert_eq!(trace.io_count(), 4 * 24 * 8);
        assert!(trace.total_slots > 0);
    }

    #[test]
    fn produced_reads_have_producers() {
        let p = SyntheticSpec::default()
            .procs(2)
            .phases(8)
            .accesses_per_phase(4, 4)
            .produced_reads(3)
            .build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        let produced = accesses
            .iter()
            .filter(|a| a.is_read() && a.producer.is_some())
            .count();
        // Phases 3..7 read planes written by phases 0..4.
        assert!(produced > 0, "lagged writes should produce later reads");
    }

    #[test]
    fn streaming_reads_have_prefix_slacks() {
        let p = SyntheticSpec::default().procs(2).build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        assert!(accesses
            .iter()
            .filter(|a| a.is_read())
            .all(|a| a.producer.is_none() && a.begin == 0));
    }

    #[test]
    fn long_gaps_appear_in_compute() {
        let p = SyntheticSpec::default()
            .procs(1)
            .phases(4)
            .long_gaps(SimDuration::from_secs(30), 2)
            .build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let max_slot_compute = trace.processes[0].compute.iter().copied().max().unwrap();
        assert_eq!(max_slot_compute, SimDuration::from_secs(30));
    }

    #[test]
    fn zero_interleave_saturates_timeline() {
        let p = SyntheticSpec::default()
            .procs(1)
            .phases(1)
            .accesses_per_phase(8, 0)
            .interleave(0)
            .medium_gap(SimDuration::ZERO)
            .long_gaps(SimDuration::ZERO, 0)
            .build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        assert_eq!(trace.total_slots as usize, 8);
        assert_eq!(trace.io_count(), 8);
    }

    #[test]
    fn end_to_end_with_scheme() {
        use sdds_compiler::SchedulerConfig;
        let p = SyntheticSpec::default().procs(4).build();
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        let table = SchedulerConfig::paper_defaults()
            .schedule(&accesses, &trace)
            .unwrap();
        assert_eq!(table.scheduled_count(), accesses.len());
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_procs_panics() {
        let _ = SyntheticSpec::default().procs(0);
    }

    #[test]
    fn keyed_program_is_deterministic() {
        let a = KeyedWorkloadSpec::zipfian_hot_set(42).program();
        let b = KeyedWorkloadSpec::zipfian_hot_set(42).program();
        assert_eq!(a, b);
        let c = KeyedWorkloadSpec::zipfian_hot_set(43).program();
        assert_ne!(a, c, "the seed must steer the key sequence");
    }

    #[test]
    fn keyed_trace_shape_matches_spec() {
        let spec = KeyedWorkloadSpec::zipfian_hot_set(7);
        let trace = spec.program().trace(SlotGranularity::unit()).unwrap();
        assert_eq!(trace.processes.len(), spec.procs);
        assert_eq!(
            trace.io_count(),
            spec.procs * spec.ops_per_proc as usize,
            "one access per operation per process"
        );
        // One I/O slot plus one think-time slot per operation.
        assert_eq!(trace.total_slots, 2 * spec.ops_per_proc);
    }

    #[test]
    fn keyed_hot_set_is_skewed() {
        let spec = KeyedWorkloadSpec::zipfian_hot_set(1);
        let trace = spec.program().trace(SlotGranularity::unit()).unwrap();
        // Count distinct offsets touched by process 0: a zipfian draw of
        // 96 ops over 512 keys lands well under half the key space.
        let mut offsets: Vec<u64> = trace.processes[0].ios.iter().map(|io| io.offset).collect();
        offsets.sort_unstable();
        offsets.dedup();
        assert!(
            offsets.len() < spec.ops_per_proc as usize / 2,
            "expected a concentrated hot set, saw {} distinct keys",
            offsets.len()
        );
    }

    #[test]
    fn keyed_diurnal_swings_the_gaps() {
        let spec = KeyedWorkloadSpec::diurnal(5);
        let trace = spec.program().trace(SlotGranularity::unit()).unwrap();
        let gaps: Vec<SimDuration> = trace.processes[0]
            .compute
            .iter()
            .copied()
            .filter(|d| *d > SimDuration::from_millis(100))
            .collect();
        let lo = gaps.iter().copied().min().unwrap();
        let hi = gaps.iter().copied().max().unwrap();
        assert!(
            hi.as_secs_f64() > 4.0 * lo.as_secs_f64(),
            "diurnal swing should spread the think time: {lo} .. {hi}"
        );
    }

    #[test]
    fn keyed_program_schedules() {
        use sdds_compiler::SchedulerConfig;
        let trace = KeyedWorkloadSpec::zipfian_hot_set(3)
            .program()
            .trace(SlotGranularity::unit())
            .unwrap();
        let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
        let table = SchedulerConfig::paper_defaults()
            .schedule(&accesses, &trace)
            .unwrap();
        assert_eq!(table.scheduled_count(), accesses.len());
        assert!(table.moved_earlier() > 0, "reads have slack to exploit");
    }
}
