//! Property tests for the storage substrate.

use proptest::prelude::*;
use sdds_storage::{FileId, LruCache, NodeSet, RaidConfig, RaidLevel, StripingLayout};

proptest! {
    /// split_range pieces tile the requested byte range exactly, and their
    /// node set equals nodes_for_range.
    #[test]
    fn striping_split_tiles_exactly(
        stripe_kb in 1u64..256,
        nodes in 1usize..64,
        file in 0u32..8,
        offset in 0u64..10_000_000,
        len in 1u64..10_000_000,
    ) {
        let layout = StripingLayout::new(stripe_kb * 1024, nodes).unwrap();
        let pieces = layout.split_range(FileId(file), offset, len);
        // Pieces are contiguous and cover [offset, offset + len).
        let mut cursor = offset;
        let mut seen = NodeSet::EMPTY;
        for (node, _block, _off_in_stripe, piece_len) in &pieces {
            prop_assert!(*piece_len > 0);
            seen.insert(*node);
            cursor += piece_len;
        }
        prop_assert_eq!(cursor, offset + len);
        prop_assert_eq!(seen, layout.nodes_for_range(FileId(file), offset, len));
        // Every piece stays within one stripe.
        for (_, _, off_in_stripe, piece_len) in &pieces {
            prop_assert!(off_in_stripe + piece_len <= stripe_kb * 1024);
        }
    }

    /// The node of a byte equals the node of its containing stripe, and
    /// consecutive stripes rotate round-robin.
    #[test]
    fn striping_round_robin(
        nodes in 1usize..64,
        file in 0u32..8,
        stripe_idx in 0u64..100_000,
    ) {
        let layout = StripingLayout::new(64 * 1024, nodes).unwrap();
        let a = layout.node_of(FileId(file), stripe_idx * 64 * 1024);
        let b = layout.node_of(FileId(file), (stripe_idx + 1) * 64 * 1024);
        prop_assert_eq!((a + 1) % nodes, b);
    }

    /// NodeSet algebra behaves like a set of integers.
    #[test]
    fn node_set_algebra(
        xs in prop::collection::btree_set(0usize..64, 0..20),
        ys in prop::collection::btree_set(0usize..64, 0..20),
    ) {
        let a = NodeSet::from_nodes(xs.iter().copied());
        let b = NodeSet::from_nodes(ys.iter().copied());
        let union: std::collections::BTreeSet<_> = xs.union(&ys).copied().collect();
        let inter: std::collections::BTreeSet<_> = xs.intersection(&ys).copied().collect();
        let sym: std::collections::BTreeSet<_> =
            xs.symmetric_difference(&ys).copied().collect();
        prop_assert_eq!(a.union(b).iter().collect::<Vec<_>>(), union.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(a.intersection(b).iter().collect::<Vec<_>>(), inter.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(a.symmetric_difference(b).iter().collect::<Vec<_>>(), sym.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(a.len(), xs.len());
    }

    /// Every RAID mapping sends a block to valid member disks, reads touch
    /// data_chunks() members, writes touch all members, and distinct blocks
    /// on the same member never overlap.
    #[test]
    fn raid_mappings_are_well_formed(
        level_pick in 0usize..3,
        disks_raw in 1usize..8,
        block_a in 0u64..10_000,
        block_b in 0u64..10_000,
    ) {
        let (level, disks) = match level_pick {
            0 => (RaidLevel::Single, 1),
            1 => (RaidLevel::Raid5, disks_raw.max(3)),
            _ => (RaidLevel::Raid10, (disks_raw.div_ceil(2) * 2).max(2)),
        };
        let cfg = RaidConfig::new(level, disks, 64 * 1024, 512).unwrap();
        let reads = cfg.map_read(block_a);
        prop_assert_eq!(reads.len(), cfg.data_chunks());
        for m in &reads {
            prop_assert!(m.disk < disks);
            prop_assert!(m.kind.is_read());
            prop_assert_eq!(m.sectors, cfg.chunk_sectors());
        }
        let writes = cfg.map_write(block_a);
        prop_assert_eq!(writes.len(), disks.min(match level {
            RaidLevel::Single => 1,
            _ => disks,
        }));
        // Distinct blocks never overlap on any member disk.
        if block_a != block_b {
            let other = cfg.map_write(block_b);
            for x in &writes {
                for y in &other {
                    if x.disk == y.disk {
                        let (xs, xe) = (x.lba, x.lba + x.sectors as u64);
                        let (ys, ye) = (y.lba, y.lba + y.sectors as u64);
                        prop_assert!(xe <= ys || ye <= xs, "blocks overlap on disk {}", x.disk);
                    }
                }
            }
        }
    }

    /// The LRU cache behaves exactly like a naive reference model under an
    /// arbitrary operation sequence.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..12,
        ops in prop::collection::vec((0u8..3, 0u64..30), 1..400),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut model: Vec<u64> = Vec::new(); // MRU at the back
        for (op, key) in ops {
            match op {
                0 => {
                    // insert
                    cache.insert(key, key);
                    model.retain(|&k| k != key);
                    model.push(key);
                    if model.len() > capacity {
                        model.remove(0);
                    }
                }
                1 => {
                    // get
                    let hit = cache.get(&key).is_some();
                    let model_hit = model.contains(&key);
                    prop_assert_eq!(hit, model_hit);
                    if model_hit {
                        model.retain(|&k| k != key);
                        model.push(key);
                    }
                }
                _ => {
                    // remove
                    let removed = cache.remove(&key).is_some();
                    let model_had = model.contains(&key);
                    prop_assert_eq!(removed, model_had);
                    model.retain(|&k| k != key);
                }
            }
            prop_assert_eq!(cache.len(), model.len());
        }
        // Final recency order agrees.
        let mru: Vec<u64> = cache.keys_mru().copied().collect();
        let expected: Vec<u64> = model.iter().rev().copied().collect();
        prop_assert_eq!(mru, expected);
    }
}
