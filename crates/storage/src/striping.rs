//! PVFS-style round-robin file striping across I/O nodes.

use crate::error::StorageError;
use crate::node_set::NodeSet;

/// Identifier of a disk-resident file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// The striping map: each file is divided into fixed-size stripes
/// distributed round-robin across the I/O nodes (Fig. 1 of the paper).
///
/// Different files start at different nodes (offset by the file id) so that
/// a workload touching several files spreads across the array, matching
/// PVFS's default layout.
///
/// # Example
///
/// ```
/// use sdds_storage::{FileId, StripingLayout};
///
/// let layout = StripingLayout::new(64 * 1024, 8).expect("valid layout");
/// assert_eq!(layout.node_of(FileId(0), 0), 0);
/// assert_eq!(layout.node_of(FileId(0), 64 * 1024), 1);
/// assert_eq!(layout.node_of(FileId(0), 8 * 64 * 1024), 0); // wraps
/// assert_eq!(layout.node_of(FileId(1), 0), 1); // files stagger
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripingLayout {
    stripe_bytes: u64,
    io_nodes: usize,
}

impl StripingLayout {
    /// Creates a layout with the given stripe size and I/O node count.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ZeroStripe`] if `stripe_bytes` is zero and
    /// [`StorageError::NodeCount`] if `io_nodes` is zero or above
    /// [`NodeSet::MAX_NODES`].
    pub fn new(stripe_bytes: u64, io_nodes: usize) -> Result<Self, StorageError> {
        if stripe_bytes == 0 {
            return Err(StorageError::ZeroStripe);
        }
        if io_nodes == 0 || io_nodes > NodeSet::MAX_NODES {
            return Err(StorageError::NodeCount { io_nodes });
        }
        Ok(StripingLayout {
            stripe_bytes,
            io_nodes,
        })
    }

    /// Table II defaults: 64 KB stripes across 8 I/O nodes.
    pub fn paper_defaults() -> Self {
        StripingLayout {
            stripe_bytes: 64 * 1024,
            io_nodes: 8,
        }
    }

    /// The stripe size in bytes.
    pub fn stripe_bytes(&self) -> u64 {
        self.stripe_bytes
    }

    /// The number of I/O nodes.
    pub fn io_nodes(&self) -> usize {
        self.io_nodes
    }

    /// The stripe index containing byte `offset` of a file.
    pub fn stripe_of(&self, offset: u64) -> u64 {
        offset / self.stripe_bytes
    }

    /// The I/O node holding byte `offset` of `file`.
    pub fn node_of(&self, file: FileId, offset: u64) -> usize {
        ((self.stripe_of(offset) + file.0 as u64) % self.io_nodes as u64) as usize
    }

    /// The set of I/O nodes touched by the byte range `[offset,
    /// offset + len)` of `file` (the paper's access signature `D`).
    ///
    /// Returns the empty set for a zero-length range.
    pub fn nodes_for_range(&self, file: FileId, offset: u64, len: u64) -> NodeSet {
        if len == 0 {
            return NodeSet::EMPTY;
        }
        let first = self.stripe_of(offset);
        let last = self.stripe_of(offset + len - 1);
        let mut set = NodeSet::EMPTY;
        let span = last - first + 1;
        if span >= self.io_nodes as u64 {
            return NodeSet::all(self.io_nodes);
        }
        for stripe in first..=last {
            set.insert(((stripe + file.0 as u64) % self.io_nodes as u64) as usize);
        }
        set
    }

    /// Splits the byte range into per-node contiguous pieces
    /// `(node, node_local_stripe_index, offset_in_stripe, piece_len)`.
    ///
    /// The node-local stripe index is the block address the I/O node's
    /// cache and RAID layer operate on: stripe `s` of a file is the
    /// `s / io_nodes`-th block stored on its node.
    pub fn split_range(&self, file: FileId, offset: u64, len: u64) -> Vec<(usize, u64, u64, u64)> {
        let mut pieces = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let stripe = self.stripe_of(cur);
            let stripe_start = stripe * self.stripe_bytes;
            let stripe_end = stripe_start + self.stripe_bytes;
            let piece_end = end.min(stripe_end);
            let node = self.node_of(file, cur);
            let local_index = stripe / self.io_nodes as u64;
            pieces.push((node, local_index, cur - stripe_start, piece_end - cur));
            cur = piece_end;
        }
        pieces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;

    #[test]
    fn round_robin_mapping() {
        let l = StripingLayout::new(64 * KB, 4).unwrap();
        for stripe in 0u64..12 {
            assert_eq!(
                l.node_of(FileId(0), stripe * 64 * KB),
                (stripe % 4) as usize
            );
        }
    }

    #[test]
    fn file_stagger() {
        let l = StripingLayout::new(64 * KB, 4).unwrap();
        assert_eq!(l.node_of(FileId(0), 0), 0);
        assert_eq!(l.node_of(FileId(1), 0), 1);
        assert_eq!(l.node_of(FileId(5), 0), 1);
    }

    #[test]
    fn nodes_for_range_small_and_wrapping() {
        let l = StripingLayout::new(64 * KB, 8).unwrap();
        // Inside one stripe.
        let one = l.nodes_for_range(FileId(0), 10, 100);
        assert_eq!(one.len(), 1);
        assert!(one.contains(0));
        // Exactly two stripes.
        let two = l.nodes_for_range(FileId(0), 64 * KB - 1, 2);
        assert_eq!(two, NodeSet::from_nodes([0, 1]));
        // A range spanning all nodes and more.
        let all = l.nodes_for_range(FileId(0), 0, 9 * 64 * KB);
        assert_eq!(all, NodeSet::all(8));
    }

    #[test]
    fn zero_length_range_is_empty() {
        let l = StripingLayout::paper_defaults();
        assert!(l.nodes_for_range(FileId(0), 123, 0).is_empty());
    }

    #[test]
    fn split_range_covers_exactly() {
        let l = StripingLayout::new(64 * KB, 8).unwrap();
        let pieces = l.split_range(FileId(2), 60 * KB, 80 * KB);
        let total: u64 = pieces.iter().map(|p| p.3).sum();
        assert_eq!(total, 80 * KB);
        // First piece: tail of stripe 0 (4 KB on node 2).
        assert_eq!(pieces[0], (2, 0, 60 * KB, 4 * KB));
        // Second piece: all of stripe 1 (64 KB on node 3).
        assert_eq!(pieces[1], (3, 0, 0, 64 * KB));
        // Third piece: head of stripe 2 (12 KB on node 4).
        assert_eq!(pieces[2], (4, 0, 0, 12 * KB));
    }

    #[test]
    fn split_range_local_indices_advance_per_wrap() {
        let l = StripingLayout::new(64 * KB, 2).unwrap();
        let pieces = l.split_range(FileId(0), 0, 4 * 64 * KB);
        // Stripes 0,1,2,3 -> nodes 0,1,0,1 with local indices 0,0,1,1.
        let summary: Vec<(usize, u64)> = pieces.iter().map(|p| (p.0, p.1)).collect();
        assert_eq!(summary, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn split_consistent_with_nodes_for_range() {
        let l = StripingLayout::new(64 * KB, 8).unwrap();
        for &(off, len) in &[
            (0u64, 1u64),
            (100, 200 * KB),
            (64 * KB, 64 * KB),
            (1, 700 * KB),
        ] {
            let set = l.nodes_for_range(FileId(3), off, len);
            let from_split: NodeSet = l
                .split_range(FileId(3), off, len)
                .into_iter()
                .map(|p| p.0)
                .collect();
            assert_eq!(set, from_split, "mismatch for ({off}, {len})");
        }
    }

    #[test]
    fn zero_stripe_is_rejected() {
        let err = StripingLayout::new(0, 8).unwrap_err();
        assert_eq!(err, StorageError::ZeroStripe);
        assert!(err.to_string().contains("stripe size"));
    }

    #[test]
    fn bad_node_counts_are_rejected() {
        for nodes in [0, NodeSet::MAX_NODES + 1] {
            let err = StripingLayout::new(64 * KB, nodes).unwrap_err();
            assert_eq!(err, StorageError::NodeCount { io_nodes: nodes });
            assert!(err.to_string().contains("I/O node count"));
        }
    }
}
