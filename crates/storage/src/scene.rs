//! Shard-assignable scene components: the cross-shard message protocol,
//! congestion-limited shared links, and burst-buffer I/O groups.
//!
//! These are the storage-side building blocks of the datacenter-scale
//! scenes ("Periodic I/O scheduling for super-computers" shapes): client
//! processes (in `sdds-runtime`) funnel bursts through [`SharedLink`]s
//! whose finite bandwidth serializes concurrent bursts, into
//! [`BurstBufferGroup`]s that absorb writes into a fast tier and drain
//! them to a [`ScenePower`] disk bank on a periodic cadence. Every
//! interaction is an explicit [`SceneMsg`] so components can live on any
//! shard of a [`simkit::shard::ShardedKernel`].

use sdds_power::scene::ScenePower;
use simkit::shard::{GlobalSlot, ShardComponent, ShardCtx};
use simkit::{SimDuration, SimTime};

/// One client I/O request travelling through the scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneRequest {
    /// Sequential id, unique per client.
    pub id: u64,
    /// Slot of the issuing client (replies go back here).
    pub client: GlobalSlot,
    /// Slot of the destination I/O group.
    pub group: GlobalSlot,
    /// Payload size in bytes.
    pub bytes: u32,
    /// True for writes (burst-buffer eligible), false for reads.
    pub write: bool,
}

/// The cross-shard message vocabulary of a scale scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneMsg {
    /// A client request, forwarded link → group.
    Request(SceneRequest),
    /// Completion notification, group → client.
    Reply {
        /// Id of the completed request.
        id: u64,
        /// Bytes moved.
        bytes: u32,
        /// Whether the request was a write.
        write: bool,
    },
    /// A client asking the global scheduler when its class may do I/O.
    WindowRequest {
        /// Slot of the asking client.
        client: GlobalSlot,
        /// The client's I/O class.
        class: u32,
    },
    /// The scheduler's answer: the window is open on delivery and stays
    /// open until `until`.
    Grant {
        /// End of the granted I/O window.
        until: SimTime,
    },
}

/// Counters exported by a [`SharedLink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Requests forwarded.
    pub forwarded: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Total serialization time (busy time) in microseconds.
    pub busy_us: u64,
    /// Largest queueing backlog any request saw, in microseconds.
    pub peak_backlog_us: u64,
}

/// A congestion-limited shared network link.
///
/// Purely reactive: requests arriving while the link is busy queue behind
/// `busy_until`, so a thundering herd of same-window bursts serializes
/// and the backlog is visible in [`LinkStats::peak_backlog_us`].
#[derive(Debug, Clone)]
pub struct SharedLink {
    /// Link bandwidth in bytes per second.
    bytes_per_sec: u64,
    /// One-hop forwarding latency (also the shard lookahead).
    hop: SimDuration,
    busy_until: SimTime,
    /// Exported counters.
    pub stats: LinkStats,
}

impl SharedLink {
    /// A link with the given bandwidth and hop latency.
    #[must_use]
    pub fn new(bytes_per_sec: u64, hop: SimDuration) -> Self {
        SharedLink {
            bytes_per_sec: bytes_per_sec.max(1),
            hop,
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// Serialization time for `bytes` at link bandwidth.
    fn wire_time(&self, bytes: u32) -> SimDuration {
        SimDuration::from_micros((u64::from(bytes)).saturating_mul(1_000_000) / self.bytes_per_sec)
    }
}

impl ShardComponent<SceneMsg> for SharedLink {
    fn next_tick(&self) -> Option<SimTime> {
        None
    }

    fn tick(&mut self, _now: SimTime, _ctx: &mut ShardCtx<'_, SceneMsg>) {}

    fn on_message(&mut self, now: SimTime, msg: SceneMsg, ctx: &mut ShardCtx<'_, SceneMsg>) {
        let SceneMsg::Request(req) = msg else { return };
        let start = now.max(self.busy_until);
        let backlog = start.saturating_since(now);
        let wire = self.wire_time(req.bytes);
        let done = start + wire;
        self.busy_until = done;
        self.stats.forwarded += 1;
        self.stats.bytes += u64::from(req.bytes);
        self.stats.busy_us += wire.as_micros();
        self.stats.peak_backlog_us = self.stats.peak_backlog_us.max(backlog.as_micros());
        ctx.send(req.group, done + self.hop, SceneMsg::Request(req));
    }
}

/// Sizing and timing of one I/O group's burst buffer and disk bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupParams {
    /// Disks in the bank.
    pub disks: usize,
    /// Fixed per-request disk overhead (seek + rotation + controller).
    pub disk_overhead: SimDuration,
    /// Disk media bandwidth in bytes per second.
    pub disk_bytes_per_sec: u64,
    /// Burst-buffer capacity in bytes; zero disables the buffer.
    pub bb_capacity: u64,
    /// Burst-buffer ingest bandwidth in bytes per second.
    pub bb_bytes_per_sec: u64,
    /// Bytes drained to disk per drain tick.
    pub bb_drain_chunk: u64,
    /// Cadence of drain ticks while the buffer holds data.
    pub bb_drain_period: SimDuration,
    /// One-hop reply latency (also the shard lookahead).
    pub hop: SimDuration,
}

/// Counters exported by a [`BurstBufferGroup`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Read requests served from the disk bank.
    pub reads: u64,
    /// Write requests absorbed by the burst buffer.
    pub buffered_writes: u64,
    /// Write requests that bypassed a full buffer straight to disk.
    pub direct_writes: u64,
    /// Bytes read from disks.
    pub bytes_read: u64,
    /// Bytes written (buffered + direct).
    pub bytes_written: u64,
    /// Bytes absorbed into the burst buffer.
    pub bb_absorbed: u64,
    /// Bytes drained from the buffer to disks.
    pub bb_drained: u64,
    /// Drain ticks executed.
    pub drains: u64,
}

/// An I/O group: a burst-buffer tier in front of a bank of disks.
///
/// Reads always hit the disk bank. Writes land in the burst buffer when
/// there is room (acknowledged at ingest speed) and drain to disks in
/// fixed chunks on a periodic tick; when the buffer is full they fall
/// through to the disks directly.
#[derive(Debug, Clone)]
pub struct BurstBufferGroup {
    params: GroupParams,
    power: ScenePower,
    bb_used: u64,
    next_drain: Option<SimTime>,
    rr: u64,
    /// Exported counters.
    pub stats: GroupStats,
}

impl BurstBufferGroup {
    /// A group with the given sizing and a disk bank power model.
    #[must_use]
    pub fn new(params: GroupParams, power: ScenePower) -> Self {
        BurstBufferGroup {
            params,
            power,
            bb_used: 0,
            next_drain: None,
            rr: 0,
            stats: GroupStats::default(),
        }
    }

    /// Disk service time for `bytes`.
    fn disk_time(&self, bytes: u64) -> SimDuration {
        self.params.disk_overhead
            + SimDuration::from_micros(
                bytes.saturating_mul(1_000_000) / self.params.disk_bytes_per_sec.max(1),
            )
    }

    /// Burst-buffer ingest time for `bytes`.
    fn bb_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(
            bytes.saturating_mul(1_000_000) / self.params.bb_bytes_per_sec.max(1),
        )
    }

    /// Serves `bytes` on the next disk in round-robin order.
    fn serve_disk(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let disk = (self.rr % self.params.disks.max(1) as u64) as usize;
        self.rr = self.rr.wrapping_add(1);
        let work = self.disk_time(bytes);
        self.power.serve(disk, at, work)
    }

    /// Read access to the disk bank's power model.
    #[must_use]
    pub fn power(&self) -> &ScenePower {
        &self.power
    }

    /// Closes the power books at `end` (trailing idle/standby).
    pub fn finish(&mut self, end: SimTime) {
        self.power.finish(end);
    }

    /// Bytes currently parked in the burst buffer.
    #[must_use]
    pub fn bb_used(&self) -> u64 {
        self.bb_used
    }
}

impl ShardComponent<SceneMsg> for BurstBufferGroup {
    fn next_tick(&self) -> Option<SimTime> {
        self.next_drain
    }

    fn tick(&mut self, now: SimTime, _ctx: &mut ShardCtx<'_, SceneMsg>) {
        // Periodic drain: move one chunk from the buffer to the disks.
        let chunk = self.bb_used.min(self.params.bb_drain_chunk.max(1));
        if chunk > 0 {
            self.serve_disk(now, chunk);
            self.bb_used -= chunk;
            self.stats.bb_drained += chunk;
            self.stats.drains += 1;
        }
        self.next_drain = if self.bb_used > 0 {
            Some(now + self.params.bb_drain_period)
        } else {
            None
        };
    }

    fn on_message(&mut self, now: SimTime, msg: SceneMsg, ctx: &mut ShardCtx<'_, SceneMsg>) {
        let SceneMsg::Request(req) = msg else { return };
        let bytes = u64::from(req.bytes);
        let done = if !req.write {
            self.stats.reads += 1;
            self.stats.bytes_read += bytes;
            self.serve_disk(now, bytes)
        } else if self.params.bb_capacity > 0 && self.bb_used + bytes <= self.params.bb_capacity {
            self.stats.buffered_writes += 1;
            self.stats.bytes_written += bytes;
            self.stats.bb_absorbed += bytes;
            self.bb_used += bytes;
            if self.next_drain.is_none() {
                self.next_drain = Some(now + self.params.bb_drain_period);
            }
            now + self.bb_time(bytes)
        } else {
            self.stats.direct_writes += 1;
            self.stats.bytes_written += bytes;
            self.serve_disk(now, bytes)
        };
        ctx.send(
            req.client,
            done + self.params.hop,
            SceneMsg::Reply {
                id: req.id,
                bytes: req.bytes,
                write: req.write,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_power::scene::ScenePowerParams;
    use simkit::shard::ShardedKernel;

    const HOP: SimDuration = SimDuration::from_millis(1);

    fn group(bb_capacity: u64) -> BurstBufferGroup {
        let params = GroupParams {
            disks: 2,
            disk_overhead: SimDuration::from_millis(6),
            disk_bytes_per_sec: 80 * 1024 * 1024,
            bb_capacity,
            bb_bytes_per_sec: 2 * 1024 * 1024 * 1024,
            bb_drain_chunk: 1024 * 1024,
            bb_drain_period: SimDuration::from_millis(4),
            hop: HOP,
        };
        let power = ScenePower::new(
            ScenePowerParams::paper_scene(SimDuration::from_secs(2)),
            params.disks,
        );
        BurstBufferGroup::new(params, power)
    }

    /// Collects replies so link/group behaviour can be observed end to end.
    struct Sink {
        start: Option<SimTime>,
        send: Vec<(GlobalSlot, SceneRequest)>,
        replies: Vec<(u64, u64)>,
    }

    impl ShardComponent<SceneMsg> for Sink {
        fn next_tick(&self) -> Option<SimTime> {
            self.start
        }
        fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, SceneMsg>) {
            self.start = None;
            for (via, req) in self.send.drain(..) {
                ctx.send(via, now + HOP, SceneMsg::Request(req));
            }
        }
        fn on_message(&mut self, now: SimTime, msg: SceneMsg, _ctx: &mut ShardCtx<'_, SceneMsg>) {
            if let SceneMsg::Reply { id, .. } = msg {
                self.replies.push((id, now.as_micros()));
            }
        }
    }

    fn run_scene(bb_capacity: u64, writes: bool) -> (Vec<(u64, u64)>, LinkStats, GroupStats) {
        let mut k = ShardedKernel::new(2, HOP).unwrap();
        let client = GlobalSlot::from_index(2);
        let link = k
            .add(0, SceneNode::Link(SharedLink::new(10 * 1024 * 1024, HOP)))
            .unwrap();
        let grp = k.add(1, SceneNode::Group(group(bb_capacity))).unwrap();
        let reqs: Vec<(GlobalSlot, SceneRequest)> = (0..4u64)
            .map(|i| {
                (
                    link,
                    SceneRequest {
                        id: i,
                        client,
                        group: grp,
                        bytes: 256 * 1024,
                        write: writes,
                    },
                )
            })
            .collect();
        let sink = k
            .add(
                0,
                SceneNode::Sink(Sink {
                    start: Some(SimTime::ZERO),
                    send: reqs,
                    replies: Vec::new(),
                }),
            )
            .unwrap();
        assert_eq!(sink.index(), client.index());
        k.run(1, SimTime::MAX).unwrap();
        let mut out = (Vec::new(), LinkStats::default(), GroupStats::default());
        for c in k.into_components() {
            match c {
                SceneNode::Sink(s) => out.0 = s.replies,
                SceneNode::Link(l) => out.1 = l.stats,
                SceneNode::Group(g) => out.2 = g.stats,
            }
        }
        out
    }

    #[allow(clippy::large_enum_variant)]
    enum SceneNode {
        Link(SharedLink),
        Group(BurstBufferGroup),
        Sink(Sink),
    }

    impl ShardComponent<SceneMsg> for SceneNode {
        fn next_tick(&self) -> Option<SimTime> {
            match self {
                SceneNode::Link(c) => c.next_tick(),
                SceneNode::Group(c) => c.next_tick(),
                SceneNode::Sink(c) => c.next_tick(),
            }
        }
        fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, SceneMsg>) {
            match self {
                SceneNode::Link(c) => c.tick(now, ctx),
                SceneNode::Group(c) => c.tick(now, ctx),
                SceneNode::Sink(c) => c.tick(now, ctx),
            }
        }
        fn on_message(&mut self, now: SimTime, msg: SceneMsg, ctx: &mut ShardCtx<'_, SceneMsg>) {
            match self {
                SceneNode::Link(c) => c.on_message(now, msg, ctx),
                SceneNode::Group(c) => c.on_message(now, msg, ctx),
                SceneNode::Sink(c) => c.on_message(now, msg, ctx),
            }
        }
    }

    #[test]
    fn link_serializes_concurrent_bursts() {
        let (replies, link, group) = run_scene(0, false);
        assert_eq!(replies.len(), 4);
        assert_eq!(link.forwarded, 4);
        assert_eq!(group.reads, 4);
        // Four same-instant 256 KiB sends over a 10 MiB/s link must queue.
        assert!(link.peak_backlog_us > 0, "no congestion backlog seen");
        // Replies arrive in increasing time, ids in disk round-robin order.
        for w in replies.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn burst_buffer_absorbs_then_drains() {
        let (replies, _link, group) = run_scene(16 * 1024 * 1024, true);
        assert_eq!(replies.len(), 4);
        assert_eq!(group.buffered_writes, 4);
        assert_eq!(group.direct_writes, 0);
        assert_eq!(group.bb_absorbed, 4 * 256 * 1024);
        assert_eq!(
            group.bb_drained, group.bb_absorbed,
            "drain did not empty the buffer"
        );
        assert!(group.drains >= 1);
    }

    #[test]
    fn full_buffer_falls_through_to_disk() {
        let (replies, _link, group) = run_scene(100, true);
        assert_eq!(replies.len(), 4);
        assert_eq!(group.buffered_writes, 0);
        assert_eq!(group.direct_writes, 4);
    }
}
