//! k-replica object placement across a shuffled disk pool with a hot
//! spare reserve.
//!
//! The paper's striping layout spreads *one file* across I/O nodes; a
//! replicated object store instead places *whole objects* k times across
//! a flat disk pool. The assignment here follows the disk-manager idiom
//! of the exemplar repositories:
//!
//! * every replica choice walks the disks in a **seed-shuffled order**
//!   (a fresh shuffle per object, drawn from the placement's own
//!   [`DetRng`] substream), so load spreads without any global counter;
//! * a disk already holding an earlier replica of the same object is
//!   skipped, so the k replicas always land on k distinct disks;
//! * **tag locality**: the first pass prefers disks that already hold a
//!   segment of the object's tag (co-locating related objects improves
//!   sequential read behaviour); only when no tagged disk has room does
//!   the second pass take any disk with free capacity, tagging it as it
//!   goes;
//! * the last `spares` disks are a **hot-spare reserve**: they receive
//!   no objects at placement time and exist to absorb a rebuild after a
//!   member failure ([`Placement::promote_spare`]).
//!
//! The build is a pure function of `(params, objects)`, so two builds
//! from the same inputs are identical — the routing and rebuild layers
//! above rely on that for byte-deterministic reports.

use simkit::{DetRng, StreamId};

use crate::error::StorageError;

/// Geometry and tuning of a replicated object placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementParams {
    /// Data disks objects may be placed on (disks `0..data_disks`).
    pub data_disks: usize,
    /// Hot spares reserved after the data disks (disks
    /// `data_disks..data_disks + spares`); never placed on.
    pub spares: usize,
    /// Replicas per object; each lands on a distinct data disk.
    pub replicas: usize,
    /// Capacity of every disk in bytes.
    pub disk_capacity: u64,
    /// Seed of the placement shuffle stream.
    pub seed: u64,
}

impl PlacementParams {
    /// Checks the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError::Placement`] naming the offending field
    /// when there are no data disks, no replicas, more replicas than
    /// data disks, or no capacity.
    pub fn validate(&self) -> Result<(), StorageError> {
        if self.data_disks == 0 {
            return Err(StorageError::Placement {
                field: "data_disks",
                reason: "need at least one data disk",
            });
        }
        if self.replicas == 0 {
            return Err(StorageError::Placement {
                field: "replicas",
                reason: "need at least one replica",
            });
        }
        if self.replicas > self.data_disks {
            return Err(StorageError::Placement {
                field: "replicas",
                reason: "cannot exceed the data disk count",
            });
        }
        if self.disk_capacity == 0 {
            return Err(StorageError::Placement {
                field: "disk_capacity",
                reason: "must be positive",
            });
        }
        Ok(())
    }
}

/// One object to place: identity, locality tag and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectSpec {
    /// Object identity; must be unique within one build.
    pub id: u64,
    /// Locality tag: objects sharing a tag prefer sharing disks.
    pub tag: u32,
    /// Object size in bytes (each replica stores the full size).
    pub bytes: u64,
}

/// Per-disk placement state.
#[derive(Debug, Clone, Default)]
struct DiskSlot {
    /// Bytes of replicas stored on this disk.
    used: u64,
    /// Tags with a segment on this disk, in adoption order.
    tags: Vec<u32>,
    /// Objects (by index into the object table) with a replica here.
    objects: Vec<usize>,
}

/// A fully built k-replica assignment with a spare reserve.
#[derive(Debug, Clone)]
pub struct Placement {
    params: PlacementParams,
    objects: Vec<ObjectSpec>,
    /// `replicas[i]` lists the disks holding object `i`, primary first.
    replicas: Vec<Vec<usize>>,
    disks: Vec<DiskSlot>,
    /// Spares handed out by [`Placement::promote_spare`] so far.
    promoted: usize,
}

impl Placement {
    /// Places `objects` (in order) under `params`.
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError::Placement`] when the geometry is
    /// invalid or the pool cannot hold every replica of every object.
    pub fn build(params: &PlacementParams, objects: &[ObjectSpec]) -> Result<Self, StorageError> {
        params.validate()?;
        let mut root = DetRng::for_stream(params.seed, StreamId::Workload).substream("placement");
        let total = params.data_disks + params.spares;
        let mut disks = vec![DiskSlot::default(); total];
        let mut replicas: Vec<Vec<usize>> = Vec::with_capacity(objects.len());
        let mut order: Vec<usize> = (0..params.data_disks).collect();
        for (idx, obj) in objects.iter().enumerate() {
            // A fresh shuffled walk order per object, like the exemplar
            // disk managers: load spreads by construction, and the walk
            // is independent of how earlier objects landed.
            order.sort_unstable();
            root.shuffle(&mut order);
            let mut chosen: Vec<usize> = Vec::with_capacity(params.replicas);
            for _ in 0..params.replicas {
                let fits = |slot: &DiskSlot| slot.used + obj.bytes <= params.disk_capacity;
                // First pass: a disk already holding this tag (locality).
                let mut pick = order.iter().copied().find(|&d| {
                    !chosen.contains(&d) && disks[d].tags.contains(&obj.tag) && fits(&disks[d])
                });
                // Second pass: any data disk with room, adopting the tag.
                if pick.is_none() {
                    pick = order
                        .iter()
                        .copied()
                        .find(|&d| !chosen.contains(&d) && fits(&disks[d]));
                }
                let Some(d) = pick else {
                    return Err(StorageError::Placement {
                        field: "disk_capacity",
                        reason: "pool too small to hold every replica",
                    });
                };
                if !disks[d].tags.contains(&obj.tag) {
                    disks[d].tags.push(obj.tag);
                }
                disks[d].used += obj.bytes;
                disks[d].objects.push(idx);
                chosen.push(d);
            }
            replicas.push(chosen);
        }
        Ok(Placement {
            params: params.clone(),
            objects: objects.to_vec(),
            replicas,
            disks,
            promoted: 0,
        })
    }

    /// The parameters this placement was built under.
    pub fn params(&self) -> &PlacementParams {
        &self.params
    }

    /// Total disks in the pool (data disks plus spares).
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Objects placed, in build order.
    pub fn objects(&self) -> &[ObjectSpec] {
        &self.objects
    }

    /// The disks holding object `obj` (an index into [`Self::objects`]),
    /// primary first.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range (a wiring bug, not data).
    pub fn replicas_of(&self, obj: usize) -> &[usize] {
        &self.replicas[obj]
    }

    /// Object indices with a replica on `disk`, in placement order.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range (a wiring bug, not data).
    pub fn objects_on(&self, disk: usize) -> &[usize] {
        &self.disks[disk].objects
    }

    /// Bytes of replicas stored on `disk`.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range (a wiring bug, not data).
    pub fn used_bytes(&self, disk: usize) -> u64 {
        self.disks[disk].used
    }

    /// True when `disk` is in the hot-spare reserve.
    pub fn is_spare(&self, disk: usize) -> bool {
        disk >= self.params.data_disks && disk < self.disks.len()
    }

    /// Hands out the next unpromoted hot spare (lowest index first), or
    /// `None` when the reserve is exhausted. Promotion order is
    /// deterministic, so rebuild targets are reproducible.
    pub fn promote_spare(&mut self) -> Option<usize> {
        let next = self.params.data_disks + self.promoted;
        if next < self.disks.len() {
            self.promoted += 1;
            Some(next)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PlacementParams {
        PlacementParams {
            data_disks: 8,
            spares: 2,
            replicas: 3,
            disk_capacity: 64 * 1024 * 1024,
            seed: 42,
        }
    }

    fn objects(n: u64) -> Vec<ObjectSpec> {
        (0..n)
            .map(|id| ObjectSpec {
                id,
                tag: (id % 4) as u32,
                bytes: 1024 * 1024,
            })
            .collect()
    }

    #[test]
    fn build_is_deterministic() {
        let objs = objects(64);
        let a = Placement::build(&params(), &objs).unwrap();
        let b = Placement::build(&params(), &objs).unwrap();
        assert_eq!(a.replicas, b.replicas);
        let mut other = params();
        other.seed = 43;
        let c = Placement::build(&other, &objs).unwrap();
        assert_ne!(a.replicas, c.replicas, "seed must matter");
    }

    #[test]
    fn replicas_are_distinct_data_disks() {
        let p = Placement::build(&params(), &objects(64)).unwrap();
        for obj in 0..64 {
            let r = p.replicas_of(obj);
            assert_eq!(r.len(), 3);
            for (i, &d) in r.iter().enumerate() {
                assert!(!p.is_spare(d), "replica landed on a spare");
                assert!(!r[..i].contains(&d), "duplicate replica disk");
            }
        }
    }

    #[test]
    fn spares_stay_empty_and_promote_in_order() {
        let mut p = Placement::build(&params(), &objects(64)).unwrap();
        assert_eq!(p.used_bytes(8), 0);
        assert_eq!(p.used_bytes(9), 0);
        assert!(p.objects_on(8).is_empty());
        assert_eq!(p.promote_spare(), Some(8));
        assert_eq!(p.promote_spare(), Some(9));
        assert_eq!(p.promote_spare(), None);
    }

    #[test]
    fn accounting_reconciles() {
        let objs = objects(32);
        let p = Placement::build(&params(), &objs).unwrap();
        let placed: u64 = (0..p.disk_count()).map(|d| p.used_bytes(d)).sum();
        let expected: u64 = objs.iter().map(|o| o.bytes * 3).sum();
        assert_eq!(placed, expected);
        for d in 0..p.disk_count() {
            let on_disk: u64 = p.objects_on(d).iter().map(|&o| objs[o].bytes).sum();
            assert_eq!(on_disk, p.used_bytes(d));
        }
    }

    #[test]
    fn tag_locality_groups_objects() {
        // With one tag per disk's worth of objects and plenty of room,
        // tagged objects cluster: the disks a tag touches stay well
        // below the object count (pure random spread would touch more).
        let spec = PlacementParams {
            data_disks: 16,
            spares: 0,
            replicas: 1,
            disk_capacity: u64::MAX / 2,
            seed: 7,
        };
        let objs: Vec<ObjectSpec> = (0..64)
            .map(|id| ObjectSpec {
                id,
                tag: (id % 4) as u32,
                bytes: 1,
            })
            .collect();
        let p = Placement::build(&spec, &objs).unwrap();
        for tag in 0..4u32 {
            let mut disks: Vec<usize> = objs
                .iter()
                .enumerate()
                .filter(|(_, o)| o.tag == tag)
                .map(|(i, _)| p.replicas_of(i)[0])
                .collect();
            disks.sort_unstable();
            disks.dedup();
            assert!(
                disks.len() <= 4,
                "tag {tag} spread over {} disks, locality not applied",
                disks.len()
            );
        }
    }

    #[test]
    fn rejects_bad_geometry() {
        let objs = objects(4);
        let mut p = params();
        p.replicas = 9;
        assert!(Placement::build(&p, &objs).is_err());
        let mut p = params();
        p.data_disks = 0;
        assert!(Placement::build(&p, &objs).is_err());
        let mut p = params();
        p.disk_capacity = 1;
        assert!(Placement::build(&p, &objs).is_err());
        let mut p = params();
        p.replicas = 0;
        assert!(Placement::build(&p, &objs).is_err());
    }
}
