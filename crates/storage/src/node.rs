//! An I/O node: storage cache + RAID array of policy-managed disks.

use sdds_disk::{DiskParams, DiskRequest, EnergyAccount};
use sdds_power::{PolicyKind, PoweredArray};
use simkit::hash::FxHashMap;
use simkit::stats::{BucketHistogram, DurationHistogram};
use simkit::telemetry::{MetricsRegistry, TraceEvent, TraceSink};
use simkit::{SimDuration, SimTime};

use crate::cache::{BlockKey, CacheConfig, StorageCache};
use crate::error::StorageError;
use crate::raid::RaidConfig;

/// Configuration of one I/O node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Storage-cache configuration.
    pub cache: CacheConfig,
    /// RAID geometry.
    pub raid: RaidConfig,
    /// Member-disk parameters.
    pub disk: DiskParams,
    /// Power policy applied to every member disk.
    pub policy: PolicyKind,
    /// Server-side service time for a cache hit (memory copy + bus).
    pub hit_latency: SimDuration,
}

impl NodeConfig {
    /// Table II defaults with the given power policy.
    pub fn paper_defaults(policy: PolicyKind) -> Self {
        NodeConfig {
            cache: CacheConfig::paper_defaults(),
            raid: RaidConfig::paper_defaults(),
            disk: DiskParams::paper_defaults(),
            policy,
            hit_latency: SimDuration::from_micros(500),
        }
    }

    /// Checks every part of the node configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`StorageError`] found: an undersized cache, or a
    /// power policy / disk parameter combination rejected by
    /// [`PolicyKind::validate`].
    pub fn validate(&self) -> Result<(), StorageError> {
        self.cache.validate()?;
        self.policy.validate(&self.disk)?;
        Ok(())
    }
}

/// Result of offering an access to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOp {
    /// Served from the storage cache; done at the given time.
    Hit(SimTime),
    /// Disk work was issued; a completion for this operation id will be
    /// reported later.
    Pending(u64),
}

/// Why a member-disk request was issued.
#[derive(Debug, Clone, Copy)]
enum Purpose {
    /// Part of node operation `op`; on the last member completion the op
    /// completes, and `fill` (for reads) installs the block in the cache.
    Op { op: u64, fill: Option<BlockKey> },
    /// Opportunistic read-ahead of `block`.
    Prefetch { block: BlockKey },
}

/// An I/O node of the Figure 1 architecture.
///
/// Node-level block reads first consult the storage cache; misses fan out
/// through the RAID layer to the member disks (each wrapped in its own
/// power policy). Writes are written through. Completions are collected
/// per node operation (the slowest member defines the completion time).
#[derive(Debug)]
pub struct IoNode {
    id: usize,
    cache: StorageCache,
    raid: RaidConfig,
    hit_latency: SimDuration,
    array: PoweredArray,
    next_request: u64,
    next_op: u64,
    purposes: FxHashMap<u64, Purpose>,
    remaining: FxHashMap<u64, (usize, SimTime)>,
    completions: Vec<(u64, SimTime)>,
    /// Telemetry buffer for cache events; `None` (the default) keeps
    /// tracing entirely off the hot path.
    trace: Option<TraceSink>,
}

impl IoNode {
    /// Creates node `id` from a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] when the cache configuration or the
    /// power policy / disk parameter combination is invalid.
    pub fn new(id: usize, config: &NodeConfig) -> Result<Self, StorageError> {
        let array = PoweredArray::new(
            config.disk.clone(),
            config.raid.disks(),
            config.policy.clone(),
        )?;
        Ok(IoNode {
            id,
            cache: StorageCache::new(config.cache.clone())?,
            raid: config.raid.clone(),
            hit_latency: config.hit_latency,
            array,
            next_request: 0,
            next_op: 0,
            purposes: FxHashMap::default(),
            remaining: FxHashMap::default(),
            completions: Vec::new(),
            trace: None,
        })
    }

    /// Enables structured tracing on this node: cache activity is
    /// recorded here, and the power driver and member disks record their
    /// own events, all tagged with this node's index. Tracing only
    /// buffers events and never alters the simulation.
    pub fn enable_trace(&mut self) {
        self.array.enable_trace(self.id as u32);
        self.trace = Some(TraceSink::new());
    }

    /// Removes and returns all trace events recorded so far by this node,
    /// its power driver and its member disks (empty when tracing was
    /// never enabled).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        let mut out = match self.trace.as_mut() {
            Some(sink) => sink.take_events(),
            None => Vec::new(),
        };
        out.extend(self.array.take_trace_events());
        out
    }

    /// Publishes node-level metrics into `registry`: the storage cache
    /// under `storage.n<id>.cache`, the merged idle-period histogram
    /// under `storage.n<id>.idle_periods`, and the power driver's and
    /// member disks' metrics.
    pub fn record_metrics(&self, registry: &mut MetricsRegistry) {
        let n = self.id;
        let stats = self.cache.stats();
        registry.counter(&format!("storage.n{n}.cache.read_hits"), stats.read_hits);
        registry.counter(
            &format!("storage.n{n}.cache.read_misses"),
            stats.read_misses,
        );
        registry.counter(&format!("storage.n{n}.cache.writes"), stats.writes);
        registry.counter(
            &format!("storage.n{n}.cache.useful_prefetches"),
            stats.useful_prefetches,
        );
        registry.counter(
            &format!("storage.n{n}.cache.issued_prefetches"),
            stats.issued_prefetches,
        );
        registry.gauge(&format!("storage.n{n}.cache.hit_ratio"), stats.hit_ratio());
        registry.histogram(
            &format!("storage.n{n}.idle_periods"),
            &self.idle_histogram(),
        );
        self.array.record_metrics(registry, n as u32);
    }

    /// This node's index in the array.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The storage cache (read-only).
    pub fn cache(&self) -> &StorageCache {
        &self.cache
    }

    /// The member disks (read-only).
    pub fn disks(&self) -> &[sdds_disk::Disk] {
        self.array.disks()
    }

    /// Submits a node-local block read at `t`.
    pub fn submit_read(&mut self, block: BlockKey, t: SimTime) -> NodeOp {
        let outcome = self.cache.read(block);
        if let Some(sink) = self.trace.as_mut() {
            let kind = if outcome.prefetched_hit {
                "read-hit-prefetched"
            } else if outcome.hit {
                "read-hit"
            } else {
                "read-miss"
            };
            sink.record(TraceEvent::CacheAccess {
                at: t,
                node: self.id as u32,
                file: block.0 .0,
                block: block.1,
                kind,
            });
            for key in &outcome.prefetches {
                sink.record(TraceEvent::PrefetchIssue {
                    at: t,
                    node: self.id as u32,
                    file: key.0 .0,
                    block: key.1,
                });
            }
        }
        if outcome.hit {
            return NodeOp::Hit(t + self.hit_latency);
        }
        let op = self.new_op();
        let mut members = 0;
        for key in &outcome.demand_fetches {
            members += self.issue(
                self.raid.map_read(key.1),
                Purpose::Op {
                    op,
                    fill: Some(*key),
                },
                t,
            );
        }
        for key in &outcome.prefetches {
            self.issue(
                self.raid.map_read(key.1),
                Purpose::Prefetch { block: *key },
                t,
            );
        }
        debug_assert!(members > 0, "a read miss must touch at least one disk");
        self.remaining.insert(op, (members, t));
        NodeOp::Pending(op)
    }

    /// Submits a node-local block write at `t` (write-through).
    pub fn submit_write(&mut self, block: BlockKey, t: SimTime) -> NodeOp {
        let outcome = self.cache.write(block);
        if let Some(sink) = self.trace.as_mut() {
            sink.record(TraceEvent::CacheAccess {
                at: t,
                node: self.id as u32,
                file: block.0 .0,
                block: block.1,
                kind: "write",
            });
            if let Some((f, b)) = outcome.evicted {
                sink.record(TraceEvent::CacheEvict {
                    at: t,
                    node: self.id as u32,
                    file: f.0,
                    block: b,
                });
            }
        }
        let op = self.new_op();
        let mut members = 0;
        for key in &outcome.writebacks {
            members += self.issue(
                self.raid.map_write(key.1),
                Purpose::Op { op, fill: None },
                t,
            );
        }
        debug_assert!(members > 0, "a write must touch at least one disk");
        self.remaining.insert(op, (members, t));
        NodeOp::Pending(op)
    }

    /// The next instant at which any member disk needs attention.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.array.next_event_time()
    }

    /// Advances all member disks to `t` and collects op completions.
    pub fn advance_to(&mut self, t: SimTime) {
        self.array.advance_to(t);
        self.collect_completions();
    }

    /// Ends the simulation at `t` for all member disks.
    pub fn finish(&mut self, t: SimTime) {
        self.array.finish(t);
        self.collect_completions();
    }

    /// Removes and returns completed node operations as
    /// `(op_id, completion_time)` pairs.
    ///
    /// Collects any member-disk completions first, so operations finished
    /// during a `submit_*` call surface immediately — a later caller must
    /// never observe a completion older than the last interaction time.
    pub fn drain_completions(&mut self) -> Vec<(u64, SimTime)> {
        self.collect_completions();
        std::mem::take(&mut self.completions)
    }

    /// Feeds completed node operations to `sink` as
    /// `(op_id, completion_time)` and clears them, keeping this node's
    /// buffer capacity — the allocation-free variant of
    /// [`IoNode::drain_completions`].
    pub fn drain_completions_with(&mut self, mut sink: impl FnMut(u64, SimTime)) {
        self.collect_completions();
        for (op, at) in self.completions.drain(..) {
            sink(op, at);
        }
    }

    /// Total energy of all member disks, in joules.
    pub fn total_joules(&self) -> f64 {
        self.array.total_joules()
    }

    /// Merged per-state energy account of the member disks.
    pub fn energy(&self) -> EnergyAccount {
        let mut acct = EnergyAccount::new();
        for d in self.array.disks() {
            acct.merge(d.energy());
        }
        acct
    }

    /// Merged idle-period histogram of the member disks.
    pub fn idle_histogram(&self) -> BucketHistogram {
        let mut h = BucketHistogram::paper_idle_buckets();
        for d in self.array.disks() {
            h.merge(d.idle_tracker().histogram());
        }
        h
    }

    /// Merged time-weighted idle histogram of the member disks.
    pub fn idle_time_histogram(&self) -> DurationHistogram {
        let mut h = DurationHistogram::paper_idle_buckets();
        for d in self.array.disks() {
            h.merge(d.idle_tracker().time_histogram());
        }
        h
    }

    fn new_op(&mut self) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        op
    }

    /// Issues member requests tagged with `purpose`; returns how many were
    /// issued.
    fn issue(
        &mut self,
        members: Vec<crate::raid::MemberRequest>,
        purpose: Purpose,
        t: SimTime,
    ) -> usize {
        let n = members.len();
        for m in members {
            let id = self.next_request;
            self.next_request += 1;
            self.purposes.insert(id, purpose);
            self.array
                .submit(m.disk, DiskRequest::new(id, m.kind, m.lba, m.sectors), t);
        }
        n
    }

    fn collect_completions(&mut self) {
        // Destructure so the sink closure can borrow the routing state
        // while the array drains into it without any intermediate Vec.
        let IoNode {
            array,
            cache,
            purposes,
            remaining,
            completions,
            trace,
            id,
            ..
        } = self;
        let node_id = *id as u32;
        array.drain_completions_with(|_disk_idx, done| {
            let Some(purpose) = purposes.remove(&done.request.id.0) else {
                debug_assert!(false, "completion for unknown request {}", done.request.id);
                return;
            };
            match purpose {
                Purpose::Prefetch { block } => {
                    let evicted = cache.fill(block, true);
                    if let (Some(sink), Some((f, b))) = (trace.as_mut(), evicted) {
                        sink.record(TraceEvent::CacheEvict {
                            at: done.completion,
                            node: node_id,
                            file: f.0,
                            block: b,
                        });
                    }
                }
                Purpose::Op { op, fill } => {
                    let Some(entry) = remaining.get_mut(&op) else {
                        debug_assert!(false, "op bookkeeping out of sync for op {op}");
                        return;
                    };
                    entry.0 -= 1;
                    entry.1 = entry.1.max(done.completion);
                    if entry.0 == 0 {
                        let Some((_, finished_at)) = remaining.remove(&op) else {
                            debug_assert!(false, "op {op} vanished mid-completion");
                            return;
                        };
                        if let Some(block) = fill {
                            let evicted = cache.fill(block, false);
                            if let (Some(sink), Some((f, b))) = (trace.as_mut(), evicted) {
                                sink.record(TraceEvent::CacheEvict {
                                    at: finished_at,
                                    node: node_id,
                                    file: f.0,
                                    block: b,
                                });
                            }
                        }
                        completions.push((op, finished_at));
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::striping::FileId;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn node() -> IoNode {
        IoNode::new(0, &NodeConfig::paper_defaults(PolicyKind::NoPm)).unwrap()
    }

    fn block(i: u64) -> BlockKey {
        (FileId(0), i)
    }

    #[test]
    fn read_miss_completes_via_disks() {
        let mut n = node();
        let op = match n.submit_read(block(0), t(0)) {
            NodeOp::Pending(op) => op,
            hit => panic!("expected a miss, got {hit:?}"),
        };
        n.advance_to(t(5_000_000));
        let done = n.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, op);
        assert!(done[0].1 > t(0));
    }

    #[test]
    fn read_hit_after_fill() {
        let mut n = node();
        n.submit_read(block(0), t(0));
        n.advance_to(t(5_000_000));
        n.drain_completions();
        match n.submit_read(block(0), t(5_000_000)) {
            NodeOp::Hit(done) => assert_eq!(done, t(5_000_000) + n.hit_latency),
            other => panic!("expected a hit, got {other:?}"),
        }
    }

    #[test]
    fn prefetch_makes_next_block_a_hit() {
        let mut n = node();
        n.submit_read(block(0), t(0)); // prefetches blocks 1, 2
        n.advance_to(t(5_000_000));
        n.drain_completions();
        assert!(matches!(
            n.submit_read(block(1), t(5_000_000)),
            NodeOp::Hit(_)
        ));
        assert!(n.cache().stats().useful_prefetches >= 1);
    }

    #[test]
    fn write_fans_out_to_all_members() {
        let mut n = node();
        let op = match n.submit_write(block(3), t(0)) {
            NodeOp::Pending(op) => op,
            hit => panic!("unexpected {hit:?}"),
        };
        n.advance_to(t(5_000_000));
        let done = n.drain_completions();
        assert_eq!(done, vec![(op, done[0].1)]);
        // RAID-5 full-stripe write: every member disk served one request.
        for d in n.disks() {
            assert!(d.counters().requests_served >= 1);
        }
    }

    #[test]
    fn completion_time_is_slowest_member() {
        let mut n = node();
        n.submit_read(block(0), t(0));
        n.advance_to(t(5_000_000));
        let done = n.drain_completions();
        assert!(done[0].1 >= t(0));
    }

    #[test]
    fn energy_accrues_across_members() {
        let mut n = node();
        n.finish(t(1_000_000));
        // 4 idle disks for 1 s at 17.1 W.
        assert!((n.total_joules() - 4.0 * 17.1).abs() < 1e-6);
        assert_eq!(n.energy().total_time(), SimDuration::from_secs(4));
    }

    #[test]
    fn idle_histogram_merges_members() {
        let mut n = node();
        n.submit_read(block(0), t(1_000_000));
        n.finish(t(2_000_000));
        let h = n.idle_histogram();
        // Each of the 3 data disks (RAID-5 read) has idle periods before
        // and after its request; the parity disk idles throughout.
        assert!(h.total() >= 4);
    }

    #[test]
    fn distinct_ops_complete_independently() {
        let mut n = node();
        let op0 = n.submit_read(block(0), t(0));
        let op1 = n.submit_read(block(10), t(0));
        n.advance_to(t(10_000_000));
        let done = n.drain_completions();
        assert_eq!(done.len(), 2);
        let (NodeOp::Pending(a), NodeOp::Pending(b)) = (op0, op1) else {
            panic!("both should miss");
        };
        let ids: Vec<u64> = done.iter().map(|c| c.0).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
    }
}
