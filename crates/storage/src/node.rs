//! An I/O node: storage cache + RAID array of policy-managed disks.

use sdds_disk::{
    CompletedRequest, DiskParams, DiskRequest, EnergyAccount, RequestKind, ServiceOutcome,
};
use sdds_power::{PolicyContext, PolicyKind, PoweredArray};
use simkit::fault::{DiskFaultProfile, FaultCounters, FaultPlan};
use simkit::hash::FxHashMap;
use simkit::kernel::{ArbitrationPolicy, Calendar, SlotId};
use simkit::stats::{BucketHistogram, DurationHistogram};
use simkit::telemetry::{MetricsRegistry, TraceEvent, TraceSink};
use simkit::{EventQueue, SimDuration, SimTime};

use crate::cache::{BlockKey, CacheConfig, StorageCache};
use crate::error::StorageError;
use crate::raid::RaidConfig;

/// Configuration of one I/O node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Storage-cache configuration.
    pub cache: CacheConfig,
    /// RAID geometry.
    pub raid: RaidConfig,
    /// Member-disk parameters.
    pub disk: DiskParams,
    /// Power policy applied to every member disk.
    pub policy: PolicyKind,
    /// Server-side service time for a cache hit (memory copy + bus).
    pub hit_latency: SimDuration,
    /// Optional fault-injection plan for the whole array; each node picks
    /// its own per-disk profiles by index. `None` (the default) keeps the
    /// entire fault machinery off the hot path and every simulated metric
    /// bit-for-bit identical to a fault-free build.
    pub faults: Option<FaultPlan>,
    /// Same-time arbitration policy for the node's event calendars (the
    /// power driver's disk/timer calendar and the node's array/deferred
    /// calendar). [`ArbitrationPolicy::Deterministic`] — the default —
    /// keeps every simulated metric bit-for-bit reproducible.
    pub arbitration: ArbitrationPolicy,
}

impl NodeConfig {
    /// Table II defaults with the given power policy.
    pub fn paper_defaults(policy: PolicyKind) -> Self {
        NodeConfig {
            cache: CacheConfig::paper_defaults(),
            raid: RaidConfig::paper_defaults(),
            disk: DiskParams::paper_defaults(),
            policy,
            hit_latency: SimDuration::from_micros(500),
            faults: None,
            arbitration: ArbitrationPolicy::Deterministic,
        }
    }

    /// Checks every part of the node configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`StorageError`] found: an undersized cache, or a
    /// power policy / disk parameter combination rejected by
    /// [`PolicyKind::validate`].
    pub fn validate(&self) -> Result<(), StorageError> {
        self.cache.validate()?;
        self.policy.validate(&self.disk)?;
        Ok(())
    }
}

/// Result of offering an access to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOp {
    /// Served from the storage cache; done at the given time.
    Hit(SimTime),
    /// Disk work was issued; a completion for this operation id will be
    /// reported later.
    Pending(u64),
}

/// Why a member-disk request was issued.
#[derive(Debug, Clone, Copy)]
enum Purpose {
    /// Part of node operation `op`; on the last member completion the op
    /// completes, and `fill` (for reads) installs the block in the cache.
    Op { op: u64, fill: Option<BlockKey> },
    /// Opportunistic read-ahead of `block`.
    Prefetch { block: BlockKey },
}

/// Routing record for one in-flight member-disk request.
#[derive(Debug, Clone, Copy)]
struct IssuedMeta {
    purpose: Purpose,
    /// How many times this attempt chain has already been retried.
    attempt: u8,
    /// `true` for requests issued by the recovery path itself (retries
    /// after remap, reconstruction reads, crash redirects); a failing
    /// recovery read reissues in place instead of fanning out again.
    recovery: bool,
    /// Engine-wide access id this request serves, when known — the causal
    /// parent link recorded on issue-anchored trace events. `None` for
    /// cache-initiated prefetch traffic.
    access: Option<u64>,
}

/// Retries granted to a failing read before its disk is given up on and
/// the RAID layer reconstructs from the surviving members.
const RETRY_LIMIT: u8 = 3;

/// Exponential backoff before retry `attempt + 1`: 1 ms, 2 ms, 4 ms, ...
fn retry_backoff(attempt: u8) -> SimDuration {
    SimDuration::from_millis(1u64 << attempt.min(6))
}

/// An I/O node of the Figure 1 architecture.
///
/// Node-level block reads first consult the storage cache; misses fan out
/// through the RAID layer to the member disks (each wrapped in its own
/// power policy). Writes are written through. Completions are collected
/// per node operation (the slowest member defines the completion time).
#[derive(Debug)]
pub struct IoNode {
    id: usize,
    cache: StorageCache,
    raid: RaidConfig,
    hit_latency: SimDuration,
    array: PoweredArray,
    next_request: u64,
    next_op: u64,
    purposes: FxHashMap<u64, IssuedMeta>,
    remaining: FxHashMap<u64, (usize, SimTime)>,
    completions: Vec<(u64, SimTime)>,
    /// Telemetry buffer for cache events; `None` (the default) keeps
    /// tracing entirely off the hot path.
    trace: Option<TraceSink>,
    /// Latest simulated instant this node has been driven to.
    now: SimTime,
    /// Per-disk fault profiles (crash windows are enforced here, at issue
    /// time); `None` keeps every fault check off the hot path.
    faults: Option<Vec<DiskFaultProfile>>,
    /// Requests parked until a crash window ends or a retry backoff
    /// expires. Always empty without a fault plan.
    deferred: EventQueue<(usize, DiskRequest)>,
    /// Unified calendar over the node's two event sources (the disk
    /// array and the deferred-recovery queue); drives the fault-path
    /// event stepping in [`IoNode::advance_to`] under the configured
    /// arbitration policy.
    cal: Calendar,
    array_slot: SlotId,
    deferred_slot: SlotId,
    /// Scratch buffer for failed completions surfaced while draining the
    /// array (reused across drains; empty on the fault-free path).
    failed_scratch: Vec<(usize, CompletedRequest, IssuedMeta)>,
    /// Recovery-path counters (retries, remaps, reconstructions, ...).
    fault_stats: FaultCounters,
}

impl IoNode {
    /// Creates node `id` from a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] when the cache configuration or the
    /// power policy / disk parameter combination is invalid.
    pub fn new(id: usize, config: &NodeConfig) -> Result<Self, StorageError> {
        // Policies are built per node so that node-aware kinds (the table
        // lookup's per-node forecast row, the online family's per-node
        // jitter substream) know which node they manage.
        let policy = config
            .policy
            .build(&config.disk, PolicyContext::for_node(id))?;
        let mut array =
            PoweredArray::with_policy(config.disk.clone(), config.raid.disks(), policy)?;
        array.set_arbitration(config.arbitration);
        let mut cal = Calendar::new(config.arbitration);
        let array_slot = cal.register();
        let deferred_slot = cal.register();
        let faults = config.faults.as_ref().and_then(|plan| {
            (id < plan.io_nodes()).then(|| {
                let profiles = plan.node(id);
                array.install_faults(profiles);
                profiles.to_vec()
            })
        });
        Ok(IoNode {
            id,
            cache: StorageCache::new(config.cache.clone())?,
            raid: config.raid.clone(),
            hit_latency: config.hit_latency,
            array,
            next_request: 0,
            next_op: 0,
            purposes: FxHashMap::default(),
            remaining: FxHashMap::default(),
            completions: Vec::new(),
            trace: None,
            now: SimTime::ZERO,
            faults,
            deferred: EventQueue::new(),
            cal,
            array_slot,
            deferred_slot,
            failed_scratch: Vec::new(),
            fault_stats: FaultCounters::default(),
        })
    }

    /// Enables structured tracing on this node: cache activity is
    /// recorded here, and the power driver and member disks record their
    /// own events, all tagged with this node's index. Tracing only
    /// buffers events and never alters the simulation.
    pub fn enable_trace(&mut self) {
        self.array.enable_trace(self.id as u32);
        self.trace = Some(TraceSink::new());
    }

    /// Removes and returns all trace events recorded so far by this node,
    /// its power driver and its member disks (empty when tracing was
    /// never enabled).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        let mut out = match self.trace.as_mut() {
            Some(sink) => sink.take_events(),
            None => Vec::new(),
        };
        out.extend(self.array.take_trace_events());
        out
    }

    /// Publishes node-level metrics into `registry`: the storage cache
    /// under `storage.n<id>.cache`, the merged idle-period histogram
    /// under `storage.n<id>.idle_periods`, and the power driver's and
    /// member disks' metrics.
    pub fn record_metrics(&self, registry: &mut MetricsRegistry) {
        let n = self.id;
        let stats = self.cache.stats();
        registry.counter(&format!("storage.n{n}.cache.read_hits"), stats.read_hits);
        registry.counter(
            &format!("storage.n{n}.cache.read_misses"),
            stats.read_misses,
        );
        registry.counter(&format!("storage.n{n}.cache.writes"), stats.writes);
        registry.counter(
            &format!("storage.n{n}.cache.useful_prefetches"),
            stats.useful_prefetches,
        );
        registry.counter(
            &format!("storage.n{n}.cache.issued_prefetches"),
            stats.issued_prefetches,
        );
        registry.gauge(&format!("storage.n{n}.cache.hit_ratio"), stats.hit_ratio());
        registry.histogram(
            &format!("storage.n{n}.idle_periods"),
            &self.idle_histogram(),
        );
        // Fault metrics only exist when a plan is installed, keeping the
        // metrics snapshot of a fault-free run byte-identical to builds
        // without the fault subsystem.
        if self.faults.is_some() {
            let c = self.fault_counters();
            registry.counter(&format!("storage.n{n}.faults.injected"), c.total_injected());
            registry.counter(&format!("storage.n{n}.faults.retried"), c.retried);
            registry.counter(&format!("storage.n{n}.faults.remapped"), c.remapped);
            registry.counter(
                &format!("storage.n{n}.faults.reconstructed"),
                c.reconstructed,
            );
            registry.counter(&format!("storage.n{n}.faults.redirected"), c.redirected);
            registry.counter(&format!("storage.n{n}.faults.deferred"), c.deferred);
        }
        self.array.record_metrics(registry, n as u32);
    }

    /// This node's index in the array.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The storage cache (read-only).
    pub fn cache(&self) -> &StorageCache {
        &self.cache
    }

    /// The member disks (read-only).
    pub fn disks(&self) -> &[sdds_disk::Disk] {
        self.array.disks()
    }

    /// Merged fault counters: injections observed by the member disks
    /// plus this node's recovery-path actions. All-zero without a fault
    /// plan.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut c = self.array.fault_counters();
        c.merge(&self.fault_stats);
        c
    }

    /// Submits a node-local block read at `t`.
    pub fn submit_read(&mut self, block: BlockKey, t: SimTime) -> NodeOp {
        self.submit_read_for(block, t, None)
    }

    /// Submits a node-local block read at `t` on behalf of engine access
    /// `access`, so issue-anchored trace events carry the causal parent
    /// link. Prefetches triggered by the read stay unparented (they are
    /// cache-initiated, not part of the access's critical path).
    pub fn submit_read_for(&mut self, block: BlockKey, t: SimTime, access: Option<u64>) -> NodeOp {
        self.now = self.now.max(t);
        let outcome = self.cache.read(block);
        if let Some(sink) = self.trace.as_mut() {
            let kind = if outcome.prefetched_hit {
                "read-hit-prefetched"
            } else if outcome.hit {
                "read-hit"
            } else {
                "read-miss"
            };
            sink.record(TraceEvent::CacheAccess {
                at: t,
                node: self.id as u32,
                file: block.0 .0,
                block: block.1,
                kind,
            });
            for key in &outcome.prefetches {
                sink.record(TraceEvent::PrefetchIssue {
                    at: t,
                    node: self.id as u32,
                    file: key.0 .0,
                    block: key.1,
                });
            }
        }
        if outcome.hit {
            return NodeOp::Hit(t + self.hit_latency);
        }
        let op = self.new_op();
        let mut members = 0;
        for key in &outcome.demand_fetches {
            members += self.issue(
                self.raid.map_read(key.1),
                Purpose::Op {
                    op,
                    fill: Some(*key),
                },
                t,
                access,
            );
        }
        for key in &outcome.prefetches {
            self.issue(
                self.raid.map_read(key.1),
                Purpose::Prefetch { block: *key },
                t,
                None,
            );
        }
        debug_assert!(members > 0, "a read miss must touch at least one disk");
        self.remaining.insert(op, (members, t));
        NodeOp::Pending(op)
    }

    /// Submits a node-local block write at `t` (write-through).
    pub fn submit_write(&mut self, block: BlockKey, t: SimTime) -> NodeOp {
        self.submit_write_for(block, t, None)
    }

    /// Submits a node-local block write at `t` on behalf of engine access
    /// `access` (see [`IoNode::submit_read_for`]).
    pub fn submit_write_for(&mut self, block: BlockKey, t: SimTime, access: Option<u64>) -> NodeOp {
        self.now = self.now.max(t);
        let outcome = self.cache.write(block);
        if let Some(sink) = self.trace.as_mut() {
            sink.record(TraceEvent::CacheAccess {
                at: t,
                node: self.id as u32,
                file: block.0 .0,
                block: block.1,
                kind: "write",
            });
            if let Some((f, b)) = outcome.evicted {
                sink.record(TraceEvent::CacheEvict {
                    at: t,
                    node: self.id as u32,
                    file: f.0,
                    block: b,
                });
            }
        }
        let op = self.new_op();
        let mut members = 0;
        for key in &outcome.writebacks {
            members += self.issue(
                self.raid.map_write(key.1),
                Purpose::Op { op, fill: None },
                t,
                access,
            );
        }
        debug_assert!(members > 0, "a write must touch at least one disk");
        self.remaining.insert(op, (members, t));
        NodeOp::Pending(op)
    }

    /// The next instant at which any member disk — or a deferred
    /// recovery submission — needs attention.
    pub fn next_event_time(&self) -> Option<SimTime> {
        match (self.array.next_event_time(), self.deferred.peek_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advances all member disks to `t` and collects op completions,
    /// releasing any deferred recovery submissions that come due on the
    /// way.
    pub fn advance_to(&mut self, t: SimTime) {
        if self.faults.is_none() {
            self.array.advance_to(t);
            self.now = self.now.max(t);
            self.collect_completions();
            return;
        }
        // Step from event to event instead of jumping straight to `t`:
        // a failure must be observed at its completion time so retries,
        // reconstructions and deferred submissions happen *then*, not at
        // whatever horizon the caller advanced to. The calendar arbitrates
        // between the node's two event sources; both slots are retargeted
        // from their live sources each round because a fired event can
        // reschedule either one.
        loop {
            self.cal
                .retarget(self.array_slot, self.array.next_event_time());
            self.cal
                .retarget(self.deferred_slot, self.deferred.peek_time());
            let Some((next, slot)) = self.cal.pop_due(t) else {
                break;
            };
            let step = next.max(self.now);
            self.array.advance_to(step);
            self.now = self.now.max(step);
            self.collect_completions();
            if slot == self.deferred_slot {
                while self.deferred.peek_time().is_some_and(|d| d <= step) {
                    let Some((at, (disk, req))) = self.deferred.pop() else {
                        break;
                    };
                    self.fire_deferred(at, disk, req);
                }
            }
        }
        self.array.advance_to(t);
        self.now = self.now.max(t);
        self.collect_completions();
    }

    /// Ends the simulation at `t` for all member disks.
    pub fn finish(&mut self, t: SimTime) {
        if self.faults.is_some() {
            self.advance_to(t);
        }
        self.array.finish(t);
        self.now = self.now.max(t);
        self.collect_completions();
    }

    /// Removes and returns completed node operations as
    /// `(op_id, completion_time)` pairs.
    ///
    /// Collects any member-disk completions first, so operations finished
    /// during a `submit_*` call surface immediately — a later caller must
    /// never observe a completion older than the last interaction time.
    pub fn drain_completions(&mut self) -> Vec<(u64, SimTime)> {
        self.collect_completions();
        std::mem::take(&mut self.completions)
    }

    /// Feeds completed node operations to `sink` as
    /// `(op_id, completion_time)` and clears them, keeping this node's
    /// buffer capacity — the allocation-free variant of
    /// [`IoNode::drain_completions`].
    pub fn drain_completions_with(&mut self, mut sink: impl FnMut(u64, SimTime)) {
        self.collect_completions();
        for (op, at) in self.completions.drain(..) {
            sink(op, at);
        }
    }

    /// Total energy of all member disks, in joules.
    pub fn total_joules(&self) -> f64 {
        self.array.total_joules()
    }

    /// Merged per-state energy account of the member disks.
    pub fn energy(&self) -> EnergyAccount {
        let mut acct = EnergyAccount::new();
        for d in self.array.disks() {
            acct.merge(d.energy());
        }
        acct
    }

    /// Merged idle-period histogram of the member disks.
    pub fn idle_histogram(&self) -> BucketHistogram {
        let mut h = BucketHistogram::paper_idle_buckets();
        for d in self.array.disks() {
            h.merge(d.idle_tracker().histogram());
        }
        h
    }

    /// Merged time-weighted idle histogram of the member disks.
    pub fn idle_time_histogram(&self) -> DurationHistogram {
        let mut h = DurationHistogram::paper_idle_buckets();
        for d in self.array.disks() {
            h.merge(d.idle_tracker().time_histogram());
        }
        h
    }

    fn new_op(&mut self) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        op
    }

    /// Issues member requests tagged with `purpose`; returns how many
    /// member completions the caller should expect (submitted, redirected
    /// and deferred requests all complete eventually).
    fn issue(
        &mut self,
        members: Vec<crate::raid::MemberRequest>,
        purpose: Purpose,
        t: SimTime,
        access: Option<u64>,
    ) -> usize {
        let meta = IssuedMeta {
            purpose,
            attempt: 0,
            recovery: false,
            access,
        };
        if self.faults.is_none() {
            let n = members.len();
            for m in members {
                self.submit_member(m.disk, m.kind, m.lba, m.sectors, meta, t);
            }
            return n;
        }
        self.issue_with_faults(members, meta, t)
    }

    /// Fault-aware issue: members inside a crash window are redirected to
    /// a surviving mirror/parity member when the RAID level allows it, or
    /// parked until the disk recovers.
    fn issue_with_faults(
        &mut self,
        members: Vec<crate::raid::MemberRequest>,
        meta: IssuedMeta,
        t: SimTime,
    ) -> usize {
        let mut targeted: Vec<usize> = members.iter().map(|m| m.disk).collect();
        let count = members.len();
        for m in members {
            let Some(recovery_at) = self.crashed_at(m.disk, t) else {
                self.submit_member(m.disk, m.kind, m.lba, m.sectors, meta, t);
                continue;
            };
            // The target is mid-crash. A redundant read can be served by
            // a member not already part of this fan-out (RAID-5: the
            // parity chunk; RAID-10: the mirror side), as long as that
            // member is itself up.
            let replacement = if m.kind.is_read() && self.raid.has_redundancy() {
                let block = self.raid.block_of_lba(m.lba);
                self.raid
                    .map_degraded_read(block, m.disk)
                    .into_iter()
                    .find(|r| !targeted.contains(&r.disk) && self.crashed_at(r.disk, t).is_none())
            } else {
                None
            };
            match replacement {
                Some(r) => {
                    targeted.push(r.disk);
                    self.fault_stats.redirected += 1;
                    if let Some(sink) = self.trace.as_mut() {
                        sink.record(TraceEvent::FaultReconstruct {
                            at: t,
                            node: self.id as u32,
                            disk: m.disk as u32,
                            block: self.raid.block_of_lba(m.lba),
                            members: 1,
                            reason: "crash",
                        });
                    }
                    self.submit_member(
                        r.disk,
                        r.kind,
                        r.lba,
                        r.sectors,
                        IssuedMeta {
                            recovery: true,
                            ..meta
                        },
                        t,
                    );
                }
                None => {
                    // No survivor can stand in (no redundancy, a write,
                    // or the survivors are down too): wait out the crash.
                    self.fault_stats.deferred += 1;
                    self.schedule_resubmit(recovery_at, m.disk, m.kind, m.lba, m.sectors, meta);
                }
            }
        }
        count
    }

    /// Assigns a request id, records its routing and hands it to the
    /// array at `t`.
    fn submit_member(
        &mut self,
        disk: usize,
        kind: RequestKind,
        lba: u64,
        sectors: u32,
        meta: IssuedMeta,
        t: SimTime,
    ) {
        let id = self.next_request;
        self.next_request += 1;
        self.purposes.insert(id, meta);
        self.record_issue(t, disk, id, &meta);
        self.array
            .submit(disk, DiskRequest::new(id, kind, lba, sectors), t);
    }

    /// Records the issue-anchored span event for a member request, so the
    /// merged trace orders causes before effects (the completion-side
    /// [`TraceEvent::Request`] is end-timestamped).
    fn record_issue(&mut self, at: SimTime, disk: usize, id: u64, meta: &IssuedMeta) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(TraceEvent::RequestIssued {
                at,
                node: self.id as u32,
                disk: disk as u32,
                id,
                access: meta.access,
                attempt: meta.attempt as u32,
                recovery: meta.recovery,
            });
        }
    }

    /// Parks a request in the deferred queue to (re)enter the array at
    /// `at`; its routing record is registered immediately.
    fn schedule_resubmit(
        &mut self,
        at: SimTime,
        disk: usize,
        kind: RequestKind,
        lba: u64,
        sectors: u32,
        meta: IssuedMeta,
    ) {
        let id = self.next_request;
        self.next_request += 1;
        self.purposes.insert(id, meta);
        self.record_issue(at, disk, id, &meta);
        self.deferred
            .schedule(at, (disk, DiskRequest::new(id, kind, lba, sectors)));
    }

    /// Releases a deferred request. If its disk crashed again in the
    /// meantime it goes back to sleep until that window ends.
    fn fire_deferred(&mut self, at: SimTime, disk: usize, req: DiskRequest) {
        let at = at.max(self.now);
        if let Some(end) = self.crashed_at(disk, at) {
            self.deferred.schedule(end, (disk, req));
            return;
        }
        self.array.submit(disk, req, at);
        self.now = self.now.max(at);
    }

    /// Submits a recovery request at the current instant, or parks it if
    /// its disk is mid-crash.
    fn submit_or_defer(
        &mut self,
        disk: usize,
        kind: RequestKind,
        lba: u64,
        sectors: u32,
        meta: IssuedMeta,
    ) {
        match self.crashed_at(disk, self.now) {
            Some(end) => {
                self.fault_stats.deferred += 1;
                self.schedule_resubmit(end, disk, kind, lba, sectors, meta);
            }
            None => self.submit_member(disk, kind, lba, sectors, meta, self.now),
        }
    }

    /// When (if ever) member `disk` is inside a crash window at `t`;
    /// returns the window's end.
    fn crashed_at(&self, disk: usize, t: SimTime) -> Option<SimTime> {
        self.faults.as_ref()?.get(disk)?.crashed_at(t)
    }

    fn collect_completions(&mut self) {
        loop {
            // Destructure so the sink closure can borrow the routing
            // state while the array drains into it without any
            // intermediate Vec. Failed attempts are set aside (the
            // closure cannot re-enter the array) and handled below.
            let IoNode {
                array,
                cache,
                purposes,
                remaining,
                completions,
                trace,
                id,
                failed_scratch,
                ..
            } = self;
            let node_id = *id as u32;
            array.drain_completions_with(|disk_idx, done| {
                let Some(meta) = purposes.remove(&done.request.id.0) else {
                    debug_assert!(false, "completion for unknown request {}", done.request.id);
                    return;
                };
                if !done.outcome.is_ok() {
                    failed_scratch.push((disk_idx, done, meta));
                    return;
                }
                match meta.purpose {
                    Purpose::Prefetch { block } => {
                        let evicted = cache.fill(block, true);
                        if let (Some(sink), Some((f, b))) = (trace.as_mut(), evicted) {
                            sink.record(TraceEvent::CacheEvict {
                                at: done.completion,
                                node: node_id,
                                file: f.0,
                                block: b,
                            });
                        }
                    }
                    Purpose::Op { op, fill } => {
                        let Some(entry) = remaining.get_mut(&op) else {
                            debug_assert!(false, "op bookkeeping out of sync for op {op}");
                            return;
                        };
                        entry.0 -= 1;
                        entry.1 = entry.1.max(done.completion);
                        if entry.0 == 0 {
                            let Some((_, finished_at)) = remaining.remove(&op) else {
                                debug_assert!(false, "op {op} vanished mid-completion");
                                return;
                            };
                            if let Some(block) = fill {
                                let evicted = cache.fill(block, false);
                                if let (Some(sink), Some((f, b))) = (trace.as_mut(), evicted) {
                                    sink.record(TraceEvent::CacheEvict {
                                        at: finished_at,
                                        node: node_id,
                                        file: f.0,
                                        block: b,
                                    });
                                }
                            }
                            completions.push((op, finished_at));
                        }
                    }
                }
            });
            if self.failed_scratch.is_empty() {
                break;
            }
            // Recovery may submit follow-up work to the array, which can
            // surface further (already due) completions — loop until the
            // drain comes back clean.
            let mut failures = std::mem::take(&mut self.failed_scratch);
            for (disk_idx, done, meta) in failures.drain(..) {
                self.handle_failure(disk_idx, done, meta);
            }
            self.failed_scratch = failures;
        }
    }

    /// Reacts to a failed read attempt: bounded retry with backoff, then
    /// sector remap plus either RAID reconstruction from the survivors or
    /// an in-place reissue.
    fn handle_failure(&mut self, disk_idx: usize, done: CompletedRequest, meta: IssuedMeta) {
        let req = done.request;
        debug_assert!(req.kind.is_read(), "only reads can fail");
        if done.outcome == ServiceOutcome::TransientError && meta.attempt < RETRY_LIMIT {
            let attempt = meta.attempt + 1;
            let at = done.completion + retry_backoff(meta.attempt);
            self.fault_stats.retried += 1;
            if let Some(sink) = self.trace.as_mut() {
                sink.record(TraceEvent::FaultRetry {
                    at,
                    node: self.id as u32,
                    disk: disk_idx as u32,
                    id: req.id.0,
                    attempt: attempt as u32,
                });
            }
            self.schedule_resubmit(
                at,
                disk_idx,
                req.kind,
                req.lba,
                req.sectors,
                IssuedMeta { attempt, ..meta },
            );
            return;
        }
        // Out of retries or unreadable media: clear any bad sectors under
        // the range so follow-up requests can land.
        if self.array.remap_sectors(disk_idx, req.lba, req.sectors) > 0 {
            self.fault_stats.remapped += 1;
        }
        let demand_read = matches!(meta.purpose, Purpose::Op { fill: Some(_), .. });
        if demand_read && !meta.recovery && self.raid.has_redundancy() {
            // Rebuild the lost chunk from the surviving members; the
            // reconstruction reads join the same node op so its
            // completion waits for them.
            let Purpose::Op { op, .. } = meta.purpose else {
                return;
            };
            let block = self.raid.block_of_lba(req.lba);
            let survivors = self.raid.map_degraded_read(block, disk_idx);
            self.fault_stats.reconstructed += 1;
            if let Some(sink) = self.trace.as_mut() {
                sink.record(TraceEvent::FaultReconstruct {
                    at: self.now,
                    node: self.id as u32,
                    disk: disk_idx as u32,
                    block,
                    members: survivors.len() as u32,
                    reason: "bad-sector",
                });
            }
            if let Some(entry) = self.remaining.get_mut(&op) {
                // The failed request never decremented the op: swap its
                // one expected completion for the survivors'.
                entry.0 += survivors.len() - 1;
            } else {
                debug_assert!(false, "reconstruction for op {op} with no bookkeeping");
            }
            let recovery_meta = IssuedMeta {
                purpose: meta.purpose,
                attempt: 0,
                recovery: true,
                access: meta.access,
            };
            for m in survivors {
                self.submit_or_defer(m.disk, m.kind, m.lba, m.sectors, recovery_meta);
            }
        } else {
            // Prefetches, recovery reads and single-disk nodes reissue in
            // place: the remap above cleared any media error, and a fresh
            // attempt chain rides out transient errors.
            self.submit_or_defer(
                disk_idx,
                req.kind,
                req.lba,
                req.sectors,
                IssuedMeta {
                    attempt: 0,
                    recovery: true,
                    purpose: meta.purpose,
                    access: meta.access,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::striping::FileId;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn node() -> IoNode {
        IoNode::new(0, &NodeConfig::paper_defaults(PolicyKind::NoPm)).unwrap()
    }

    fn block(i: u64) -> BlockKey {
        (FileId(0), i)
    }

    #[test]
    fn read_miss_completes_via_disks() {
        let mut n = node();
        let op = match n.submit_read(block(0), t(0)) {
            NodeOp::Pending(op) => op,
            hit => panic!("expected a miss, got {hit:?}"),
        };
        n.advance_to(t(5_000_000));
        let done = n.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, op);
        assert!(done[0].1 > t(0));
    }

    #[test]
    fn read_hit_after_fill() {
        let mut n = node();
        n.submit_read(block(0), t(0));
        n.advance_to(t(5_000_000));
        n.drain_completions();
        match n.submit_read(block(0), t(5_000_000)) {
            NodeOp::Hit(done) => assert_eq!(done, t(5_000_000) + n.hit_latency),
            other => panic!("expected a hit, got {other:?}"),
        }
    }

    #[test]
    fn prefetch_makes_next_block_a_hit() {
        let mut n = node();
        n.submit_read(block(0), t(0)); // prefetches blocks 1, 2
        n.advance_to(t(5_000_000));
        n.drain_completions();
        assert!(matches!(
            n.submit_read(block(1), t(5_000_000)),
            NodeOp::Hit(_)
        ));
        assert!(n.cache().stats().useful_prefetches >= 1);
    }

    #[test]
    fn write_fans_out_to_all_members() {
        let mut n = node();
        let op = match n.submit_write(block(3), t(0)) {
            NodeOp::Pending(op) => op,
            hit => panic!("unexpected {hit:?}"),
        };
        n.advance_to(t(5_000_000));
        let done = n.drain_completions();
        assert_eq!(done, vec![(op, done[0].1)]);
        // RAID-5 full-stripe write: every member disk served one request.
        for d in n.disks() {
            assert!(d.counters().requests_served >= 1);
        }
    }

    #[test]
    fn completion_time_is_slowest_member() {
        let mut n = node();
        n.submit_read(block(0), t(0));
        n.advance_to(t(5_000_000));
        let done = n.drain_completions();
        assert!(done[0].1 >= t(0));
    }

    #[test]
    fn energy_accrues_across_members() {
        let mut n = node();
        n.finish(t(1_000_000));
        // 4 idle disks for 1 s at 17.1 W.
        assert!((n.total_joules() - 4.0 * 17.1).abs() < 1e-6);
        assert_eq!(n.energy().total_time(), SimDuration::from_secs(4));
    }

    #[test]
    fn idle_histogram_merges_members() {
        let mut n = node();
        n.submit_read(block(0), t(1_000_000));
        n.finish(t(2_000_000));
        let h = n.idle_histogram();
        // Each of the 3 data disks (RAID-5 read) has idle periods before
        // and after its request; the parity disk idles throughout.
        assert!(h.total() >= 4);
    }

    fn faulty_node(profiles: Vec<DiskFaultProfile>) -> IoNode {
        let mut config = NodeConfig::paper_defaults(PolicyKind::NoPm);
        config.faults = Some(FaultPlan::from_profiles(vec![profiles]));
        IoNode::new(0, &config).unwrap()
    }

    /// Four clean member profiles with `profile` installed at `disk`.
    fn one_bad_member(disk: usize, profile: DiskFaultProfile) -> Vec<DiskFaultProfile> {
        let mut v = vec![DiskFaultProfile::none(); 4];
        v[disk] = profile;
        v
    }

    #[test]
    fn bad_sector_read_reconstructs_from_survivors() {
        // Block 0 (parity on member 0) stores data on members 1..3 at
        // LBA 0; a bad sector there makes member 1's chunk unreadable.
        let mut n = faulty_node(one_bad_member(
            1,
            DiskFaultProfile {
                bad_sectors: vec![0],
                ..DiskFaultProfile::none()
            },
        ));
        let NodeOp::Pending(op) = n.submit_read(block(0), t(0)) else {
            panic!("expected a miss");
        };
        n.advance_to(t(30_000_000));
        let done = n.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, op);
        let c = n.fault_counters();
        assert!(c.injected_bad_sector >= 1, "the bad sector fired: {c:?}");
        assert!(c.remapped >= 1, "the range was remapped: {c:?}");
        assert!(c.reconstructed >= 1, "survivors rebuilt the chunk: {c:?}");
        // The parity member (disk 0) served reconstruction reads.
        assert!(n.disks()[0].counters().requests_served >= 1);
        // After the remap the block rereads cleanly from its home disk.
        assert!(n.disks()[1].fault_counters().injected_bad_sector >= 1);
    }

    #[test]
    fn prefetch_bad_sector_reissues_in_place_after_remap() {
        // Block 1 (parity on member 1) stores data on members 0, 2, 3 at
        // LBA 43; fail member 0's chunk. Reading block 0 prefetches
        // block 1, whose failed member read must remap + reissue rather
        // than fan out.
        let mut n = faulty_node(one_bad_member(
            0,
            DiskFaultProfile {
                bad_sectors: vec![43],
                ..DiskFaultProfile::none()
            },
        ));
        n.submit_read(block(0), t(0));
        n.advance_to(t(30_000_000));
        n.drain_completions();
        let c = n.fault_counters();
        assert!(c.injected_bad_sector >= 1);
        assert!(c.remapped >= 1);
        // The prefetched block still landed in the cache.
        assert!(matches!(
            n.submit_read(block(1), t(30_000_000)),
            NodeOp::Hit(_)
        ));
    }

    #[test]
    fn crashed_member_read_redirects_to_survivor() {
        let mut n = faulty_node(one_bad_member(
            3,
            DiskFaultProfile {
                crash_windows: vec![(t(0), t(2_000_000))],
                ..DiskFaultProfile::none()
            },
        ));
        let NodeOp::Pending(op) = n.submit_read(block(0), t(0)) else {
            panic!("expected a miss");
        };
        // Completes well inside the crash window: member 3's chunk was
        // served by the parity member instead.
        n.advance_to(t(1_000_000));
        let done = n.drain_completions();
        assert_eq!(done, vec![(op, done[0].1)]);
        assert!(done[0].1 < t(2_000_000));
        assert_eq!(n.disks()[3].counters().requests_served, 0);
        assert!(n.fault_counters().redirected >= 1);
    }

    #[test]
    fn write_to_crashed_member_defers_until_recovery() {
        let mut n = faulty_node(one_bad_member(
            2,
            DiskFaultProfile {
                crash_windows: vec![(t(0), t(2_000_000))],
                ..DiskFaultProfile::none()
            },
        ));
        let NodeOp::Pending(op) = n.submit_write(block(0), t(0)) else {
            panic!("expected disk work");
        };
        // A full-stripe write cannot skip the crashed member, so the op
        // waits for the crash window to end.
        n.advance_to(t(1_900_000));
        assert!(n.drain_completions().is_empty());
        n.advance_to(t(30_000_000));
        let done = n.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, op);
        assert!(done[0].1 >= t(2_000_000));
        assert!(n.fault_counters().deferred >= 1);
        assert!(n.disks()[2].counters().requests_served >= 1);
    }

    #[test]
    fn transient_recovery_is_deterministic() {
        let run = || {
            let mut n = faulty_node(one_bad_member(
                1,
                DiskFaultProfile {
                    transient_rate: 0.7,
                    rng_seed: 0xfeed_beef,
                    ..DiskFaultProfile::none()
                },
            ));
            let mut ops = Vec::new();
            for (i, at) in [(0u64, 0u64), (4, 1_000_000), (8, 2_000_000)] {
                if let NodeOp::Pending(op) = n.submit_read(block(i), t(at)) {
                    ops.push(op);
                }
            }
            n.advance_to(t(120_000_000));
            let done = n.drain_completions();
            (done, n.fault_counters(), n.total_joules().to_bits())
        };
        let (done_a, counters_a, joules_a) = run();
        let (done_b, counters_b, joules_b) = run();
        assert_eq!(done_a, done_b);
        assert_eq!(counters_a, counters_b);
        assert_eq!(joules_a, joules_b);
        assert_eq!(done_a.len(), 3, "every op eventually completed");
        assert!(counters_a.injected_transient >= 1);
        assert!(counters_a.retried >= 1);
    }

    #[test]
    fn no_plan_keeps_counters_zero() {
        let mut n = node();
        n.submit_read(block(0), t(0));
        n.advance_to(t(10_000_000));
        n.drain_completions();
        assert!(n.fault_counters().is_zero());
    }

    #[test]
    fn distinct_ops_complete_independently() {
        let mut n = node();
        let op0 = n.submit_read(block(0), t(0));
        let op1 = n.submit_read(block(10), t(0));
        n.advance_to(t(10_000_000));
        let done = n.drain_completions();
        assert_eq!(done.len(), 2);
        let (NodeOp::Pending(a), NodeOp::Pending(b)) = (op0, op1) else {
            panic!("both should miss");
        };
        let ids: Vec<u64> = done.iter().map(|c| c.0).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
    }
}
