//! The full storage system: striped I/O nodes with access tracking.

use sdds_disk::EnergyAccount;
use sdds_power::PolicyKind;
use simkit::hash::{FxHashMap, FxHashSet};
use simkit::kernel::{Calendar, SlotId};
use simkit::stats::{BucketHistogram, DurationHistogram};
use simkit::SimTime;

use crate::error::StorageError;
use crate::node::{IoNode, NodeConfig, NodeOp};
use crate::node_set::NodeSet;
use crate::striping::{FileId, StripingLayout};

/// Whether a file access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read disk-resident data.
    Read,
    /// Write data to disk.
    Write,
}

/// A byte-range access to a striped file (an MPI-IO call after collective
/// aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileAccess {
    /// Target file.
    pub file: FileId,
    /// Starting byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Read or write.
    pub kind: AccessKind,
}

impl FileAccess {
    /// Creates a read access.
    pub fn read(file: FileId, offset: u64, len: u64) -> Self {
        FileAccess {
            file,
            offset,
            len,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access.
    pub fn write(file: FileId, offset: u64, len: u64) -> Self {
        FileAccess {
            file,
            offset,
            len,
            kind: AccessKind::Write,
        }
    }
}

/// Identifier of a submitted access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccessId(pub u64);

/// A finished access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCompletion {
    /// Which access completed.
    pub access: AccessId,
    /// When its last byte moved (slowest node operation).
    pub time: SimTime,
}

/// Configuration of the whole storage array.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageConfig {
    /// File-to-node striping map.
    pub layout: StripingLayout,
    /// Per-node configuration (cache, RAID, disk, power policy).
    pub node: NodeConfig,
}

impl StorageConfig {
    /// Table II defaults under the given power policy.
    pub fn paper_defaults(policy: PolicyKind) -> Self {
        StorageConfig {
            layout: StripingLayout::paper_defaults(),
            node: NodeConfig::paper_defaults(policy),
        }
    }

    /// Checks the whole array configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`StorageError`] found in the per-node
    /// configuration (the layout is validated at construction and is
    /// always consistent).
    pub fn validate(&self) -> Result<(), StorageError> {
        self.node.validate()
    }
}

/// The array of I/O nodes behind the parallel file system.
///
/// `StorageSystem` is event-driven: [`StorageSystem::submit`] registers an
/// access at a point in simulated time, [`StorageSystem::advance_to`] lets
/// the disks progress, and [`StorageSystem::drain_completions`] yields
/// finished accesses. An access completes when its slowest node operation
/// completes.
///
/// # Example
///
/// ```
/// use sdds_power::PolicyKind;
/// use sdds_storage::{FileAccess, FileId, StorageConfig, StorageSystem};
/// use simkit::SimTime;
///
/// let mut sys = StorageSystem::new(StorageConfig::paper_defaults(PolicyKind::NoPm))
///     .expect("paper defaults are valid");
/// let id = sys.submit(FileAccess::read(FileId(0), 0, 128 * 1024), SimTime::ZERO);
/// sys.advance_to(SimTime::from_micros(5_000_000));
/// let done = sys.drain_completions();
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].access, id);
/// ```
#[derive(Debug)]
pub struct StorageSystem {
    layout: StripingLayout,
    nodes: Vec<IoNode>,
    next_access: u64,
    /// access -> (outstanding node ops, latest completion seen so far).
    pending: FxHashMap<AccessId, (usize, SimTime)>,
    /// (node index, node op id) -> access.
    op_owner: FxHashMap<(usize, u64), AccessId>,
    completions: Vec<AccessCompletion>,
    /// Unified calendar with one slot per node, retargeted whenever a
    /// node's schedule can change (submit / advance / finish). Its head
    /// is the array's next event time; arbitration order is irrelevant
    /// here because [`StorageSystem::advance_to`] advances every node.
    cal: Calendar,
    node_slots: Vec<SlotId>,
    /// Mirror of the calendar head, so [`StorageSystem::next_event_time`]
    /// stays a plain `&self` read.
    cached_next: Option<SimTime>,
    bytes_read: u64,
    bytes_written: u64,
}

impl StorageSystem {
    /// Builds the array.
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] when the per-node configuration (cache,
    /// power policy, disk parameters) is invalid.
    pub fn new(config: StorageConfig) -> Result<Self, StorageError> {
        let nodes = (0..config.layout.io_nodes())
            .map(|i| IoNode::new(i, &config.node))
            .collect::<Result<Vec<_>, _>>()?;
        let mut cal = Calendar::new(config.node.arbitration);
        let node_slots = nodes.iter().map(|_| cal.register()).collect();
        Ok(StorageSystem {
            layout: config.layout,
            nodes,
            next_access: 0,
            pending: FxHashMap::default(),
            op_owner: FxHashMap::default(),
            completions: Vec::new(),
            cal,
            node_slots,
            cached_next: None,
            bytes_read: 0,
            bytes_written: 0,
        })
    }

    /// The striping layout (exposed to the compiler, as the paper's I/O
    /// middleware APIs expose it).
    pub fn layout(&self) -> &StripingLayout {
        &self.layout
    }

    /// Enables structured tracing on every I/O node (and, transitively,
    /// every power driver and disk). Tracing only buffers events and
    /// never alters the simulation.
    pub fn enable_trace(&mut self) {
        for node in &mut self.nodes {
            node.enable_trace();
        }
    }

    /// Removes and returns all trace events recorded so far across the
    /// whole storage system, in node order (empty when tracing was never
    /// enabled). The caller merges them into time order.
    pub fn take_trace_events(&mut self) -> Vec<simkit::telemetry::TraceEvent> {
        let mut out = Vec::new();
        for node in &mut self.nodes {
            out.extend(node.take_trace_events());
        }
        out
    }

    /// Publishes every node's metrics into `registry` (see
    /// [`IoNode::record_metrics`]).
    pub fn record_metrics(&self, registry: &mut simkit::telemetry::MetricsRegistry) {
        for node in &self.nodes {
            node.record_metrics(registry);
        }
    }

    /// The I/O nodes (read-only).
    pub fn nodes(&self) -> &[IoNode] {
        &self.nodes
    }

    /// The set of I/O nodes an access would touch (its signature).
    pub fn signature_of(&self, access: &FileAccess) -> NodeSet {
        self.layout
            .nodes_for_range(access.file, access.offset, access.len)
    }

    /// Submits an access at `t`; the returned id will appear in a
    /// completion once all touched nodes finish.
    ///
    /// # Panics
    ///
    /// Panics if the access is empty (`len == 0`).
    pub fn submit(&mut self, access: FileAccess, t: SimTime) -> AccessId {
        assert!(access.len > 0, "cannot submit an empty access");
        let id = AccessId(self.next_access);
        self.next_access += 1;
        match access.kind {
            AccessKind::Read => self.bytes_read += access.len,
            AccessKind::Write => self.bytes_written += access.len,
        }

        let pieces = self
            .layout
            .split_range(access.file, access.offset, access.len);
        let mut outstanding = 0usize;
        let mut hit_latest = t;
        // Deduplicate per (node, block): one node-level block op per block.
        let mut seen: FxHashSet<(usize, u64)> = FxHashSet::default();
        for (node_idx, local_block, _off, _len) in pieces {
            if !seen.insert((node_idx, local_block)) {
                continue;
            }
            let key = (access.file, local_block);
            // The access id rides along so issue-anchored trace events can
            // parent-link member requests to this access's span.
            let op = match access.kind {
                AccessKind::Read => self.nodes[node_idx].submit_read_for(key, t, Some(id.0)),
                AccessKind::Write => self.nodes[node_idx].submit_write_for(key, t, Some(id.0)),
            };
            match op {
                NodeOp::Hit(done) => hit_latest = hit_latest.max(done),
                NodeOp::Pending(op_id) => {
                    outstanding += 1;
                    self.op_owner.insert((node_idx, op_id), id);
                }
            }
        }
        if outstanding == 0 {
            self.completions.push(AccessCompletion {
                access: id,
                time: hit_latest,
            });
        } else {
            self.pending.insert(id, (outstanding, hit_latest));
        }
        // Surface anything the member disks completed while advancing to
        // the submission time, so no completion lingers into the past.
        self.collect();
        // Only the touched nodes advanced, so only their schedules can
        // have changed; retargeting is a no-op for the rest.
        let mut touched: Vec<usize> = seen.iter().map(|&(node_idx, _)| node_idx).collect();
        touched.sort_unstable();
        touched.dedup();
        for node_idx in touched {
            self.cal.retarget(
                self.node_slots[node_idx],
                self.nodes[node_idx].next_event_time(),
            );
        }
        self.cached_next = self.cal.peek_time();
        id
    }

    /// The next instant at which any disk needs attention.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.cached_next
    }

    /// Advances every node to `t`, resolving access completions.
    ///
    /// All nodes advance together (energy accrual is a float sum, so the
    /// slicing of advances must not depend on which node fires first);
    /// the calendar only supplies the next instant to advance to.
    pub fn advance_to(&mut self, t: SimTime) {
        for node in &mut self.nodes {
            node.advance_to(t);
        }
        self.collect();
        self.retarget_all();
    }

    /// Ends the simulation at `t`.
    pub fn finish(&mut self, t: SimTime) {
        for node in &mut self.nodes {
            node.finish(t);
        }
        self.collect();
        self.retarget_all();
    }

    /// Removes and returns completed accesses.
    pub fn drain_completions(&mut self) -> Vec<AccessCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Appends completed accesses to `out` and clears them, retaining both
    /// buffers' capacity — the allocation-free variant of
    /// [`StorageSystem::drain_completions`].
    pub fn drain_completions_into(&mut self, out: &mut Vec<AccessCompletion>) {
        out.append(&mut self.completions);
    }

    /// Total energy over all nodes and disks, in joules.
    pub fn total_joules(&self) -> f64 {
        self.nodes.iter().map(|n| n.total_joules()).sum()
    }

    /// Merged per-state energy account.
    pub fn energy(&self) -> EnergyAccount {
        let mut acct = EnergyAccount::new();
        for n in &self.nodes {
            acct.merge(&n.energy());
        }
        acct
    }

    /// Merged idle-period histogram over every disk in the array (the
    /// population Fig. 12 plots).
    pub fn idle_histogram(&self) -> BucketHistogram {
        let mut h = BucketHistogram::paper_idle_buckets();
        for n in &self.nodes {
            h.merge(&n.idle_histogram());
        }
        h
    }

    /// Merged time-weighted idle histogram: where the array's idle time
    /// (the energy opportunity) lives.
    pub fn idle_time_histogram(&self) -> DurationHistogram {
        let mut h = DurationHistogram::paper_idle_buckets();
        for n in &self.nodes {
            h.merge(&n.idle_time_histogram());
        }
        h
    }

    /// Bytes read and written so far.
    pub fn bytes_moved(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    /// Merged fault counters over every node (injections, retries,
    /// remaps, reconstructions, redirects, deferrals). All-zero without a
    /// fault plan.
    pub fn fault_counters(&self) -> simkit::fault::FaultCounters {
        let mut c = simkit::fault::FaultCounters::default();
        for n in &self.nodes {
            c.merge(&n.fault_counters());
        }
        c
    }

    fn collect(&mut self) {
        // Destructure so the sink closure can borrow the access-tracking
        // state while each node drains into it without any intermediate
        // Vec.
        let StorageSystem {
            nodes,
            pending,
            op_owner,
            completions,
            ..
        } = self;
        for (idx, node) in nodes.iter_mut().enumerate() {
            node.drain_completions_with(|op, time| {
                let Some(access) = op_owner.remove(&(idx, op)) else {
                    debug_assert!(false, "unknown node op {op} on node {idx}");
                    return;
                };
                let Some(entry) = pending.get_mut(&access) else {
                    debug_assert!(false, "access bookkeeping out of sync for {access:?}");
                    return;
                };
                entry.0 -= 1;
                entry.1 = entry.1.max(time);
                if entry.0 == 0 {
                    let Some((_, done)) = pending.remove(&access) else {
                        debug_assert!(false, "access {access:?} vanished mid-completion");
                        return;
                    };
                    completions.push(AccessCompletion { access, time: done });
                }
            });
        }
    }

    fn retarget_all(&mut self) {
        // Each node's next_event_time is a cached field, and retargeting
        // an unchanged due time is a no-op, so this is one cheap
        // O(nodes) pass.
        for (node, slot) in self.nodes.iter().zip(&self.node_slots) {
            self.cal.retarget(*slot, node.next_event_time());
        }
        self.cached_next = self.cal.peek_time();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn system() -> StorageSystem {
        StorageSystem::new(StorageConfig::paper_defaults(PolicyKind::NoPm)).unwrap()
    }

    const KB: u64 = 1024;

    #[test]
    fn single_stripe_read_completes() {
        let mut sys = system();
        let id = sys.submit(FileAccess::read(FileId(0), 0, 64 * KB), t(0));
        sys.advance_to(t(10_000_000));
        let done = sys.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].access, id);
    }

    #[test]
    fn multi_stripe_access_waits_for_slowest_node() {
        let mut sys = system();
        // 4 stripes on 4 different nodes.
        let id = sys.submit(FileAccess::read(FileId(0), 0, 256 * KB), t(0));
        sys.advance_to(t(10_000_000));
        let done = sys.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].access, id);
        // All four touched nodes served disk work.
        let active_nodes = sys
            .nodes()
            .iter()
            .filter(|n| n.disks().iter().any(|d| d.counters().requests_served > 0))
            .count();
        assert_eq!(active_nodes, 4);
    }

    #[test]
    fn signature_matches_layout() {
        let sys = system();
        let acc = FileAccess::read(FileId(0), 0, 256 * KB);
        assert_eq!(sys.signature_of(&acc), NodeSet::from_nodes([0, 1, 2, 3]));
    }

    #[test]
    fn cached_repeat_read_is_a_pure_hit() {
        let mut sys = system();
        sys.submit(FileAccess::read(FileId(0), 0, 64 * KB), t(0));
        sys.advance_to(t(10_000_000));
        sys.drain_completions();
        let before = sys.nodes()[0].disks()[1].counters().requests_served;
        let id = sys.submit(FileAccess::read(FileId(0), 0, 64 * KB), t(10_000_000));
        // Completion is immediate (hit), no new disk requests on node 0.
        let done = sys.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].access, id);
        sys.advance_to(t(11_000_000));
        let after = sys.nodes()[0].disks()[1].counters().requests_served;
        assert_eq!(before, after);
    }

    #[test]
    fn write_then_read_hits_cache() {
        let mut sys = system();
        sys.submit(FileAccess::write(FileId(1), 0, 64 * KB), t(0));
        sys.advance_to(t(10_000_000));
        assert_eq!(sys.drain_completions().len(), 1);
        let id = sys.submit(FileAccess::read(FileId(1), 0, 64 * KB), t(10_000_000));
        let done = sys.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].access, id);
    }

    #[test]
    fn energy_totals_match_node_sum() {
        let mut sys = system();
        sys.submit(FileAccess::read(FileId(0), 0, 512 * KB), t(0));
        sys.finish(t(5_000_000));
        let total = sys.total_joules();
        let by_node: f64 = sys.nodes().iter().map(|n| n.total_joules()).sum();
        assert!((total - by_node).abs() < 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn bytes_accounting() {
        let mut sys = system();
        sys.submit(FileAccess::read(FileId(0), 0, 100), t(0));
        sys.submit(FileAccess::write(FileId(0), 0, 200), t(0));
        assert_eq!(sys.bytes_moved(), (100, 200));
    }

    #[test]
    fn wide_access_touches_all_nodes() {
        let mut sys = system();
        let id = sys.submit(FileAccess::read(FileId(0), 0, 8 * 64 * KB), t(0));
        sys.advance_to(t(20_000_000));
        let done = sys.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].access, id);
        for n in sys.nodes() {
            let served: u64 = n.disks().iter().map(|d| d.counters().requests_served).sum();
            assert!(served > 0, "node {} saw no traffic", n.id());
        }
    }

    #[test]
    #[should_panic(expected = "empty access")]
    fn empty_access_panics() {
        let mut sys = system();
        sys.submit(FileAccess::read(FileId(0), 0, 0), t(0));
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sys = system();
            for i in 0..40u64 {
                let kind_read = i % 3 != 0;
                let acc = if kind_read {
                    FileAccess::read(FileId((i % 3) as u32), i * 37 * KB, 96 * KB)
                } else {
                    FileAccess::write(FileId((i % 3) as u32), i * 53 * KB, 64 * KB)
                };
                sys.submit(acc, t(i * 700_000));
            }
            sys.finish(t(60_000_000));
            (sys.total_joules(), sys.drain_completions().len())
        };
        assert_eq!(run(), run());
    }
}
