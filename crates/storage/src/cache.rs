//! The server-side storage cache.
//!
//! Each I/O node maintains a storage cache with I/O prefetching (the paper
//! models this with AccuSim's two-tier cache hierarchy; Table II gives
//! 64 MB per node). The cache operates on node-local blocks — one block per
//! stripe stored on the node — with LRU replacement, write-through writes
//! and sequential read-ahead.

use crate::error::StorageError;
use crate::lru::LruCache;
use crate::striping::FileId;

/// A node-local block address: the `index`-th stripe of `file` stored on
/// this node.
pub type BlockKey = (FileId, u64);

/// Storage-cache configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache capacity in bytes (Table II: 64 MB per I/O node).
    pub capacity_bytes: u64,
    /// Block (stripe) size in bytes.
    pub block_bytes: u64,
    /// How many subsequent blocks to read ahead on a read miss.
    pub prefetch_depth: u64,
}

impl CacheConfig {
    /// Table II defaults: 64 MB capacity, 64 KB blocks, with a modest
    /// sequential read-ahead.
    pub fn paper_defaults() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024 * 1024,
            block_bytes: 64 * 1024,
            prefetch_depth: 2,
        }
    }

    /// Checks that the cache can hold at least one whole block.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::CacheCapacity`] if `block_bytes` is zero or
    /// the capacity is smaller than one block.
    pub fn validate(&self) -> Result<(), StorageError> {
        if self.block_bytes == 0 || self.capacity_bytes / self.block_bytes == 0 {
            return Err(StorageError::CacheCapacity {
                capacity_bytes: self.capacity_bytes,
                block_bytes: self.block_bytes,
            });
        }
        Ok(())
    }

    /// Capacity in whole blocks.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one block; call
    /// [`CacheConfig::validate`] first to get a typed error instead.
    pub fn capacity_blocks(&self) -> usize {
        assert!(self.block_bytes > 0, "block size must be positive");
        let blocks = self.capacity_bytes / self.block_bytes;
        assert!(blocks > 0, "cache must hold at least one block");
        blocks as usize
    }
}

/// The outcome of offering an access to the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheOutcome {
    /// The access was served from the cache with no disk involvement.
    pub hit: bool,
    /// The hit consumed a block that was brought in by read-ahead (set
    /// only together with `hit`; used for telemetry).
    pub prefetched_hit: bool,
    /// Blocks that must be read from the disks (the missed block itself,
    /// for read misses).
    pub demand_fetches: Vec<BlockKey>,
    /// Blocks to read ahead opportunistically (not on the access's critical
    /// path).
    pub prefetches: Vec<BlockKey>,
    /// Blocks to write to the disks (write-through).
    pub writebacks: Vec<BlockKey>,
    /// The block this access displaced from the cache, if the insert
    /// evicted one (used for telemetry).
    pub evicted: Option<BlockKey>,
}

impl CacheOutcome {
    fn hit(prefetched_hit: bool) -> Self {
        CacheOutcome {
            hit: true,
            prefetched_hit,
            demand_fetches: Vec::new(),
            prefetches: Vec::new(),
            writebacks: Vec::new(),
            evicted: None,
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses served from the cache.
    pub read_hits: u64,
    /// Read accesses requiring a disk fetch.
    pub read_misses: u64,
    /// Write accesses (always written through).
    pub writes: u64,
    /// Prefetched blocks that were later hit.
    pub useful_prefetches: u64,
    /// Blocks fetched ahead of demand.
    pub issued_prefetches: u64,
}

impl CacheStats {
    /// Read hit ratio in `[0, 1]`, or 0 with no reads.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }
}

/// Per-block cache metadata.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    prefetched: bool,
}

/// A per-I/O-node storage cache with LRU replacement and sequential
/// prefetch.
///
/// The cache is a *decision* structure: it tells the I/O node which disk
/// operations an access requires, and the node performs them and calls
/// [`StorageCache::fill`] when fetched blocks arrive.
///
/// # Example
///
/// ```
/// use sdds_storage::{CacheConfig, FileId, StorageCache};
///
/// let mut cache = StorageCache::new(CacheConfig::paper_defaults()).expect("paper defaults are valid");
/// let key = (FileId(0), 7);
/// let miss = cache.read(key);
/// assert!(!miss.hit);
/// assert_eq!(miss.demand_fetches, vec![key]);
/// cache.fill(key, false);
/// assert!(cache.read(key).hit);
/// ```
#[derive(Debug)]
pub struct StorageCache {
    config: CacheConfig,
    blocks: LruCache<BlockKey, BlockMeta>,
    stats: CacheStats,
}

impl StorageCache {
    /// Creates an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::CacheCapacity`] if the configuration yields
    /// zero blocks of capacity.
    pub fn new(config: CacheConfig) -> Result<Self, StorageError> {
        config.validate()?;
        let capacity = (config.capacity_bytes / config.block_bytes) as usize;
        Ok(StorageCache {
            config,
            blocks: LruCache::new(capacity),
            stats: CacheStats::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Offers a read of `key` to the cache.
    pub fn read(&mut self, key: BlockKey) -> CacheOutcome {
        if let Some(meta) = self.blocks.get(&key) {
            let prefetched_hit = meta.prefetched;
            if prefetched_hit {
                self.stats.useful_prefetches += 1;
                // Count the prefetch benefit only once.
                if let Some(m) = self.blocks.get(&key) {
                    let mut m = *m;
                    m.prefetched = false;
                    self.blocks.insert(key, m);
                }
            }
            self.stats.read_hits += 1;
            return CacheOutcome::hit(prefetched_hit);
        }
        self.stats.read_misses += 1;
        let mut prefetches = Vec::new();
        for ahead in 1..=self.config.prefetch_depth {
            let next = (key.0, key.1 + ahead);
            if !self.blocks.contains(&next) {
                prefetches.push(next);
            }
        }
        self.stats.issued_prefetches += prefetches.len() as u64;
        CacheOutcome {
            hit: false,
            prefetched_hit: false,
            demand_fetches: vec![key],
            prefetches,
            writebacks: Vec::new(),
            evicted: None,
        }
    }

    /// Offers a write of `key` to the cache (write-through: the block is
    /// cached for subsequent readers and also written to disk).
    pub fn write(&mut self, key: BlockKey) -> CacheOutcome {
        self.stats.writes += 1;
        let evicted = self
            .blocks
            .insert(key, BlockMeta { prefetched: false })
            .map(|(k, _)| k);
        CacheOutcome {
            hit: false,
            prefetched_hit: false,
            demand_fetches: Vec::new(),
            prefetches: Vec::new(),
            writebacks: vec![key],
            evicted,
        }
    }

    /// Installs a block fetched from disk (`prefetched` marks read-ahead
    /// fills, used only for statistics). Returns the block the fill
    /// evicted, if any (used for telemetry).
    pub fn fill(&mut self, key: BlockKey, prefetched: bool) -> Option<BlockKey> {
        self.blocks
            .insert(key, BlockMeta { prefetched })
            .map(|(k, _)| k)
    }

    /// Returns `true` if `key` is cached (no recency update).
    pub fn contains(&self, key: &BlockKey) -> bool {
        self.blocks.contains(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> BlockKey {
        (FileId(0), i)
    }

    fn small_cache(blocks: u64, depth: u64) -> StorageCache {
        StorageCache::new(CacheConfig {
            capacity_bytes: blocks * 64 * 1024,
            block_bytes: 64 * 1024,
            prefetch_depth: depth,
        })
        .unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(16, 0);
        let out = c.read(key(1));
        assert!(!out.hit);
        assert_eq!(out.demand_fetches, vec![key(1)]);
        c.fill(key(1), false);
        assert!(c.read(key(1)).hit);
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn prefetch_requests_sequential_blocks() {
        let mut c = small_cache(16, 2);
        let out = c.read(key(5));
        assert_eq!(out.prefetches, vec![key(6), key(7)]);
        // Already-cached successors are not re-requested.
        c.fill(key(6), true);
        let out2 = c.read(key(9));
        assert_eq!(out2.prefetches, vec![key(10), key(11)]);
        let out3 = c.read(key(5)); // now a miss? no: 5 was never filled
        assert!(!out3.hit);
    }

    #[test]
    fn useful_prefetch_counted_once() {
        let mut c = small_cache(16, 1);
        c.read(key(0)); // miss; prefetch 1
        c.fill(key(0), false);
        c.fill(key(1), true);
        assert!(c.read(key(1)).hit);
        assert!(c.read(key(1)).hit);
        assert_eq!(c.stats().useful_prefetches, 1);
    }

    #[test]
    fn outcome_reports_eviction_and_prefetched_hit() {
        let mut c = small_cache(2, 1);
        c.fill(key(0), false);
        assert_eq!(c.fill(key(1), true), None);
        // First hit on a read-ahead block is flagged, later hits are not.
        let out = c.read(key(1));
        assert!(out.hit && out.prefetched_hit);
        let out2 = c.read(key(1));
        assert!(out2.hit && !out2.prefetched_hit);
        // At capacity, a fill reports the LRU block it displaced.
        assert_eq!(c.fill(key(2), false), Some(key(0)));
        // A write-through insert reports its eviction too.
        let w = c.write(key(3));
        assert_eq!(w.evicted, Some(key(1)));
    }

    #[test]
    fn write_through() {
        let mut c = small_cache(16, 0);
        let out = c.write(key(3));
        assert_eq!(out.writebacks, vec![key(3)]);
        // The written block now serves reads.
        assert!(c.read(key(3)).hit);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut c = small_cache(2, 0);
        c.fill(key(1), false);
        c.fill(key(2), false);
        c.fill(key(3), false); // evicts 1
        assert!(!c.contains(&key(1)));
        assert!(c.contains(&key(2)));
        assert!(c.contains(&key(3)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn distinct_files_do_not_collide() {
        let mut c = small_cache(8, 0);
        c.fill((FileId(1), 0), false);
        assert!(!c.read((FileId(2), 0)).hit);
        assert!(c.read((FileId(1), 0)).hit);
    }

    #[test]
    fn hit_ratio() {
        let mut c = small_cache(8, 0);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.read(key(0));
        c.fill(key(0), false);
        c.read(key(0));
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_defaults_hold_1024_blocks() {
        let cfg = CacheConfig::paper_defaults();
        assert_eq!(cfg.capacity_blocks(), 1_024);
    }
}
