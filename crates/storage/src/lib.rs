//! Parallel storage substrate for the SDDS reproduction.
//!
//! This crate models the I/O side of the paper's Figure 1 architecture:
//! files striped round-robin across I/O nodes (PVFS-style), each I/O node
//! consisting of a server-side storage cache with sequential prefetching in
//! front of a small RAID array of multi-speed disks.
//!
//! * [`StripingLayout`] — file offset → I/O node mapping (the stripe map the
//!   paper's compiler reads to build access signatures),
//! * [`NodeSet`] — a bitset of I/O nodes (the representation behind the
//!   paper's access signatures),
//! * [`LruCache`] — the replacement structure used by the storage cache,
//! * [`StorageCache`] — per-node cache with sequential prefetch,
//! * [`Placement`] — k-replica object assignment across a shuffled disk
//!   pool with tag locality and a hot-spare reserve,
//! * [`RaidConfig`] — RAID 5 / RAID 10 block fan-out inside a node,
//! * [`IoNode`] — cache + RAID array of policy-managed disks,
//! * [`StorageSystem`] — the full array with access tracking and
//!   event-driven completion delivery.
//!
//! # Example
//!
//! ```
//! use sdds_storage::{FileId, StripingLayout};
//!
//! // Table II: 8 I/O nodes, 64 KB stripes.
//! let layout = StripingLayout::paper_defaults();
//! let nodes = layout.nodes_for_range(FileId(0), 0, 256 * 1024);
//! assert_eq!(nodes.len(), 4); // 4 stripes -> 4 distinct nodes
//! ```

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_debug_implementations)]

mod cache;
mod error;
mod lru;
mod node;
mod node_set;
mod placement;
mod raid;
pub mod scene;
mod striping;
mod system;

pub use cache::{CacheConfig, CacheOutcome, StorageCache};
pub use error::StorageError;
pub use lru::LruCache;
pub use node::{IoNode, NodeConfig};
pub use node_set::NodeSet;
pub use placement::{ObjectSpec, Placement, PlacementParams};
pub use raid::{MemberRequest, RaidConfig, RaidLevel};
pub use striping::{FileId, StripingLayout};
pub use system::{
    AccessCompletion, AccessId, AccessKind, FileAccess, StorageConfig, StorageSystem,
};
