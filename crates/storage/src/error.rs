//! Typed errors for storage-layer construction and validation.

use sdds_power::PolicyError;

use crate::node_set::NodeSet;
use crate::raid::RaidLevel;

/// An invalid storage configuration, reported during construction instead
/// of at first use.
///
/// Every variant carries the offending values so callers (and the `repro`
/// CLI) can render a diagnostic that names the field and its constraint.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StorageError {
    /// The stripe size is zero.
    ZeroStripe,
    /// The I/O node count is outside `1..=`[`NodeSet::MAX_NODES`].
    NodeCount {
        /// The rejected node count.
        io_nodes: usize,
    },
    /// The RAID block size is zero or not a multiple of the sector size.
    BlockNotSectorMultiple {
        /// Block size in bytes.
        block_bytes: u64,
        /// Sector size in bytes.
        sector_bytes: u32,
    },
    /// The member-disk count is invalid for the RAID level.
    RaidDisks {
        /// The RAID organization.
        level: RaidLevel,
        /// The rejected disk count.
        disks: usize,
    },
    /// The storage cache cannot hold even one block.
    CacheCapacity {
        /// Cache capacity in bytes.
        capacity_bytes: u64,
        /// Block size in bytes.
        block_bytes: u64,
    },
    /// The node's power policy or disk parameters were rejected.
    Policy(PolicyError),
    /// A replicated-placement parameter was invalid or the pool could
    /// not hold every replica.
    Placement {
        /// Name of the offending field.
        field: &'static str,
        /// What the field must satisfy.
        reason: &'static str,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::ZeroStripe => f.write_str("stripe size must be positive"),
            StorageError::NodeCount { io_nodes } => write!(
                f,
                "I/O node count must be in 1..={}, got {io_nodes}",
                NodeSet::MAX_NODES
            ),
            StorageError::BlockNotSectorMultiple {
                block_bytes,
                sector_bytes,
            } => write!(
                f,
                "block size {block_bytes} must be a positive multiple of the sector size {sector_bytes}"
            ),
            StorageError::RaidDisks { level, disks } => match level {
                RaidLevel::Single => {
                    write!(f, "a single-disk node has exactly one disk, got {disks}")
                }
                RaidLevel::Raid5 => write!(f, "RAID-5 needs >= 3 disks, got {disks}"),
                RaidLevel::Raid10 => {
                    write!(f, "RAID-10 needs an even disk count >= 2, got {disks}")
                }
            },
            StorageError::CacheCapacity {
                capacity_bytes,
                block_bytes,
            } => write!(
                f,
                "cache capacity ({capacity_bytes} B) must hold at least one {block_bytes} B block"
            ),
            StorageError::Policy(e) => write!(f, "power configuration rejected: {e}"),
            StorageError::Placement { field, reason } => {
                write!(f, "placement: {field} {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Policy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PolicyError> for StorageError {
    fn from(e: PolicyError) -> Self {
        StorageError::Policy(e)
    }
}
