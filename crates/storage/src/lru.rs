//! A generic least-recently-used cache.

use std::hash::Hash;

use simkit::hash::FxHashMap;

/// A fixed-capacity LRU map.
///
/// Entries are evicted in least-recently-used order when the capacity is
/// exceeded. Lookups with [`LruCache::get`] refresh recency;
/// [`LruCache::peek`] does not.
///
/// The implementation is an intrusive doubly-linked list over a slot
/// vector, giving O(1) insert, lookup, touch, removal and eviction without
/// unsafe code.
///
/// # Example
///
/// ```
/// use sdds_storage::LruCache;
///
/// let mut c = LruCache::new(2);
/// c.insert("a", 1);
/// c.insert("b", 2);
/// c.get(&"a"); // refresh "a"
/// c.insert("c", 3); // evicts "b"
/// assert!(c.contains(&"a"));
/// assert!(!c.contains(&"b"));
/// assert!(c.contains(&"c"));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: Option<usize>, // most recently used
    tail: Option<usize>, // least recently used
    capacity: usize,
}

#[derive(Debug, Clone)]
struct Slot<K, V> {
    /// `None` only while the slot sits on the free list.
    entry: Option<(K, V)>,
    prev: Option<usize>,
    next: Option<usize>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            slots: Vec::with_capacity(capacity.min(4_096)),
            free: Vec::new(),
            head: None,
            tail: None,
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns `true` if `key` is cached (does not refresh recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Looks up `key`, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        self.slots[idx].entry.as_ref().map(|(_, v)| v)
    }

    /// Looks up `key` without refreshing recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&i| self.slots[i].entry.as_ref())
            .map(|(_, v)| v)
    }

    /// Inserts or updates `key`, returning the entry evicted to make room,
    /// if any (never the inserted key itself).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].entry = Some((key, value));
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot {
                    entry: None,
                    prev: None,
                    next: None,
                });
                self.slots.len() - 1
            }
        };
        self.slots[idx].entry = Some((key.clone(), value));
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        self.slots[idx].entry.take().map(|(_, v)| v)
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        let tail = self.tail?;
        self.detach(tail);
        self.free.push(tail);
        let Some((k, v)) = self.slots[tail].entry.take() else {
            debug_assert!(false, "tail slot occupied");
            return None;
        };
        self.map.remove(&k);
        Some((k, v))
    }

    /// Iterates over keys from most to least recently used.
    pub fn keys_mru(&self) -> impl Iterator<Item = &K> {
        KeyIter {
            cache: self,
            cur: self.head,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            Some(p) => self.slots[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots[n].prev = prev,
            None => self.tail = prev,
        }
        self.slots[idx].prev = None;
        self.slots[idx].next = None;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slots[idx].prev = None;
        self.slots[idx].next = self.head;
        if let Some(h) = self.head {
            self.slots[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }
}

struct KeyIter<'a, K, V> {
    cache: &'a LruCache<K, V>,
    cur: Option<usize>,
}

impl<'a, K: Eq + Hash + Clone, V> Iterator for KeyIter<'a, K, V> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        let idx = self.cur?;
        self.cur = self.cache.slots[idx].next;
        self.cache.slots[idx].entry.as_ref().map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_lru_order() {
        let mut c = LruCache::new(3);
        for i in 0..3 {
            assert_eq!(c.insert(i, i * 10), None);
        }
        assert_eq!(c.insert(3, 30), Some((0, 0)));
        assert_eq!(c.insert(4, 40), Some((1, 10)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.insert("c", 3), Some(("b", 2)));
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.peek(&"a"), Some(&1));
        // "a" is still LRU.
        assert_eq!(c.insert("c", 3), Some(("a", 1)));
    }

    #[test]
    fn update_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1, "x");
        c.insert(2, "y");
        assert_eq!(c.insert(1, "z"), None);
        assert_eq!(c.get(&1), Some(&"z"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut c = LruCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.remove(&1), Some(1));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.len(), 1);
        c.insert(3, 3);
        c.insert(4, 4); // evicts 2
        assert!(!c.contains(&2));
        assert!(c.contains(&3) && c.contains(&4));
    }

    #[test]
    fn pop_lru_order() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&1);
        assert_eq!(c.pop_lru(), Some((2, ())));
        assert_eq!(c.pop_lru(), Some((3, ())));
        assert_eq!(c.pop_lru(), Some((1, ())));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn keys_mru_iterates_in_order() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&2);
        let keys: Vec<i32> = c.keys_mru().copied().collect();
        assert_eq!(keys, vec![2, 3, 1]);
    }

    #[test]
    fn single_slot_cache() {
        let mut c = LruCache::new(1);
        assert_eq!(c.insert(1, "a"), None);
        assert_eq!(c.insert(2, "b"), Some((1, "a")));
        assert_eq!(c.get(&2), Some(&"b"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, ()>::new(0);
    }

    #[test]
    fn stress_against_reference_model() {
        // Compare with a naive Vec-based LRU over a few thousand mixed ops.
        let mut c = LruCache::new(8);
        let mut reference: Vec<u64> = Vec::new(); // MRU at the end
        let mut x: u64 = 12345;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 24;
            if x.is_multiple_of(3) {
                // Lookup.
                let hit = c.get(&key).is_some();
                let ref_hit = reference.contains(&key);
                assert_eq!(hit, ref_hit, "lookup mismatch for {key}");
                if ref_hit {
                    reference.retain(|&k| k != key);
                    reference.push(key);
                }
            } else {
                // Insert.
                c.insert(key, key);
                reference.retain(|&k| k != key);
                reference.push(key);
                if reference.len() > 8 {
                    reference.remove(0);
                }
            }
            assert_eq!(c.len(), reference.len());
        }
    }
}
