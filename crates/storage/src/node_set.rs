//! A compact set of I/O nodes.

use std::fmt;

/// A bitset over I/O nodes, supporting up to 64 nodes.
///
/// This is the representation behind the paper's *access signatures*
/// (§IV-B): bit `i` is set when I/O node `i` participates in a data access.
/// The compiler crate layers the paper's `similarity` / `difference` /
/// `distance` metrics on top of the primitive bit algebra provided here.
///
/// # Example
///
/// ```
/// use sdds_storage::NodeSet;
///
/// let a = NodeSet::from_nodes([1, 9]);
/// let b = NodeSet::from_nodes([1, 2]);
/// assert_eq!(a.intersection(b).len(), 1);
/// assert_eq!(a.symmetric_difference(b).len(), 2);
/// assert_eq!(a.union(b).len(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The maximum number of I/O nodes a `NodeSet` can represent.
    pub const MAX_NODES: usize = 64;

    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Creates a set from an iterator of node indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= MAX_NODES`.
    pub fn from_nodes<I: IntoIterator<Item = usize>>(nodes: I) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in nodes {
            s.insert(n);
        }
        s
    }

    /// A set containing the single node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= MAX_NODES`.
    pub fn single(n: usize) -> Self {
        let mut s = NodeSet::EMPTY;
        s.insert(n);
        s
    }

    /// The set of all nodes `0..count`.
    ///
    /// # Panics
    ///
    /// Panics if `count > MAX_NODES`.
    pub fn all(count: usize) -> Self {
        assert!(count <= Self::MAX_NODES, "too many I/O nodes: {count}");
        if count == Self::MAX_NODES {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << count) - 1)
        }
    }

    /// Adds node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= MAX_NODES`.
    pub fn insert(&mut self, n: usize) {
        assert!(n < Self::MAX_NODES, "node index {n} out of range");
        self.0 |= 1u64 << n;
    }

    /// Removes node `n` if present.
    pub fn remove(&mut self, n: usize) {
        if n < Self::MAX_NODES {
            self.0 &= !(1u64 << n);
        }
    }

    /// Returns `true` if node `n` is in the set.
    pub fn contains(self, n: usize) -> bool {
        n < Self::MAX_NODES && self.0 & (1u64 << n) != 0
    }

    /// Number of nodes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union (the paper's group-signature bitwise OR).
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Set intersection (nodes shared by both accesses).
    pub fn intersection(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Nodes in exactly one of the two sets.
    pub fn symmetric_difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 ^ other.0)
    }

    /// Nodes in `self` but not `other`.
    pub fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// Iterates over node indices in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..Self::MAX_NODES).filter(move |&n| self.contains(n))
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u64) -> Self {
        NodeSet(bits)
    }
}

impl FromIterator<usize> for NodeSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        NodeSet::from_nodes(iter)
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeSet{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for NodeSet {
    /// Renders the signature the way the paper's Fig. 9 prints them: one
    /// bit per node, most significant node last.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = f.width().unwrap_or(16);
        for n in 0..width {
            if n > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", u8::from(self.contains(n)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(63);
        assert!(s.contains(3));
        assert!(s.contains(63));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_nodes([0, 1, 2]);
        let b = NodeSet::from_nodes([2, 3]);
        assert_eq!(a.union(b), NodeSet::from_nodes([0, 1, 2, 3]));
        assert_eq!(a.intersection(b), NodeSet::from_nodes([2]));
        assert_eq!(a.symmetric_difference(b), NodeSet::from_nodes([0, 1, 3]));
        assert_eq!(a.difference(b), NodeSet::from_nodes([0, 1]));
    }

    #[test]
    fn all_and_iter() {
        let s = NodeSet::all(8);
        assert_eq!(s.len(), 8);
        assert_eq!(s.iter().collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
        assert_eq!(NodeSet::all(64).len(), 64);
    }

    #[test]
    fn collect_from_iterator() {
        let s: NodeSet = [5usize, 7, 5].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn bits_round_trip() {
        let s = NodeSet::from_nodes([1, 5]);
        assert_eq!(NodeSet::from_bits(s.bits()), s);
    }

    #[test]
    fn display_matches_paper_format() {
        // Fig. 9's A1 signature: nodes 2 and 10 of 16.
        let s = NodeSet::from_nodes([2, 10]);
        assert_eq!(format!("{s}"), "0 0 1 0 0 0 0 0 0 0 1 0 0 0 0 0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_index_panics() {
        let mut s = NodeSet::EMPTY;
        s.insert(64);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", NodeSet::EMPTY), "NodeSet{}");
        assert_eq!(format!("{:?}", NodeSet::from_nodes([1, 2])), "NodeSet{1,2}");
    }
}
