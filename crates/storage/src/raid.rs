//! RAID 5 / RAID 10 block fan-out inside an I/O node.
//!
//! "An I/O node further stripes a block across its disks for performance
//! and reliability purposes" (§II, citing Patterson's RAID paper); Table II
//! lists RAID levels 5 and 10. Power management happens at the node level —
//! all member disks of a node see the same busy/idle pattern — so the RAID
//! layer's job is to translate one node-local block access into the member
//! disk requests whose timing the disk model simulates.

use sdds_disk::RequestKind;

use crate::error::StorageError;

/// Supported RAID organizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaidLevel {
    /// One disk per I/O node, no intra-node striping — the configuration
    /// the paper's node-level power discussion assumes ("we use the terms
    /// I/O node and disk interchangeably", §II).
    Single,
    /// Block-interleaved distributed parity.
    Raid5,
    /// Striped mirrors.
    Raid10,
}

impl std::fmt::Display for RaidLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaidLevel::Single => f.write_str("single-disk"),
            RaidLevel::Raid5 => f.write_str("RAID-5"),
            RaidLevel::Raid10 => f.write_str("RAID-10"),
        }
    }
}

/// One request to a member disk of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberRequest {
    /// Index of the member disk inside the node.
    pub disk: usize,
    /// Read or write.
    pub kind: RequestKind,
    /// Starting sector on the member disk.
    pub lba: u64,
    /// Length in sectors.
    pub sectors: u32,
}

/// RAID geometry of one I/O node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaidConfig {
    level: RaidLevel,
    disks: usize,
    block_bytes: u64,
    sector_bytes: u32,
}

impl RaidConfig {
    /// Creates a RAID configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::RaidDisks`] if the disk count is invalid
    /// for the level (RAID 5 needs at least 3 disks, RAID 10 an even count
    /// of at least 2), and [`StorageError::BlockNotSectorMultiple`] if the
    /// block size is not a positive multiple of the sector size.
    pub fn new(
        level: RaidLevel,
        disks: usize,
        block_bytes: u64,
        sector_bytes: u32,
    ) -> Result<Self, StorageError> {
        let disks_ok = match level {
            RaidLevel::Single => disks == 1,
            RaidLevel::Raid5 => disks >= 3,
            RaidLevel::Raid10 => disks >= 2 && disks.is_multiple_of(2),
        };
        if !disks_ok {
            return Err(StorageError::RaidDisks { level, disks });
        }
        if sector_bytes == 0 || block_bytes == 0 || !block_bytes.is_multiple_of(sector_bytes as u64)
        {
            return Err(StorageError::BlockNotSectorMultiple {
                block_bytes,
                sector_bytes,
            });
        }
        Ok(RaidConfig {
            level,
            disks,
            block_bytes,
            sector_bytes,
        })
    }

    /// RAID 5 over 4 disks with 64 KB blocks and 512 B sectors (the
    /// organizations Table II lists).
    pub fn paper_defaults() -> Self {
        RaidConfig {
            level: RaidLevel::Raid5,
            disks: 4,
            block_bytes: 64 * 1024,
            sector_bytes: 512,
        }
    }

    /// One disk per node (the paper's node-level power abstraction).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BlockNotSectorMultiple`] if the block size
    /// is not a positive multiple of the sector size.
    pub fn single(block_bytes: u64, sector_bytes: u32) -> Result<Self, StorageError> {
        RaidConfig::new(RaidLevel::Single, 1, block_bytes, sector_bytes)
    }

    /// The RAID level.
    pub fn level(&self) -> RaidLevel {
        self.level
    }

    /// Number of member disks.
    pub fn disks(&self) -> usize {
        self.disks
    }

    /// Number of data-bearing chunks per block (RAID 5: disks − 1;
    /// RAID 10: disks / 2).
    pub fn data_chunks(&self) -> usize {
        match self.level {
            RaidLevel::Single => 1,
            RaidLevel::Raid5 => self.disks - 1,
            RaidLevel::Raid10 => self.disks / 2,
        }
    }

    /// Sectors per chunk (a block split evenly over the data chunks,
    /// rounded up to whole sectors).
    pub fn chunk_sectors(&self) -> u32 {
        let block_sectors = (self.block_bytes / self.sector_bytes as u64) as u32;
        block_sectors.div_ceil(self.data_chunks() as u32)
    }

    /// The member-disk sector where block `index`'s chunk begins. Blocks
    /// are laid out sequentially on the members.
    fn chunk_lba(&self, block_index: u64) -> u64 {
        block_index * self.chunk_sectors() as u64
    }

    /// The node-local block whose chunk contains member-disk sector `lba`
    /// (the inverse of the internal chunk placement).
    pub fn block_of_lba(&self, lba: u64) -> u64 {
        lba / self.chunk_sectors() as u64
    }

    /// Whether the level can reconstruct one member's chunk from the
    /// surviving members (everything but [`RaidLevel::Single`]).
    pub fn has_redundancy(&self) -> bool {
        !matches!(self.level, RaidLevel::Single)
    }

    /// Translates a degraded read of block `index` — member `failed` is
    /// unreadable — into the surviving member requests that recover the
    /// lost chunk.
    ///
    /// RAID 5 reads every surviving member (the other data chunks plus
    /// the rotating parity chunk) and XOR-reconstructs; RAID 10 reads the
    /// mirror of the failed member. [`RaidLevel::Single`] has no
    /// redundancy, so the only option is to retry the same disk.
    pub fn map_degraded_read(&self, block_index: u64, failed: usize) -> Vec<MemberRequest> {
        debug_assert!(failed < self.disks, "failed member out of range");
        let lba = self.chunk_lba(block_index);
        let sectors = self.chunk_sectors();
        match self.level {
            RaidLevel::Single => vec![MemberRequest {
                disk: failed,
                kind: RequestKind::Read,
                lba,
                sectors,
            }],
            RaidLevel::Raid5 => (0..self.disks)
                .filter(|&d| d != failed)
                .map(|d| MemberRequest {
                    disk: d,
                    kind: RequestKind::Read,
                    lba,
                    sectors,
                })
                .collect(),
            RaidLevel::Raid10 => vec![MemberRequest {
                disk: failed ^ 1,
                kind: RequestKind::Read,
                lba,
                sectors,
            }],
        }
    }

    /// Translates a read of node-local block `index` into member requests.
    ///
    /// RAID 5 reads the `disks − 1` data chunks (the parity chunk is not
    /// read); RAID 10 reads one replica of each chunk, alternating mirror
    /// sides across blocks for balance.
    pub fn map_read(&self, block_index: u64) -> Vec<MemberRequest> {
        let lba = self.chunk_lba(block_index);
        let sectors = self.chunk_sectors();
        match self.level {
            RaidLevel::Single => vec![MemberRequest {
                disk: 0,
                kind: RequestKind::Read,
                lba,
                sectors,
            }],
            RaidLevel::Raid5 => {
                let parity = (block_index % self.disks as u64) as usize;
                (0..self.disks)
                    .filter(|&d| d != parity)
                    .map(|d| MemberRequest {
                        disk: d,
                        kind: RequestKind::Read,
                        lba,
                        sectors,
                    })
                    .collect()
            }
            RaidLevel::Raid10 => {
                let side = (block_index % 2) as usize;
                (0..self.disks / 2)
                    .map(|pair| MemberRequest {
                        disk: pair * 2 + side,
                        kind: RequestKind::Read,
                        lba,
                        sectors,
                    })
                    .collect()
            }
        }
    }

    /// Translates a write of node-local block `index` into member requests.
    ///
    /// A block is a full stripe, so RAID 5 performs a full-stripe write
    /// (all data chunks plus the rotating parity chunk, no read-modify-
    /// write); RAID 10 writes both replicas of every chunk.
    pub fn map_write(&self, block_index: u64) -> Vec<MemberRequest> {
        let lba = self.chunk_lba(block_index);
        let sectors = self.chunk_sectors();
        match self.level {
            RaidLevel::Single => vec![MemberRequest {
                disk: 0,
                kind: RequestKind::Write,
                lba,
                sectors,
            }],
            RaidLevel::Raid5 => (0..self.disks)
                .map(|d| MemberRequest {
                    disk: d,
                    kind: RequestKind::Write,
                    lba,
                    sectors,
                })
                .collect(),
            RaidLevel::Raid10 => (0..self.disks)
                .map(|d| MemberRequest {
                    disk: d,
                    kind: RequestKind::Write,
                    lba,
                    sectors,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raid5_read_skips_parity() {
        let r = RaidConfig::paper_defaults();
        let reqs = r.map_read(0);
        assert_eq!(reqs.len(), 3);
        assert!(reqs.iter().all(|m| m.disk != 0), "parity disk 0 not read");
        let reqs1 = r.map_read(1);
        assert!(reqs1.iter().all(|m| m.disk != 1), "parity rotates");
    }

    #[test]
    fn raid5_write_touches_all_disks() {
        let r = RaidConfig::paper_defaults();
        let reqs = r.map_write(5);
        assert_eq!(reqs.len(), 4);
        let mut disks: Vec<usize> = reqs.iter().map(|m| m.disk).collect();
        disks.sort_unstable();
        assert_eq!(disks, vec![0, 1, 2, 3]);
        assert!(reqs.iter().all(|m| !m.kind.is_read()));
    }

    #[test]
    fn raid10_read_alternates_mirror_sides() {
        let r = RaidConfig::new(RaidLevel::Raid10, 4, 64 * 1024, 512).unwrap();
        let even: Vec<usize> = r.map_read(0).iter().map(|m| m.disk).collect();
        let odd: Vec<usize> = r.map_read(1).iter().map(|m| m.disk).collect();
        assert_eq!(even, vec![0, 2]);
        assert_eq!(odd, vec![1, 3]);
    }

    #[test]
    fn raid10_write_hits_both_replicas() {
        let r = RaidConfig::new(RaidLevel::Raid10, 4, 64 * 1024, 512).unwrap();
        let reqs = r.map_write(7);
        assert_eq!(reqs.len(), 4);
    }

    #[test]
    fn chunk_sizes() {
        let r5 = RaidConfig::paper_defaults();
        // 128 sectors per 64 KB block over 3 data disks -> ceil(128/3) = 43.
        assert_eq!(r5.chunk_sectors(), 43);
        let r10 = RaidConfig::new(RaidLevel::Raid10, 4, 64 * 1024, 512).unwrap();
        assert_eq!(r10.chunk_sectors(), 64);
    }

    #[test]
    fn sequential_blocks_have_sequential_lbas() {
        let r = RaidConfig::paper_defaults();
        let a = r.map_read(10)[0].lba;
        let b = r.map_read(11)[0].lba;
        assert_eq!(b - a, r.chunk_sectors() as u64);
    }

    #[test]
    fn raid5_too_few_disks_rejected() {
        let err = RaidConfig::new(RaidLevel::Raid5, 2, 64 * 1024, 512).unwrap_err();
        assert!(err.to_string().contains("RAID-5 needs"));
    }

    #[test]
    fn raid10_odd_disks_rejected() {
        let err = RaidConfig::new(RaidLevel::Raid10, 3, 64 * 1024, 512).unwrap_err();
        assert!(err.to_string().contains("even disk count"));
    }

    #[test]
    fn block_must_be_sector_multiple() {
        let err = RaidConfig::new(RaidLevel::Raid5, 4, 1000, 512).unwrap_err();
        assert!(err.to_string().contains("multiple of the sector size"));
        assert!(RaidConfig::new(RaidLevel::Raid5, 4, 0, 512).is_err());
    }

    #[test]
    fn raid5_degraded_read_uses_all_survivors() {
        let r = RaidConfig::paper_defaults();
        // Block 0: parity on disk 0, data on 1..3. Lose data disk 2.
        let reqs = r.map_degraded_read(0, 2);
        let mut disks: Vec<usize> = reqs.iter().map(|m| m.disk).collect();
        disks.sort_unstable();
        assert_eq!(disks, vec![0, 1, 3], "other data chunks plus parity");
        assert!(reqs.iter().all(|m| m.kind.is_read()));
        assert!(reqs.iter().all(|m| m.lba == r.map_read(0)[0].lba));
    }

    #[test]
    fn raid10_degraded_read_uses_mirror() {
        let r = RaidConfig::new(RaidLevel::Raid10, 4, 64 * 1024, 512).unwrap();
        let reqs = r.map_degraded_read(5, 2);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].disk, 3, "mirror of member 2");
        let reqs = r.map_degraded_read(5, 3);
        assert_eq!(reqs[0].disk, 2, "mirror of member 3");
    }

    #[test]
    fn single_has_no_redundancy() {
        let r = RaidConfig::single(64 * 1024, 512).unwrap();
        assert!(!r.has_redundancy());
        assert!(RaidConfig::paper_defaults().has_redundancy());
        let reqs = r.map_degraded_read(3, 0);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].disk, 0, "only option is the same disk");
    }

    #[test]
    fn block_of_lba_inverts_chunk_placement() {
        let r = RaidConfig::paper_defaults();
        for block in [0u64, 1, 7, 1000] {
            let lba = r.map_read(block)[0].lba;
            assert_eq!(r.block_of_lba(lba), block);
            assert_eq!(r.block_of_lba(lba + r.chunk_sectors() as u64 - 1), block);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(RaidLevel::Raid5.to_string(), "RAID-5");
        assert_eq!(RaidLevel::Raid10.to_string(), "RAID-10");
    }
}
