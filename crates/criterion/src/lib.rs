//! Minimal, workspace-local stand-in for the `criterion` crate.
//!
//! The build environment is fully offline, so the real crates.io
//! `criterion` cannot be fetched. This shim implements the API subset
//! the workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::bench_with_input`], [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! mean-of-samples timer instead of criterion's statistical machinery.
//!
//! The generated harness understands:
//!
//! * a positional `FILTER` substring (only matching benchmarks run),
//! * `--jobs N`, forwarded to [`simkit::pool::set_jobs`] so the
//!   experiment fan-out inside a benchmark uses a bounded worker pool,
//! * and ignores the flags cargo passes (`--bench`, `--profile-time`, …).

use std::time::{Duration, Instant};

/// The benchmark driver: configuration plus the CLI filter.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line arguments (filter, `--jobs N`); called by the
    /// harness that [`criterion_group!`] generates.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--jobs" | "-j" => {
                    if let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        simkit::pool::set_jobs(n);
                    }
                    i += 2;
                }
                // Flags cargo-bench passes through; some take a value.
                "--bench" | "--test" | "--exact" | "--list" | "--nocapture" | "--quiet"
                | "--verbose" => i += 1,
                "--profile-time" | "--save-baseline" | "--baseline" | "--measurement-time"
                | "--sample-size" | "--warm-up-time" => i += 2,
                flag if flag.starts_with('-') => i += 1,
                filter => {
                    self.filter = Some(filter.to_owned());
                    i += 1;
                }
            }
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return self;
        }
        let mut b = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named benchmark group. Benchmarks in the group render as
    /// `group/function`, and an optional [`Throughput`] makes the report
    /// include a rate alongside the timings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one benchmark closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.render();
        if !self.matches(&name) {
            return self;
        }
        let mut b = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut b, input);
        b.report(&name);
        self
    }
}

/// The amount of work one benchmark iteration performs, turning the timing
/// report into a rate (real criterion's `Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration; reported as elem/s.
    Elements(u64),
    /// Bytes processed per iteration; reported as B/s.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput declaration (real criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of subsequent benchmarks; the
    /// report then includes a mean rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark closure under the group's prefix.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher::new(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
        );
        f(&mut b);
        b.report_with(&full, self.throughput);
        self
    }

    /// Ends the group (accepted for API compatibility; the shim reports
    /// each benchmark as it completes).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A new id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration, warm_up_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            warm_up_time,
            samples: Vec::new(),
        }
    }

    /// Times `routine`: a warm-up run, then up to `sample_size` timed
    /// samples bounded by the configured measurement time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.samples.clear();
        let warm_up_until = Instant::now() + self.warm_up_time;
        loop {
            std::hint::black_box(routine());
            if Instant::now() >= warm_up_until {
                break;
            }
        }
        let measure_until = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let started = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(started.elapsed());
            if Instant::now() >= measure_until {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        self.report_with(id, None);
    }

    fn report_with(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let rate = throughput
            .map(|t| {
                let (amount, unit) = match t {
                    Throughput::Elements(n) => (n, "elem/s"),
                    Throughput::Bytes(n) => (n, "B/s"),
                };
                format!(
                    "  thrpt: {}",
                    fmt_rate(amount as f64 / mean.as_secs_f64().max(1e-12), unit)
                )
            })
            .unwrap_or_default();
        println!(
            "{id:<44} time: [{} {} {}]  ({} samples){rate}",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            self.samples.len()
        );
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group: a function running each target against a
/// configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench-harness `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        c.bench_function("shim/smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("only-this".into()),
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("something-else", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
        c.bench_with_input(BenchmarkId::new("only-this", 1), &3, |b, &x| {
            b.iter(|| {
                ran = true;
                x
            });
        });
        assert!(ran);
    }
}
