//! CLI contract tests: invalid configurations exit with the config exit
//! code (3) and print the pinned one-line diagnostic; usage errors exit 2.
//!
//! These run the actual `repro` binary, so they pin the full scripted
//! interface: flag parsing, builder validation, diagnostic rendering, and
//! the process exit code.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_exits_zero() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro"));
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = repro(&["fig99"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown experiment `fig99`"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = repro(&["table3", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option `--frobnicate`"));
}

#[test]
fn unparsable_operand_is_a_usage_error() {
    let out = repro(&["table3", "--procs", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("invalid value `many` for --procs"));
}

#[test]
fn zero_io_nodes_is_a_config_error() {
    let out = repro(&["table3", "--io-nodes", "0"]);
    assert_eq!(out.status.code(), Some(3));
    assert_eq!(
        stderr(&out).trim(),
        "repro: configuration rejected: invalid storage configuration: \
         I/O node count must be in 1..=64, got 0"
    );
}

#[test]
fn zero_stripe_is_a_config_error() {
    let out = repro(&["table3", "--stripe-kb", "0"]);
    assert_eq!(out.status.code(), Some(3));
    assert_eq!(
        stderr(&out).trim(),
        "repro: configuration rejected: invalid storage configuration: \
         stripe size must be positive"
    );
}

#[test]
fn zero_procs_is_a_config_error() {
    let out = repro(&["table3", "--procs", "0"]);
    assert_eq!(out.status.code(), Some(3));
    assert_eq!(
        stderr(&out).trim(),
        "repro: configuration rejected: workload scale needs at least one client process"
    );
}

#[test]
fn zero_theta_is_a_config_error() {
    let out = repro(&["table3", "--theta", "0"]);
    assert_eq!(out.status.code(), Some(3));
    assert_eq!(
        stderr(&out).trim(),
        "repro: configuration rejected: invalid scheduler configuration: \
         scheduler knob `theta` must be >= 1 when set, got 0"
    );
}

#[test]
fn zero_cache_is_a_config_error() {
    let out = repro(&["table3", "--cache-mb", "0"]);
    assert_eq!(out.status.code(), Some(3));
    assert_eq!(
        stderr(&out).trim(),
        "repro: configuration rejected: invalid storage configuration: \
         cache capacity (0 B) must hold at least one 65536 B block"
    );
}

#[test]
fn zero_buffer_is_a_config_error() {
    let out = repro(&["table3", "--buffer-mb", "0"]);
    assert_eq!(out.status.code(), Some(3));
    assert_eq!(
        stderr(&out).trim(),
        "repro: configuration rejected: engine buffer (0 B) must hold \
         at least one stripe (65536 B)"
    );
}

#[test]
fn verbose_appends_the_cause_chain() {
    let out = repro(&["table3", "--io-nodes", "0", "--verbose"]);
    assert_eq!(out.status.code(), Some(3));
    let err = stderr(&out);
    let mut lines = err.trim().lines();
    assert_eq!(
        lines.next().unwrap(),
        "repro: configuration rejected: invalid storage configuration: \
         I/O node count must be in 1..=64, got 0"
    );
    assert_eq!(
        lines.next().unwrap(),
        "  caused by: invalid storage configuration: I/O node count must be in 1..=64, got 0"
    );
    assert_eq!(
        lines.next().unwrap(),
        "  caused by: I/O node count must be in 1..=64, got 0"
    );
    assert_eq!(lines.next(), None);
}
