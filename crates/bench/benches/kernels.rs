//! Component benchmarks: the cost of the framework's building blocks.
//!
//! These measure the simulator substrate (disk service, elevator, cache)
//! and the compiler kernels (slack analysis, reuse factor, scheduling) at
//! controlled sizes, so regressions in the hot paths are visible without
//! running whole experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sdds_compiler::ir::{IoDirection, Program};
use sdds_compiler::reuse::{GroupState, WeightFn};
use sdds_compiler::{analyze_slacks, SchedulerConfig, Signature, SlotGranularity};
use sdds_disk::service::service_timing;
use sdds_disk::{Disk, DiskParams, DiskRequest, RequestKind};
use sdds_power::{PolicyKind, PoweredArray};
use sdds_storage::{FileId, LruCache, NodeSet, StripingLayout};
use simkit::{SimDuration, SimTime};

/// A synthetic streaming program sized by `procs` and `blocks`.
fn scan_program(procs: usize, blocks: i64) -> Program {
    const STRIPE: i64 = 64 * 1024;
    let blk = 2 * STRIPE;
    let span = blocks * blk + STRIPE;
    let mut p = Program::new("bench-scan", procs);
    let f = p.add_file(FileId(0), (procs as i64 * span) as u64);
    p.push_loop("i", 0, blocks - 1, move |b| {
        b.io(
            IoDirection::Read,
            f,
            |e| e.term("p", span).term("i", blk),
            blk as u64,
        );
        b.compute(SimDuration::from_millis(10));
        b.skip(2, SimDuration::from_millis(10));
    });
    p
}

fn bench_disk(c: &mut Criterion) {
    let params = DiskParams::paper_defaults();
    c.bench_function("disk/service_timing", |b| {
        let req = DiskRequest::new(0, RequestKind::Read, 1_234_567, 128);
        b.iter(|| black_box(service_timing(&params, &req, 40_000, params.max_rpm)))
    });

    c.bench_function("disk/serve_1000_requests", |b| {
        b.iter(|| {
            let mut disk = Disk::new(params.clone()).unwrap();
            let mut t = SimTime::ZERO;
            for i in 0..1_000u64 {
                t += SimDuration::from_micros(500);
                disk.submit(
                    DiskRequest::new(i, RequestKind::Read, (i * 9_973) % 100_000_000, 64),
                    t,
                );
            }
            disk.finish(t + SimDuration::from_secs(10));
            black_box(disk.energy().total_joules())
        })
    });

    c.bench_function("disk/powered_array_spin_cycles", |b| {
        b.iter(|| {
            let mut node = PoweredArray::new(
                DiskParams::paper_single_speed(),
                1,
                PolicyKind::simple_spin_down_default(),
            )
            .unwrap();
            let mut t = SimTime::ZERO;
            for i in 0..20u64 {
                t += SimDuration::from_secs(120);
                node.submit(0, DiskRequest::new(i, RequestKind::Read, i * 10_000, 64), t);
            }
            node.finish(t + SimDuration::from_secs(60));
            black_box(node.total_joules())
        })
    });
}

fn bench_storage(c: &mut Criterion) {
    c.bench_function("storage/lru_mixed_ops", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(1_024);
            for i in 0..10_000u64 {
                let key = (i * 2_654_435_761) % 4_096;
                if i % 3 == 0 {
                    black_box(cache.get(&key));
                } else {
                    cache.insert(key, key);
                }
            }
            cache.len()
        })
    });

    let layout = StripingLayout::paper_defaults();
    c.bench_function("storage/split_range", |b| {
        b.iter(|| {
            let mut n = 0;
            for i in 0..100u64 {
                n += layout.split_range(FileId(0), i * 100_000, 512 * 1024).len();
            }
            black_box(n)
        })
    });
}

fn bench_compiler(c: &mut Criterion) {
    // Reuse-factor computation (the scheduler's inner loop).
    c.bench_function("compiler/reuse_factor", |b| {
        let mut state = GroupState::new(8, 2_000, 8);
        let sig = Signature::new(NodeSet::from_nodes([1, 2]), 8);
        for s in 0..2_000 {
            if s % 3 == 0 {
                state.place(s % 8, s as u32, 1, &sig);
            }
        }
        b.iter(|| {
            let mut acc = 0.0;
            for t in 100..1_100 {
                acc += state.reuse_factor(&sig, t, 1, 20, &WeightFn::Linear);
            }
            black_box(acc)
        })
    });

    for (procs, blocks) in [(4usize, 64i64), (8, 128)] {
        let program = scan_program(procs, blocks);
        let trace = program.trace(SlotGranularity::unit()).unwrap();
        let layout = StripingLayout::paper_defaults();
        c.bench_with_input(
            BenchmarkId::new("compiler/analyze_slacks", format!("{procs}x{blocks}")),
            &trace,
            |b, trace| b.iter(|| black_box(analyze_slacks(trace, &layout).unwrap().len())),
        );
        let accesses = analyze_slacks(&trace, &layout).unwrap();
        c.bench_with_input(
            BenchmarkId::new("compiler/schedule", format!("{procs}x{blocks}")),
            &(&accesses, &trace),
            |b, (accesses, trace)| {
                let cfg = SchedulerConfig::paper_defaults();
                b.iter(|| black_box(cfg.schedule(accesses, trace).unwrap().scheduled_count()))
            },
        );
    }
}

fn bench_engine(c: &mut Criterion) {
    use sdds_runtime::{CompiledPlan, Engine, EngineConfig};
    use sdds_storage::StorageConfig;
    let program = scan_program(4, 64);
    let trace = program.trace(SlotGranularity::unit()).unwrap();
    let storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
    let accesses = analyze_slacks(&trace, &storage.layout).unwrap();
    let table = SchedulerConfig::paper_defaults()
        .schedule(&accesses, &trace)
        .unwrap();

    // Throughput in events/sec: criterion divides the measured time by the
    // (deterministic) number of engine events per run, so the report reads
    // directly in Kelem/s — the same unit `repro perf` gates on.
    let events_plain = Engine::new(EngineConfig::paper_defaults(), storage.clone())
        .unwrap()
        .run(&trace, None)
        .unwrap()
        .events;
    let events_scheme = Engine::new(EngineConfig::paper_defaults(), storage.clone())
        .unwrap()
        .run(&trace, Some(CompiledPlan::new(&accesses, &table)))
        .unwrap()
        .events;
    let mut group = c.benchmark_group("engine");
    group.throughput(criterion::Throughput::Elements(events_plain));
    group.bench_function("run_without_scheme", |b| {
        b.iter(|| {
            let e = Engine::new(EngineConfig::paper_defaults(), storage.clone()).unwrap();
            black_box(e.run(&trace, None).unwrap().energy_joules)
        })
    });
    group.throughput(criterion::Throughput::Elements(events_scheme));
    group.bench_function("run_with_scheme", |b| {
        b.iter(|| {
            let e = Engine::new(EngineConfig::paper_defaults(), storage.clone()).unwrap();
            black_box(
                e.run(&trace, Some(CompiledPlan::new(&accesses, &table)))
                    .unwrap()
                    .energy_joules,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_disk, bench_storage, bench_compiler, bench_engine
}
criterion_main!(kernels);
