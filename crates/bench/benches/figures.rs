//! One benchmark per table and figure of the paper's evaluation.
//!
//! Each target regenerates the corresponding experiment at a reduced
//! workload scale (8 processes, quarter phases) so `cargo bench` finishes
//! in minutes; the `repro` binary produces the full paper-scale numbers:
//!
//! ```text
//! cargo run --release -p sdds-bench --bin repro -- all
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sdds::experiments as exp;
use sdds::SystemConfig;
use sdds_workloads::{App, WorkloadScale};

fn mini_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = WorkloadScale {
        procs: 8,
        factor: 0.25,
        gap_factor: 0.25,
    };
    cfg
}

const APPS: [App; 2] = [App::Sar, App::Madbench2];

fn bench_tables(c: &mut Criterion) {
    let cfg = mini_config();
    c.bench_function("table3/default_scheme", |b| {
        b.iter(|| black_box(exp::table3(&cfg, &APPS).unwrap().len()))
    });
}

fn bench_fig12(c: &mut Criterion) {
    let cfg = mini_config();
    c.bench_function("fig12a/idle_cdf_without_scheme", |b| {
        b.iter(|| black_box(exp::fig12_cdf(&cfg, &APPS, false).unwrap().len()))
    });
    c.bench_function("fig12b/idle_cdf_with_scheme", |b| {
        b.iter(|| black_box(exp::fig12_cdf(&cfg, &APPS, true).unwrap().len()))
    });
    c.bench_function("fig12c/energy_without_scheme", |b| {
        b.iter(|| black_box(exp::fig12_energy(&cfg, &APPS, false).unwrap().1))
    });
    c.bench_function("fig12d/energy_with_scheme", |b| {
        b.iter(|| black_box(exp::fig12_energy(&cfg, &APPS, true).unwrap().1))
    });
}

fn bench_fig13(c: &mut Criterion) {
    let cfg = mini_config();
    c.bench_function("fig13a/perf_without_scheme", |b| {
        b.iter(|| black_box(exp::fig13_perf(&cfg, &APPS, false).unwrap().1))
    });
    c.bench_function("fig13b/perf_with_scheme", |b| {
        b.iter(|| black_box(exp::fig13_perf(&cfg, &APPS, true).unwrap().1))
    });
    c.bench_function("fig13c/io_node_sweep", |b| {
        b.iter(|| {
            black_box(
                exp::fig13c_io_nodes(&cfg, &[App::Sar], &[4, 8])
                    .unwrap()
                    .len(),
            )
        })
    });
    c.bench_function("fig13d/delta_sweep", |b| {
        b.iter(|| {
            black_box(
                exp::fig13d_delta(&cfg, &[App::Sar], &[10, 20])
                    .unwrap()
                    .len(),
            )
        })
    });
}

fn bench_fig14_and_cache(c: &mut Criterion) {
    let cfg = mini_config();
    c.bench_function("fig14/theta_sweep", |b| {
        b.iter(|| black_box(exp::fig14_theta(&cfg, &[App::Sar], &[2, 4]).unwrap().len()))
    });
    c.bench_function("cache/capacity_sweep", |b| {
        b.iter(|| {
            black_box(
                exp::cache_sensitivity(&cfg, &[App::Sar], &[32, 64])
                    .unwrap()
                    .len(),
            )
        })
    });
    c.bench_function("compiler_cost/all_apps", |b| {
        b.iter(|| black_box(exp::compile_cost(&cfg, &APPS).unwrap().len()))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_tables, bench_fig12, bench_fig13, bench_fig14_and_cache
}
criterion_main!(figures);
