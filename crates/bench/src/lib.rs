//! Reporting helpers for the benchmark harness.
//!
//! The `repro` binary (`cargo run --release -p sdds-bench --bin repro`)
//! regenerates every table and figure of the paper; the Criterion benches
//! under `benches/` measure the cost of the framework's building blocks.
//! This library holds the small formatting utilities both share.

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use std::error::Error;

use sdds::experiments::{CdfRow, EnergyRow, PerfRow, Table3Row, ThetaPoint};
use sdds::metrics::CdfPoint;

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:6.1}%")
}

/// Renders a CLI diagnostic for `err`: one `repro: <message>` line, and —
/// when `verbose` is set — the full `caused by:` source chain underneath,
/// one frame per line.
///
/// The one-line form is what scripted callers see by default; its exact
/// wording is pinned by golden tests, so treat changes as breaking.
pub fn render_diagnostic(err: &dyn Error, verbose: bool) -> String {
    let mut out = format!("repro: {err}");
    if verbose {
        let mut cur = err.source();
        while let Some(cause) = cur {
            out.push_str(&format!("\n  caused by: {cause}"));
            cur = cause.source();
        }
    }
    out
}

/// Renders Table III.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table III: applications under the Default Scheme\n");
    out.push_str("app         exec (min)   energy (J)   paper exec (min)   paper energy (J)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:>10.2} {:>12.1} {:>18.1} {:>18.1}\n",
            r.app.name(),
            r.exec_minutes,
            r.energy_joules,
            r.paper_exec_minutes,
            r.paper_energy_joules
        ));
    }
    out
}

/// Renders one CDF row as the paper's bucket series.
pub fn render_cdf(points: &[CdfPoint]) -> String {
    points
        .iter()
        .map(|p| format!("<= {:>9}: {:5.1}%", p.upto.to_string(), p.fraction * 100.0))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders a Fig. 12(a)/(b) CDF set.
pub fn render_cdf_rows(rows: &[CdfRow]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "--- {} ---\n{}\n",
            r.app.name(),
            render_cdf(&r.points)
        ));
    }
    out
}

/// Renders Fig. 12(c)/(d): normalized energy per app and strategy.
pub fn render_energy(rows: &[EnergyRow], averages: &[f64; 4]) -> String {
    let mut out = String::new();
    out.push_str("app         simple   prediction   history   staggered  (normalized energy, % of Default)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<11} {} {}  {} {}\n",
            r.app.name(),
            pct(r.normalized[0]),
            pct(r.normalized[1]),
            pct(r.normalized[2]),
            pct(r.normalized[3])
        ));
    }
    out.push_str(&format!(
        "{:<11} {} {}  {} {}\n",
        "average",
        pct(averages[0]),
        pct(averages[1]),
        pct(averages[2]),
        pct(averages[3])
    ));
    out
}

/// Renders Fig. 13(a)/(b): performance degradation per app and strategy.
pub fn render_perf(rows: &[PerfRow], averages: &[f64; 4]) -> String {
    let mut out = String::new();
    out.push_str(
        "app         simple   prediction   history   staggered  (performance degradation, %)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} {} {}  {} {}\n",
            r.app.name(),
            pct(r.degradation[0]),
            pct(r.degradation[1]),
            pct(r.degradation[2]),
            pct(r.degradation[3])
        ));
    }
    out.push_str(&format!(
        "{:<11} {} {}  {} {}\n",
        "average",
        pct(averages[0]),
        pct(averages[1]),
        pct(averages[2]),
        pct(averages[3])
    ));
    out
}

/// Renders a parameter sweep as `x -> y%` lines.
pub fn render_sweep<X: std::fmt::Display>(label: &str, points: &[(X, f64)]) -> String {
    let mut out = String::new();
    for (x, y) in points {
        out.push_str(&format!("{label} = {x:>6} -> {}\n", pct(*y)));
    }
    out
}

/// Renders the Fig. 14 θ sweep.
pub fn render_theta(points: &[ThetaPoint]) -> String {
    let mut out = String::new();
    out.push_str("theta   energy reduction   perf improvement\n");
    for p in points {
        out.push_str(&format!(
            "{:>5}   {}            {}\n",
            p.theta,
            pct(p.energy_reduction),
            pct(p.perf_improvement)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_workloads::App;
    use simkit::SimDuration;

    #[test]
    fn table3_renders_all_apps() {
        let rows = vec![Table3Row {
            app: App::Hf,
            exec_minutes: 3.2,
            energy_joules: 1234.5,
            paper_exec_minutes: 27.9,
            paper_energy_joules: 3637.4,
        }];
        let s = render_table3(&rows);
        assert!(s.contains("hf"));
        assert!(s.contains("3.20"));
        assert!(s.contains("3637.4"));
    }

    #[test]
    fn cdf_renders_buckets() {
        let pts = vec![
            CdfPoint {
                upto: SimDuration::from_millis(5),
                fraction: 0.25,
            },
            CdfPoint {
                upto: SimDuration::from_millis(10),
                fraction: 1.0,
            },
        ];
        let s = render_cdf(&pts);
        assert!(s.contains("25.0%"));
        assert!(s.contains("100.0%"));
    }

    #[test]
    fn sweep_renders_pairs() {
        let s = render_sweep("delta", &[(5u32, 1.5), (10, 2.5)]);
        assert!(s.contains("delta =      5"));
        assert!(s.contains("2.5%"));
    }

    #[test]
    fn diagnostic_is_one_line_unless_verbose() {
        use sdds::{ConfigError, SddsError};
        use sdds_storage::StorageError;

        let err = SddsError::Config(ConfigError::Storage(StorageError::ZeroStripe));
        let terse = render_diagnostic(&err, false);
        assert_eq!(
            terse,
            "repro: configuration rejected: invalid storage configuration: \
             stripe size must be positive"
        );
        assert_eq!(terse.lines().count(), 1);

        let chain = render_diagnostic(&err, true);
        assert_eq!(chain.lines().count(), 3, "two causes below the headline");
        assert!(chain.contains("caused by: invalid storage configuration"));
        assert!(chain.contains("caused by: stripe size must be positive"));
    }

    #[test]
    fn energy_table_includes_average() {
        let rows = vec![EnergyRow {
            app: App::Sar,
            normalized: [95.0, 90.0, 75.0, 80.0],
        }];
        let s = render_energy(&rows, &[95.0, 90.0, 75.0, 80.0]);
        assert!(s.contains("average"));
        assert!(s.contains("75.0%"));
    }
}
