//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p sdds-bench --bin repro -- <experiment> [options]
//!
//! experiments:
//!   table2, table3, fig12a, fig12b, fig12c, fig12d,
//!   fig13a, fig13b, fig13c, fig13d, fig14, cache, compiler-cost,
//!   granularity, oscillation, ablation, multiapp, headline, perf,
//!   trace, attrib, faults, fuzz, scale, online, rebuild, all
//!
//! options:
//!   --apps hf,sar,...      subset of applications (default: all six)
//!   --procs N              client processes (default 32)
//!   --factor F             phase-count multiplier (default 1.0)
//!   --gap-factor F         long-gap multiplier (default 1.0)
//!   --io-nodes N           I/O nodes in the striping layout (default 8)
//!   --stripe-kb N          stripe size in KiB (default 64)
//!   --cache-mb N           per-node cache capacity in MiB (default 64)
//!   --buffer-mb N          client prefetch buffer in MiB (default 64)
//!   --delta N              scheduler look-ahead window δ in slots
//!   --theta N              scheduler per-slot access bound θ
//!   --jobs N               worker threads for the experiment matrix
//!                          (default: available parallelism; results are
//!                          identical for every N)
//!   --csv DIR              also write each series as DIR/<experiment>.csv
//!   --verbose              print the full error cause chain on failure
//!
//! Exit codes classify failures for scripted callers: 0 success, 2 usage,
//! 3 invalid configuration, 4 compile failure, 5 storage failure, 6 engine
//! failure, 1 anything else (e.g. an output file that cannot be written).
//!
//! perf options (only meaningful with the `perf` experiment):
//!   --repeat N             timed runs per cell (default 3)
//!   --out FILE             write the measurements as machine-readable JSON
//!   --check FILE           compare against a baseline JSON written by --out
//!   --tolerance F          allowed fractional events/sec regression against
//!                          the baseline before exiting non-zero (default 0.30)
//!
//! telemetry options (`trace`, and `--trace-out` also with `perf`):
//!   --policy NAME          power policy for the traced cell: default,
//!                          simple, prediction, history, staggered
//!                          (trace defaults to history)
//!   --trace-out FILE       write trace events as JSONL; a Chrome
//!                          trace_event twin goes to FILE with its
//!                          extension replaced by .chrome.json
//!   --metrics-out FILE     write the metrics registry as JSON
//! ```
//!
//! `trace` runs one application (the first of `--apps`) with telemetry
//! enabled and prints the per-disk time-in-state / energy-by-state table;
//! the table must reconcile with the run's total energy to 1e-9 J or the
//! command exits non-zero.
//!
//! rebuild options (only meaningful with the `rebuild` experiment):
//!   --scenario NAME        fault scenario shaping stragglers, bad sectors
//!                          and crash windows: light or heavy (default light)
//!   --seed N               placement + workload + fault seed (default 42)
//!   --out FILE             write the report as JSON (sdds-rebuild-v1)
//!
//! `rebuild` runs the replicated object-store scenario three times — with
//! straggler-aware replica routing, with primary-only reads, and as a
//! fault-free twin — injecting a whole-disk failure and reconstructing the
//! lost replicas onto the hot spare as rate-limited background traffic.
//! The command exits non-zero when foreground bytes diverge from the
//! fault-free twin, when the foreground/rebuild energy split does not
//! reconcile with the headline joules at 1e-9, or when routing fails to
//! improve the p99 read latency.
//!
//! attrib options (only meaningful with the `attrib` experiment):
//!   --scenario NAME        also inject the fault scenario (light, heavy);
//!                          omitted = fault-free matrix
//!   --seed N               fault-stream seed (default 42)
//!   --scene-scale F        scale factor of the observed sharded scene
//!                          (default 0.25)
//!   --shards auto|N        shard policy for the observed scene
//!   --out FILE             write the report as machine-readable JSON
//!                          (schema `sdds-attrib-v1`)
//!
//! `attrib` runs every (app, strategy, scheme) cell with telemetry on and
//! builds the deterministic attribution report: per-disk/per-power-state
//! energy cells that must sum to the headline joules within 1e-9, exact
//! per-request latency decomposition (response = queue + service, queue =
//! spin-up + wait), policy-decision counts with learner-state snapshots,
//! regret against an offline idle-window oracle, and per-shard/per-epoch
//! barrier-stall accounting from an observed sharded scene. The JSON
//! report contains only simulated quantities, so two invocations are
//! byte-identical and can be `cmp`-ed.
//!
//! faults options (only meaningful with the `faults` experiment):
//!   --scenario NAME        fault scenario: light or heavy (default light)
//!   --seed N               fault-stream seed (default 42)
//!   --out FILE             write the fault report as machine-readable JSON
//!                          (schema `sdds-faults-v1`)
//!
//! `faults` runs every selected application twice — once under the fault
//! scenario and once fault-free — and reports injected/recovered fault
//! counts plus the energy cost of recovery. The runs must move exactly
//! the same bytes or the command exits 1; the JSON report is
//! byte-deterministic for a given seed, so two invocations can be
//! `cmp`-ed to prove reproducibility.
//!
//! `perf` times the *simulation phase* only: each cell is run once to warm
//! the process-wide compilation cache, then `--repeat` further runs are
//! timed, so the wall time measures the discrete-event engine rather than
//! trace extraction or scheduling. Event counts are deterministic; only
//! the seconds (and hence events/sec) vary between hosts. The report also
//! includes a calendar-kernel microbenchmark (retarget/pop ops/sec); a
//! `--check` baseline that carries a `"kernel"` entry gates it under the
//! same tolerance, and older baselines without one skip that gate.
//!
//! scale options (only meaningful with the `scale` experiment):
//!   --scales F,F,...       scene scale factors (default 1,10,100)
//!   --jobs-list N,N,...    worker counts per scale point (default 1,2,4,8)
//!   --shards auto|N        shard policy for the sharded points (default auto)
//!   --epoch-us N           epoch window in µs (default: the scene's hop latency)
//!   --repeat N             timed runs per point, best-of (default 3)
//!   --no-baseline          skip the single-shard baseline (and speedups)
//!   --out FILE             write the report as JSON (schema `sdds-scale-v1`)
//!   --digest FILE          write one jobs-invariant digest line per scale
//!                          (schema `sdds-scale-digest-v1`) for byte comparison
//!   --check-speedup X      exit non-zero unless the largest scale's best point
//!                          reaches X× the single-shard baseline
//!
//! `scale` runs the datacenter scene (clients behind congestion-limited
//! shared links in front of burst-buffered I/O groups, under a periodic
//! global I/O schedule) on the sharded time-domain kernel and reports
//! aggregate events/sec per (scale, jobs) point. Simulation metrics are
//! bitwise identical across every `--jobs-list` entry — the command
//! verifies this itself and exits 1 on any divergence.
//!
//! online options (only meaningful with the `online` experiment):
//!   --scenes a,b           keyed scenes: zipfian, diurnal (default: both)
//!   --modes a,b            decision layers: table, online, hybrid
//!                          (default: all three)
//!   --seed N               workload + policy-jitter seed (default 42)
//!   --out FILE             write the report as machine-readable JSON
//!                          (schema `sdds-online-v1`)
//!
//! `online` compares the decision layers on DBMS-style keyed workloads
//! (zipfian hot sets, diurnal load swings) that no compile-time table can
//! anticipate from loop bounds alone: `table` distills the compiled
//! schedule into per-node idle forecasts, `online` learns idleness from
//! the live stream with no compiler help, and `hybrid` starts from
//! table-calibrated predictions and corrects online. Per scene it reports
//! the energy/latency frontier (the set of modes no other mode beats on
//! both energy and mean read response). The JSON report contains only
//! simulated quantities, so two invocations with the same seed are
//! byte-identical.
//!
//! fuzz options (only meaningful with the `fuzz` experiment):
//!   --seeds N              SeededShuffle seeds per cell (default 8)
//!
//! `fuzz` runs every (app, scheme) cell once under Deterministic
//! arbitration and once per SeededShuffle seed. Arbitration only permutes
//! same-instant events, so it may move *when* work happens but never
//! *what* work is done: bytes moved and processes finished must be
//! identical across every seed, or the command exits 1. Timing-derived
//! metrics (exec time, energy, hit rates) are allowed to vary.

use std::time::Instant;

use sdds::cache::CompileCache;
use sdds::experiments as exp;
use sdds::{ExperimentError, SddsError, SystemConfig};
use sdds_bench::*;
use sdds_power::PolicyKind;
use sdds_runtime::{run_rebuild, RebuildResult};
use sdds_workloads::{App, WorkloadScale};

const EXPERIMENTS: &[&str] = &[
    "table2",
    "table3",
    "fig12a",
    "fig12b",
    "fig12c",
    "fig12d",
    "fig13a",
    "fig13b",
    "fig13c",
    "fig13d",
    "fig14",
    "cache",
    "compiler-cost",
    "granularity",
    "oscillation",
    "ablation",
    "multiapp",
    "headline",
    "perf",
    "trace",
    "attrib",
    "faults",
    "fuzz",
    "scale",
    "online",
    "rebuild",
    "all",
];

fn usage() -> String {
    format!(
        "usage: repro [<experiment>] [options]\n\n\
         experiments:\n  {}\n\n\
         options:\n\
         \x20 --apps hf,sar,...   subset of applications (default: all six)\n\
         \x20 --procs N           client processes (default 32)\n\
         \x20 --factor F          phase-count multiplier (default 1.0)\n\
         \x20 --gap-factor F      long-gap multiplier (default 1.0)\n\
         \x20 --io-nodes N        I/O nodes in the striping layout (default 8)\n\
         \x20 --stripe-kb N       stripe size in KiB (default 64)\n\
         \x20 --cache-mb N        per-node cache capacity in MiB (default 64)\n\
         \x20 --buffer-mb N       client prefetch buffer in MiB (default 64)\n\
         \x20 --delta N           scheduler look-ahead window (slots)\n\
         \x20 --theta N           scheduler per-slot access bound\n\
         \x20 --jobs N            worker threads (default: available parallelism;\n\
         \x20                     results are identical for every N)\n\
         \x20 --csv DIR           also write each series as DIR/<experiment>.csv\n\
         \x20 --verbose           print the full error cause chain on failure\n\n\
         exit codes: 0 ok, 2 usage, 3 config, 4 compile, 5 storage, 6 engine,\n\
         1 other\n\n\
         perf options:\n\
         \x20 --repeat N          timed runs per cell (default 3)\n\
         \x20 --out FILE          write measurements as JSON\n\
         \x20 --check FILE        compare events/sec against a baseline JSON\n\
         \x20 --tolerance F       allowed fractional regression (default 0.30)\n\n\
         faults options:\n\
         \x20 --scenario NAME     fault scenario: light or heavy (default light)\n\
         \x20 --seed N            fault-stream seed (default 42)\n\
         \x20 --out FILE          write the fault report as JSON (sdds-faults-v1)\n\n\
         attrib options:\n\
         \x20 --scenario NAME     also inject faults (light, heavy); default none\n\
         \x20 --seed N            fault-stream seed (default 42)\n\
         \x20 --scene-scale F     observed sharded-scene factor (default 0.25)\n\
         \x20 --out FILE          write the report as JSON (sdds-attrib-v1)\n\n\
         scale options:\n\
         \x20 --scales F,F,...    scene scale factors (default 1,10,100)\n\
         \x20 --jobs-list N,...   worker counts per point (default 1,2,4,8)\n\
         \x20 --shards auto|N     shard policy (default auto)\n\
         \x20 --epoch-us N        epoch window in us (default: hop latency)\n\
         \x20 --no-baseline       skip the single-shard baseline\n\
         \x20 --out FILE          write the report as JSON (sdds-scale-v1)\n\
         \x20 --digest FILE       write jobs-invariant digest lines per scale\n\
         \x20 --check-speedup X   require X x single-shard at the largest scale\n\n\
         rebuild options:\n\
         \x20 --scenario NAME     fault scenario: light or heavy (default light)\n\
         \x20 --seed N            placement + workload + fault seed (default 42)\n\
         \x20 --out FILE          write the report as JSON (sdds-rebuild-v1)\n\n\
         online options:\n\
         \x20 --scenes a,b        keyed scenes: zipfian, diurnal (default: both)\n\
         \x20 --modes a,b         decision layers: table, online, hybrid\n\
         \x20 --seed N            workload + policy-jitter seed (default 42)\n\
         \x20 --out FILE          write the report as JSON (sdds-online-v1)\n\n\
         fuzz options:\n\
         \x20 --seeds N           SeededShuffle seeds per cell (default 8)\n\n\
         telemetry options (trace; --trace-out also works with perf):\n\
         \x20 --policy NAME       power policy: default, simple, prediction,\n\
         \x20                     history, staggered (trace defaults to history)\n\
         \x20 --trace-out FILE    write events as JSONL plus a Chrome\n\
         \x20                     trace_event twin at FILE.chrome.json\n\
         \x20 --metrics-out FILE  write the metrics registry as JSON",
        EXPERIMENTS.join(", ")
    )
}

/// Maps a `--policy` operand onto a default-tuned [`PolicyKind`].
fn parse_policy(name: &str) -> PolicyKind {
    match name {
        "default" | "nopm" => PolicyKind::NoPm,
        "simple" => PolicyKind::simple_spin_down_default(),
        "prediction" | "prediction-based" => PolicyKind::predictive_spin_down_default(),
        "history" | "history-based" => PolicyKind::history_based_default(),
        "staggered" => PolicyKind::staggered_default(),
        other => fail(&format!(
            "unknown policy `{other}` (known: default, simple, prediction, history, staggered)"
        )),
    }
}

fn fail(message: &str) -> ! {
    eprintln!("repro: {message}\n\n{}", usage());
    std::process::exit(2);
}

fn parse_apps(s: &str) -> Vec<App> {
    s.split(',')
        .map(|name| {
            App::all()
                .into_iter()
                .find(|a| a.name() == name.trim())
                .unwrap_or_else(|| {
                    let known: Vec<&str> = App::all().iter().map(|a| a.name()).collect();
                    fail(&format!(
                        "unknown application `{}` (known: {})",
                        name.trim(),
                        known.join(", ")
                    ))
                })
        })
        .collect()
}

/// Returns the operand of flag `args[i]`, or exits with usage.
fn operand(args: &[String], i: usize) -> &str {
    args.get(i + 1)
        .unwrap_or_else(|| fail(&format!("{} requires a value", args[i])))
}

fn parse_num<T: std::str::FromStr>(args: &[String], i: usize) -> T {
    let raw = operand(args, i);
    raw.parse().unwrap_or_else(|_| {
        fail(&format!("invalid value `{raw}` for {}", args[i]));
    })
}

fn write_csv(dir: &std::path::Path, name: &str, header: &str, rows: &[String]) {
    let path = dir.join(format!("{name}.csv"));
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("repro: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("[wrote {}]", path.display());
}

/// One timed perf cell: an application run with or without the scheme.
struct PerfCell {
    name: String,
    events: u64,
    seconds: f64,
    events_per_sec: f64,
}

/// Times the simulation phase of every (app, scheme) cell and reports
/// events/sec. With `trace_out`, the timed runs additionally collect
/// telemetry (exercising the enabled-path overhead) and the last cell's
/// trace is exported. Returns `Ok(false)` when a `--check` baseline
/// comparison fails (or an output file cannot be written), and `Err`
/// when a cell itself fails to run.
fn run_perf(
    base: &SystemConfig,
    apps: &[App],
    repeat: usize,
    out: Option<&std::path::Path>,
    check: Option<&std::path::Path>,
    tolerance: f64,
    trace_out: Option<&std::path::Path>,
) -> Result<bool, SddsError> {
    println!("Simulation-phase throughput ({repeat} timed runs per cell, warm compile cache)");
    println!(
        "{:<20} {:>14} {:>10} {:>14}",
        "cell", "events", "seconds", "events/sec"
    );
    let mut cells: Vec<PerfCell> = Vec::new();
    let mut last_report: Option<sdds::TelemetryReport> = None;
    for &app in apps {
        for scheme in [false, true] {
            let cfg = base
                .clone()
                .with_scheme(scheme)
                .with_telemetry(trace_out.is_some());
            // Warm run: fills the process-wide trace/schedule caches so the
            // timed loop below measures only the discrete-event engine.
            let warm = sdds::run(app, &cfg)?;
            let started = Instant::now();
            let mut events: u64 = 0;
            for _ in 0..repeat {
                let mut o = sdds::run(app, &cfg)?;
                assert_eq!(
                    o.result.events,
                    warm.result.events,
                    "nondeterministic event count for {}",
                    app.name()
                );
                events += o.result.events;
                if let Some(t) = o.result.telemetry.take() {
                    last_report = Some(t);
                }
            }
            let seconds = started.elapsed().as_secs_f64();
            let events_per_sec = events as f64 / seconds.max(1e-9);
            let name = if scheme {
                format!("{}+scheme", app.name())
            } else {
                app.name().to_owned()
            };
            println!("{name:<20} {events:>14} {seconds:>10.3} {events_per_sec:>14.0}");
            cells.push(PerfCell {
                name,
                events,
                seconds,
                events_per_sec,
            });
        }
    }
    let total_events: u64 = cells.iter().map(|c| c.events).sum();
    let total_seconds: f64 = cells.iter().map(|c| c.seconds).sum();
    let total_eps = total_events as f64 / total_seconds.max(1e-9);
    println!(
        "{:<20} {total_events:>14} {total_seconds:>10.3} {total_eps:>14.0}",
        "TOTAL"
    );
    let (kernel_op_count, kernel_seconds, kernel_ops) = kernel_microbench();
    println!(
        "{:<20} {kernel_op_count:>14} {kernel_seconds:>10.3} {kernel_ops:>14.0}",
        "kernel (calendar)"
    );

    if let Some(path) = out {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema\": \"sdds-perf-v1\",\n");
        json.push_str(&format!("  \"repeat\": {repeat},\n"));
        json.push_str(&format!("  \"procs\": {},\n", base.scale.procs));
        json.push_str(&format!("  \"factor\": {},\n", base.scale.factor));
        json.push_str("  \"cells\": [\n");
        let lines: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": \"{}\", \"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.1}}}",
                    c.name, c.events, c.seconds, c.events_per_sec
                )
            })
            .collect();
        json.push_str(&lines.join(",\n"));
        json.push_str("\n  ],\n");
        json.push_str(&format!(
            "  \"kernel\": {{\"ops\": {kernel_op_count}, \"seconds\": {kernel_seconds:.6}, \"ops_per_sec\": {kernel_ops:.1}}},\n"
        ));
        json.push_str(&format!(
            "  \"total\": {{\"events\": {total_events}, \"seconds\": {total_seconds:.6}, \"events_per_sec\": {total_eps:.1}}}\n"
        ));
        json.push_str("}\n");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            return Ok(false);
        }
        eprintln!("[wrote {}]", path.display());
    }

    if let Some(path) = trace_out {
        let Some(t) = last_report.as_ref() else {
            eprintln!("repro: --trace-out was given but no telemetry came back");
            return Ok(false);
        };
        if !write_trace_files(t, path) {
            return Ok(false);
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("repro: cannot read baseline {}: {e}", path.display());
                return Ok(false);
            }
        };
        let Some(baseline_eps) = baseline_total_eps(&text) else {
            eprintln!("repro: no total events_per_sec found in {}", path.display());
            return Ok(false);
        };
        // Every gated metric by name, so a failure pinpoints *what*
        // regressed and by exactly how much. Per-cell entries are gated
        // only through the total (cells are noisy at small scales) but are
        // still named in the failure report when they breach the floor.
        let mut regressions: Vec<String> = Vec::new();
        let floor = baseline_eps * (1.0 - tolerance);
        let ratio = total_eps / baseline_eps;
        println!(
            "baseline {baseline_eps:.0} events/s, now {total_eps:.0} ({:+.1}%), \
             floor at -{:.0}% is {floor:.0}",
            (ratio - 1.0) * 100.0,
            tolerance * 100.0,
        );
        if total_eps < floor {
            regressions.push(format!(
                "total events/sec regressed {:.1}% (baseline {baseline_eps:.0}, \
                 now {total_eps:.0}, tolerance {:.0}%)",
                (1.0 - ratio) * 100.0,
                tolerance * 100.0
            ));
            for c in &cells {
                if let Some(base_eps) = baseline_cell_eps(&text, &c.name) {
                    if c.events_per_sec < base_eps * (1.0 - tolerance) {
                        regressions.push(format!(
                            "cell `{}` events/sec regressed {:.1}% (baseline {base_eps:.0}, \
                             now {:.0})",
                            c.name,
                            (1.0 - c.events_per_sec / base_eps) * 100.0,
                            c.events_per_sec
                        ));
                    }
                }
            }
        }
        match baseline_kernel_ops(&text) {
            Some(baseline_ops) => {
                let kfloor = baseline_ops * (1.0 - tolerance);
                println!(
                    "kernel baseline {baseline_ops:.0} ops/s, now {kernel_ops:.0} ({:+.1}%), \
                     floor at -{:.0}% is {kfloor:.0}",
                    (kernel_ops / baseline_ops - 1.0) * 100.0,
                    tolerance * 100.0,
                );
                if kernel_ops < kfloor {
                    regressions.push(format!(
                        "kernel (calendar) ops/sec regressed {:.1}% (baseline \
                         {baseline_ops:.0}, now {kernel_ops:.0}, tolerance {:.0}%)",
                        (1.0 - kernel_ops / baseline_ops) * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
            // Baselines written before the kernel benchmark existed have
            // no "kernel" line; the events/sec gate above still applies,
            // but the calendar kernel itself is NOT regression-gated until
            // the baseline is refreshed.
            None => eprintln!(
                "repro: WARNING: baseline {} has no \"kernel\" entry — the calendar-kernel \
                 microbenchmark is NOT gated against regressions.\n\
                 repro: WARNING: refresh it with `repro perf --out {}` and commit the result.",
                path.display(),
                path.display()
            ),
        }
        if !regressions.is_empty() {
            eprintln!(
                "repro: {} metric(s) regressed vs {}:",
                regressions.len(),
                path.display()
            );
            for r in &regressions {
                eprintln!("repro:   {r}");
            }
            return Ok(false);
        }
    }
    Ok(true)
}

/// One timed pass over the calendar kernel itself: a synthetic
/// retarget/pop-due workload at a slot population wider than any real
/// configuration drives (the engine registers procs + 3 slots), so the
/// number isolates retargeting and min-scan popping from all simulation
/// logic.
fn kernel_microbench() -> (u64, f64, f64) {
    use simkit::kernel::{ArbitrationPolicy, Calendar};
    use simkit::SimTime;
    const SLOTS: u64 = 64;
    const TARGET_OPS: u64 = 4_000_000;
    let mut cal = Calendar::new(ArbitrationPolicy::Deterministic);
    let slots: Vec<_> = (0..SLOTS).map(|_| cal.register()).collect();
    let started = Instant::now();
    let mut ops: u64 = 0;
    let mut t: u64 = 0;
    let mut sink: u64 = 0;
    while ops < TARGET_OPS {
        for (i, &slot) in slots.iter().enumerate() {
            t += 1 + (i as u64 & 7);
            cal.retarget(slot, Some(SimTime::from_micros(t)));
            ops += 1;
        }
        // Drain everything older than one round; the rest stays queued
        // and is retargeted next round, exercising supersession.
        while let Some((at, slot)) = cal.pop_due(SimTime::from_micros(t - SLOTS)) {
            sink = sink.wrapping_add(at.as_micros() ^ slot.index() as u64);
            ops += 1;
        }
    }
    while let Some((at, slot)) = cal.pop() {
        sink = sink.wrapping_add(at.as_micros() ^ slot.index() as u64);
        ops += 1;
    }
    let seconds = started.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (ops, seconds, ops as f64 / seconds.max(1e-9))
}

/// One measured (scale, jobs) point of the `scale` experiment.
struct ScalePoint {
    scale: f64,
    jobs: usize,
    shards: usize,
    components: usize,
    events: u64,
    epochs: u64,
    seconds: f64,
    events_per_sec: f64,
    speedup: Option<f64>,
}

/// Times `repeat` runs of one scale-scene configuration and returns the
/// run's (jobs-invariant) result together with the best wall-clock time.
fn time_scale_point(
    cfg: &sdds::ScaleSceneConfig,
    jobs: usize,
    repeat: usize,
) -> Result<(sdds_runtime::SceneResult, f64), SddsError> {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeat {
        let started = Instant::now();
        let r = sdds::run_scale(cfg, jobs)?;
        let secs = started.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        if let Some(prev) = &result {
            let prev: &sdds_runtime::SceneResult = prev;
            assert_eq!(
                prev.digest(),
                r.digest(),
                "nondeterministic scale-{} scene across repeats",
                cfg.factor
            );
        } else {
            result = Some(r);
        }
    }
    let Some(r) = result else {
        // Unreachable: `repeat` is validated to be at least 1.
        return Err(SddsError::Config(sdds::ConfigError::ZeroProcs));
    };
    Ok((r, best))
}

/// Runs the sharded datacenter scene across `--scales` × `--jobs-list`
/// and reports aggregate events/sec per point, plus (unless
/// `--no-baseline`) the speedup over a single-sharded run of the same
/// scene. Digests are checked for bitwise equality across worker counts;
/// any divergence returns `Ok(false)`, as do output-file failures and a
/// missed `--check-speedup` gate.
#[allow(clippy::too_many_arguments)]
fn run_scale_cmd(
    scales: &[f64],
    jobs_list: &[usize],
    shards: sdds_runtime::ShardPolicy,
    epoch_us: Option<u64>,
    repeat: usize,
    baseline: bool,
    out: Option<&std::path::Path>,
    digest_out: Option<&std::path::Path>,
    check_speedup: Option<f64>,
) -> Result<bool, SddsError> {
    use sdds_runtime::ShardPolicy;
    use simkit::SimDuration;

    let epoch = epoch_us.map(SimDuration::from_micros);
    println!(
        "Sharded scene throughput (best of {repeat} runs per point, shards={})",
        match shards {
            ShardPolicy::Auto => "auto".to_owned(),
            ShardPolicy::Fixed(n) => n.to_string(),
        }
    );
    println!(
        "{:<8} {:>5} {:>7} {:>11} {:>10} {:>8} {:>9} {:>13} {:>9}",
        "scale",
        "jobs",
        "shards",
        "components",
        "events",
        "epochs",
        "seconds",
        "events/sec",
        "speedup"
    );

    let mut points: Vec<ScalePoint> = Vec::new();
    let mut baselines: Vec<ScalePoint> = Vec::new();
    let mut digests: Vec<(f64, String)> = Vec::new();
    let mut ok = true;

    for &scale in scales {
        let cfg = sdds::ScaleSceneConfig {
            factor: scale,
            shards,
            epoch,
        };
        let base_eps = if baseline {
            let bcfg = sdds::ScaleSceneConfig {
                shards: ShardPolicy::Fixed(1),
                ..cfg
            };
            let (r, secs) = time_scale_point(&bcfg, 1, repeat)?;
            let eps = r.events as f64 / secs.max(1e-9);
            println!(
                "{scale:<8.2} {:>5} {:>7} {:>11} {:>10} {:>8} {secs:>9.3} {eps:>13.0} {:>9}",
                1, 1, r.components, r.events, r.epochs, "1.00x"
            );
            baselines.push(ScalePoint {
                scale,
                jobs: 1,
                shards: 1,
                components: r.components,
                events: r.events,
                epochs: r.epochs,
                seconds: secs,
                events_per_sec: eps,
                speedup: None,
            });
            Some(eps)
        } else {
            None
        };

        let mut scale_digest: Option<String> = None;
        for &jobs in jobs_list {
            let (r, secs) = time_scale_point(&cfg, jobs, repeat)?;
            let digest = r.digest();
            match &scale_digest {
                Some(reference) if *reference != digest => {
                    eprintln!(
                        "repro: scale {scale} digest DIVERGED at jobs={jobs}:\n  want {reference}\n  got  {digest}"
                    );
                    ok = false;
                }
                Some(_) => {}
                None => scale_digest = Some(digest),
            }
            let eps = r.events as f64 / secs.max(1e-9);
            let speedup = base_eps.map(|b| eps / b.max(1e-9));
            println!(
                "{scale:<8.2} {jobs:>5} {:>7} {:>11} {:>10} {:>8} {secs:>9.3} {eps:>13.0} {:>9}",
                r.shards,
                r.components,
                r.events,
                r.epochs,
                speedup.map_or_else(|| "-".to_owned(), |s| format!("{s:.2}x")),
            );
            points.push(ScalePoint {
                scale,
                jobs,
                shards: r.shards,
                components: r.components,
                events: r.events,
                epochs: r.epochs,
                seconds: secs,
                events_per_sec: eps,
                speedup,
            });
        }
        if let Some(d) = scale_digest {
            digests.push((scale, d));
        }
    }

    if let Some(path) = out {
        let point_json = |p: &ScalePoint| {
            format!(
                "    {{\"scale\": {:.3}, \"jobs\": {}, \"shards\": {}, \"components\": {}, \
                 \"events\": {}, \"epochs\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.1}{}}}",
                p.scale,
                p.jobs,
                p.shards,
                p.components,
                p.events,
                p.epochs,
                p.seconds,
                p.events_per_sec,
                p.speedup.map_or_else(String::new, |s| format!(
                    ", \"speedup_vs_single_shard\": {s:.2}"
                ))
            )
        };
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema\": \"sdds-scale-v1\",\n");
        json.push_str(&format!("  \"repeat\": {repeat},\n"));
        json.push_str(&format!(
            "  \"epoch_us\": {},\n",
            epoch_us.map_or_else(|| "\"auto\"".to_owned(), |e| e.to_string())
        ));
        json.push_str(&format!(
            "  \"shards\": {},\n",
            match shards {
                ShardPolicy::Auto => "\"auto\"".to_owned(),
                ShardPolicy::Fixed(n) => n.to_string(),
            }
        ));
        json.push_str("  \"baselines\": [\n");
        let lines: Vec<String> = baselines.iter().map(point_json).collect();
        json.push_str(&lines.join(",\n"));
        json.push_str("\n  ],\n");
        json.push_str("  \"points\": [\n");
        let lines: Vec<String> = points.iter().map(point_json).collect();
        json.push_str(&lines.join(",\n"));
        json.push_str("\n  ]\n}\n");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            return Ok(false);
        }
        eprintln!("[wrote {}]", path.display());
    }

    if let Some(path) = digest_out {
        let mut text = String::new();
        for (_, d) in &digests {
            text.push_str(d);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            return Ok(false);
        }
        eprintln!(
            "[wrote {} ({} digest lines)]",
            path.display(),
            digests.len()
        );
    }

    if let Some(required) = check_speedup {
        let largest = scales.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let best = points
            .iter()
            .filter(|p| p.scale == largest)
            .filter_map(|p| p.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        if !best.is_finite() {
            eprintln!(
                "repro: --check-speedup needs the single-shard baseline (drop --no-baseline)"
            );
            return Ok(false);
        }
        println!("speedup gate at scale {largest}: best {best:.2}x, required {required:.2}x");
        if best < required {
            eprintln!(
                "repro: best speedup {best:.2}x at scale {largest} is below the required {required:.2}x"
            );
            return Ok(false);
        }
    }

    if !ok {
        eprintln!("repro: scale digests diverged across worker counts (determinism bug)");
    }
    Ok(ok)
}

/// Extracts the total `events_per_sec` from a `--out` JSON document: the
/// number following the `"events_per_sec"` key on the `"total"` line. The
/// format is our own single-line-per-object emission, so a string scan is
/// sufficient — no JSON parser needed.
fn baseline_total_eps(text: &str) -> Option<f64> {
    scan_line_number(text, "\"total\"", "\"events_per_sec\":")
}

/// Extracts the kernel microbenchmark throughput from a `--out` JSON
/// document; `None` for baselines that predate the kernel benchmark.
fn baseline_kernel_ops(text: &str) -> Option<f64> {
    scan_line_number(text, "\"kernel\"", "\"ops_per_sec\":")
}

/// Extracts one named cell's `events_per_sec` from a `--out` JSON
/// document; `None` when the baseline lacks that cell.
fn baseline_cell_eps(text: &str, name: &str) -> Option<f64> {
    scan_line_number(
        text,
        &format!("\"name\": \"{name}\""),
        "\"events_per_sec\":",
    )
}

/// Finds the line containing `line_key` and parses the number following
/// `field_key` on it.
fn scan_line_number(text: &str, line_key: &str, field_key: &str) -> Option<f64> {
    let line = text.lines().find(|l| l.contains(line_key))?;
    let rest = &line[line.find(field_key)? + field_key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Writes a telemetry report's event stream next to `path`: the JSONL
/// stream at `path` itself and the Chrome `trace_event` rendering at
/// `path` with its extension replaced by `.chrome.json`. Returns `false`
/// (after printing the error) when either file cannot be written.
fn write_trace_files(t: &sdds::TelemetryReport, path: &std::path::Path) -> bool {
    if let Err(e) = std::fs::write(path, t.jsonl()) {
        eprintln!("repro: cannot write {}: {e}", path.display());
        return false;
    }
    eprintln!("[wrote {} ({} events)]", path.display(), t.events.len());
    let chrome = path.with_extension("chrome.json");
    if let Err(e) = std::fs::write(&chrome, t.chrome_trace()) {
        eprintln!("repro: cannot write {}: {e}", chrome.display());
        return false;
    }
    eprintln!("[wrote {} (open in chrome://tracing)]", chrome.display());
    true
}

/// Runs one telemetry-enabled cell (the first `--apps` entry, scheme on)
/// and renders the per-disk time-in-state / energy-by-state table, hard-
/// checking that the table reconciles with the run's total energy to
/// 1e-9 J. Optionally exports the trace and metrics. Returns `Ok(false)`
/// when the reconciliation check fails or an output cannot be written.
fn run_trace_cmd(
    base: &SystemConfig,
    apps: &[App],
    trace_out: Option<&std::path::Path>,
    metrics_out: Option<&std::path::Path>,
) -> Result<bool, SddsError> {
    let app = apps.first().copied().unwrap_or(App::Sar);
    let cfg = base.with_scheme(true).with_telemetry(true);
    println!(
        "Traced run: {} under `{}` + scheme",
        app.name(),
        cfg.policy.name()
    );
    let o = sdds::run(app, &cfg)?;
    let result = &o.result;
    let Some(t) = result.telemetry.as_ref() else {
        eprintln!("repro: telemetry was enabled but no report came back");
        return Ok(false);
    };

    println!(
        "{} trace events, {} metrics; exec {:.2} s, energy {:.2} J\n",
        t.events.len(),
        t.metrics.len(),
        result.exec_time.as_secs_f64(),
        result.energy_joules
    );
    println!(
        "{:>4} {:>4}  {:<12} {:>12} {:>14}",
        "node", "disk", "state", "time (s)", "energy (J)"
    );
    for d in &t.disks {
        for (i, (state, secs, joules)) in d.states.iter().enumerate() {
            let (n, k) = if i == 0 {
                (d.node.to_string(), d.disk.to_string())
            } else {
                (String::new(), String::new())
            };
            println!("{n:>4} {k:>4}  {state:<12} {secs:>12.3} {joules:>14.3}");
        }
        println!(
            "{:>4} {:>4}  {:<12} {:>12} {:>14.3}   \
             {} spin-ups, {} spin-downs, {} rpm changes, {} requests",
            "",
            "",
            "total",
            "",
            d.total_joules,
            d.counters.spin_ups,
            d.counters.spin_downs,
            d.counters.rpm_changes,
            d.counters.requests_served
        );
    }
    let table_sum = t.summary_joules();
    let delta = (table_sum - result.energy_joules).abs();
    println!(
        "\nenergy reconciliation: table {table_sum:.6} J vs run {:.6} J (|delta| = {delta:.3e} J)",
        result.energy_joules
    );
    if delta >= 1e-9 {
        eprintln!("repro: per-disk energy table does not reconcile with the run's energy");
        return Ok(false);
    }

    if let Some(path) = trace_out {
        if !write_trace_files(t, path) {
            return Ok(false);
        }
    }
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(path, t.metrics.to_json()) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            return Ok(false);
        }
        eprintln!("[wrote {}]", path.display());
    }
    Ok(true)
}

/// One cell of the attribution matrix: everything `repro attrib`
/// reconciles and reports for one (app, policy, scheme) run.
struct AttribCell {
    app: &'static str,
    policy: &'static str,
    scheme: bool,
    energy_j: f64,
    cells_sum_j: f64,
    reconciliation_delta_j: f64,
    /// Aggregated `(state, seconds, joules)` across every disk, in
    /// sorted-label order.
    states: Vec<(&'static str, f64, f64)>,
    requests: u64,
    response_us: u64,
    queue_us: u64,
    spin_up_us: u64,
    wait_us: u64,
    service_us: u64,
    recovery_requests: u64,
    recovery_response_us: u64,
    accesses: u64,
    unparented: u64,
    span_energy_nj: u64,
    decisions: u64,
    by_action: std::collections::BTreeMap<&'static str, u64>,
    by_mode: std::collections::BTreeMap<&'static str, u64>,
    idle_windows: u64,
    idle_us: u64,
    regret_j: f64,
    faults_injected: u64,
    faults_recovered: u64,
}

/// Sums the offline oracle's cost and the policy's realized cost over
/// one completed idle window, returning the window's regret in joules
/// (per disk; the caller scales by the node's disk count).
///
/// The oracle knows the window length exactly and picks the cheapest of
/// staying at full speed, dwelling at the best lower RPM level, or
/// spinning down to standby — each required to end the window at full
/// speed. The realized cost charges the action the policy actually took
/// (`"none"`, `"spin-down"` or `"speed-change"`), approximating a speed
/// change with the oracle's best level and assuming the window starts at
/// full speed; both approximations are documented in DESIGN.md §16.
fn window_regret(
    params: &sdds_disk::DiskParams,
    model: &sdds_disk::SpindlePowerModel,
    idle_us: u64,
    action: &str,
) -> f64 {
    use sdds_power::analysis::{best_level, level_energy, standby_energy, stay_energy};
    use simkit::SimDuration;
    let idle = SimDuration::from_micros(idle_us);
    let full = params.max_rpm;
    let stay = stay_energy(params, model, full, idle);
    let best = best_level(params, model, full, idle);
    let level = if best != full {
        level_energy(params, model, full, best, idle)
    } else {
        None
    };
    let standby = standby_energy(params, model, idle);
    let oracle = stay
        .min(level.unwrap_or(f64::INFINITY))
        .min(standby.unwrap_or(f64::INFINITY));
    let actual = match action {
        "spin-down" => standby.unwrap_or(stay),
        "speed-change" => level.unwrap_or(stay),
        _ => stay,
    };
    (actual - oracle).max(0.0)
}

/// Runs the app × strategy × scheme matrix with telemetry on and builds
/// the deterministic attribution report (`sdds-attrib-v1`): per-disk /
/// per-power-state energy reconciled against the headline joules at
/// 1e-9, exact latency critical-path decomposition (queue = spin-up +
/// wait, response = queue + service), policy-decision counts with
/// learner-state snapshots, regret against the offline idle-window
/// oracle, and per-shard/per-epoch barrier-stall accounting from an
/// observed sharded scene run. Returns `Ok(false)` when any
/// reconciliation or identity fails, or an output cannot be written.
fn run_attrib(
    base: &SystemConfig,
    apps: &[App],
    scenario: Option<&str>,
    seed: u64,
    scene_scale: f64,
    shards: sdds_runtime::ShardPolicy,
    out: Option<&std::path::Path>,
) -> Result<bool, SddsError> {
    use simkit::span::{decompose, SpanForest};
    use simkit::telemetry::TraceEvent;

    let fault = match scenario {
        Some(name) => match simkit::fault::FaultSpec::scenario(name, seed) {
            Some(spec) => Some(spec),
            None => fail(&format!(
                "unknown fault scenario `{name}` (known: light, heavy)"
            )),
        },
        None => None,
    };
    let model = match sdds_disk::SpindlePowerModel::new(&base.disk) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("repro: disk parameters reject a power model: {e}");
            return Ok(false);
        }
    };

    println!(
        "Deterministic attribution matrix ({} apps x 4 strategies x 2 schemes{})",
        apps.len(),
        scenario.map_or_else(String::new, |s| format!(", faults `{s}` seed {seed}"))
    );
    println!(
        "{:<24} {:>11} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "cell",
        "energy (J)",
        "delta (J)",
        "reqs",
        "queue%",
        "spinup%",
        "svc%",
        "decisions",
        "regret (J)"
    );

    let mut ok = true;
    let mut cells: Vec<AttribCell> = Vec::new();
    for &app in apps {
        for kind in sdds_power::PolicyKind::paper_strategies() {
            for scheme in [false, true] {
                let cfg = base
                    .with_policy(kind.clone())
                    .with_scheme(scheme)
                    .with_telemetry(true)
                    .with_fault(fault.clone());
                let o = sdds::run(app, &cfg)?;
                let result = &o.result;
                let Some(t) = result.telemetry.as_ref() else {
                    eprintln!("repro: telemetry was enabled but no report came back");
                    return Ok(false);
                };

                // Energy attribution: per-disk per-state cells must sum
                // to the headline joules. Each disk's states are summed
                // in sorted-label order (the same order its meter totals
                // them), then disks in (node, disk) order — the exact
                // accumulation sequence of the headline figure.
                let mut cells_sum = 0.0;
                let mut states: std::collections::BTreeMap<&'static str, (f64, f64)> =
                    std::collections::BTreeMap::new();
                for d in &t.disks {
                    let mut disk_sum = 0.0;
                    for &(state, secs, joules) in &d.states {
                        disk_sum += joules;
                        let e = states.entry(state).or_insert((0.0, 0.0));
                        e.0 += secs;
                        e.1 += joules;
                    }
                    cells_sum += disk_sum;
                }
                let delta = (cells_sum - result.energy_joules).abs();
                if delta >= 1e-9 {
                    eprintln!(
                        "repro: {}/{}/scheme={scheme}: energy cells sum {cells_sum:.9} J \
                         but the run reports {:.9} J (|delta| = {delta:.3e})",
                        app.name(),
                        kind.name(),
                        result.energy_joules
                    );
                    ok = false;
                }

                // Latency critical path: every request's decomposition
                // must reassemble exactly (integer microseconds).
                let lats = decompose(&t.events);
                let mut cell = AttribCell {
                    app: app.name(),
                    policy: kind.name(),
                    scheme,
                    energy_j: result.energy_joules,
                    cells_sum_j: cells_sum,
                    reconciliation_delta_j: delta,
                    states: states
                        .into_iter()
                        .map(|(s, (secs, j))| (s, secs, j))
                        .collect(),
                    requests: 0,
                    response_us: 0,
                    queue_us: 0,
                    spin_up_us: 0,
                    wait_us: 0,
                    service_us: 0,
                    recovery_requests: 0,
                    recovery_response_us: 0,
                    accesses: 0,
                    unparented: 0,
                    span_energy_nj: 0,
                    decisions: 0,
                    by_action: std::collections::BTreeMap::new(),
                    by_mode: std::collections::BTreeMap::new(),
                    idle_windows: 0,
                    idle_us: 0,
                    regret_j: 0.0,
                    faults_injected: result.faults.total_injected(),
                    faults_recovered: result.faults.retried
                        + result.faults.remapped
                        + result.faults.reconstructed
                        + result.faults.redirected,
                };
                for l in &lats {
                    if l.response_us != l.queue_us + l.service_us
                        || l.queue_us != l.spin_up_us + l.wait_us
                    {
                        eprintln!(
                            "repro: {}/{}/scheme={scheme}: request ({}, {}, {}) latency does \
                             not decompose exactly: response {} != queue {} + service {} \
                             (queue = spin-up {} + wait {})",
                            app.name(),
                            kind.name(),
                            l.node,
                            l.disk,
                            l.id,
                            l.response_us,
                            l.queue_us,
                            l.service_us,
                            l.spin_up_us,
                            l.wait_us
                        );
                        ok = false;
                    }
                    cell.requests += 1;
                    cell.response_us += l.response_us;
                    cell.queue_us += l.queue_us;
                    cell.spin_up_us += l.spin_up_us;
                    cell.wait_us += l.wait_us;
                    cell.service_us += l.service_us;
                    if l.recovery {
                        cell.recovery_requests += 1;
                        cell.recovery_response_us += l.response_us;
                    }
                }

                // Causal span forest: access-rooted request trees.
                let forest = SpanForest::build(&t.events);
                cell.accesses = forest.accesses.len() as u64;
                cell.unparented = forest
                    .requests
                    .iter()
                    .filter(|r| r.access.is_none())
                    .count() as u64;
                cell.span_energy_nj = forest.total_energy_nj();

                // Policy decisions (with learner snapshots) and the
                // idle-window regret against the offline oracle.
                for e in &t.events {
                    match e {
                        TraceEvent::PolicyDecision { action, mode, .. } => {
                            cell.decisions += 1;
                            *cell.by_action.entry(*action).or_insert(0) += 1;
                            if let Some(m) = *mode {
                                *cell.by_mode.entry(m).or_insert(0) += 1;
                            }
                        }
                        TraceEvent::NodeIdle {
                            idle_us, action, ..
                        } => {
                            cell.idle_windows += 1;
                            cell.idle_us += idle_us;
                            cell.regret_j += window_regret(&base.disk, &model, *idle_us, action)
                                * base.disks_per_node as f64;
                        }
                        _ => {}
                    }
                }

                let pfrac = |part: u64| {
                    if cell.response_us == 0 {
                        0.0
                    } else {
                        100.0 * part as f64 / cell.response_us as f64
                    }
                };
                println!(
                    "{:<24} {:>11.2} {:>10.1e} {:>8} {:>8.1} {:>8.1} {:>8.1} {:>9} {:>10.3}",
                    format!(
                        "{}/{}{}",
                        cell.app,
                        cell.policy,
                        if scheme { "+scheme" } else { "" }
                    ),
                    cell.energy_j,
                    cell.reconciliation_delta_j,
                    cell.requests,
                    pfrac(cell.queue_us),
                    pfrac(cell.spin_up_us),
                    pfrac(cell.service_us),
                    cell.decisions,
                    cell.regret_j,
                );
                cells.push(cell);
            }
        }
    }

    // Shard-level observability: one observed sharded scene run, with
    // per-epoch barrier-stall and load-imbalance accounting.
    let scene_cfg = sdds::ScaleSceneConfig {
        factor: scene_scale,
        shards,
        epoch: None,
    };
    let (scene, obs) = sdds::run_scale_observed(&scene_cfg, 2)?;
    let observed_events: u64 = obs.iter().map(|o| o.events.len() as u64).sum();
    if observed_events != scene.events {
        eprintln!(
            "repro: shard observer saw {observed_events} events but the kernel reports {}",
            scene.events
        );
        ok = false;
    }
    let imbalance = simkit::shard::epoch_imbalance(&obs);
    let stall_events: u64 = imbalance.iter().map(|e| e.stall_events).sum();
    let max_epoch_stall = imbalance.iter().map(|e| e.stall_events).max().unwrap_or(0);
    let per_shard: Vec<u64> = obs.iter().map(|o| o.events.len() as u64).collect();
    println!(
        "\nsharded scene (factor {scene_scale}): {} shards, {} epochs, {} events; \
         barrier stall {} event-slots (worst epoch {})",
        scene.shards, scene.epochs, scene.events, stall_events, max_epoch_stall
    );

    if let Some(path) = out {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema\": \"sdds-attrib-v1\",\n");
        json.push_str(&format!(
            "  \"scenario\": {},\n",
            scenario.map_or_else(|| "null".to_owned(), |s| format!("\"{s}\""))
        ));
        json.push_str(&format!("  \"seed\": {seed},\n"));
        json.push_str(&format!("  \"procs\": {},\n", base.scale.procs));
        json.push_str(&format!("  \"factor\": {},\n", base.scale.factor));
        json.push_str("  \"cells\": [\n");
        let rows: Vec<String> = cells
            .iter()
            .map(|c| {
                let states: Vec<String> = c
                    .states
                    .iter()
                    .map(|(s, secs, j)| {
                        format!(
                            "{{\"state\": \"{s}\", \"seconds\": {secs:.6}, \"joules\": {j:.6}}}"
                        )
                    })
                    .collect();
                let actions: Vec<String> = c
                    .by_action
                    .iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect();
                let modes: Vec<String> = c
                    .by_mode
                    .iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect();
                format!(
                    "    {{\"app\": \"{}\", \"policy\": \"{}\", \"scheme\": {}, \
                     \"energy_j\": {:.9}, \"cells_sum_j\": {:.9}, \
                     \"reconciliation_delta_j\": {:.3e}, \"states\": [{}], \
                     \"requests\": {}, \"latency_us\": {{\"response\": {}, \"queue\": {}, \
                     \"spin_up\": {}, \"wait\": {}, \"service\": {}}}, \
                     \"recovery\": {{\"requests\": {}, \"response_us\": {}}}, \
                     \"spans\": {{\"accesses\": {}, \"unparented\": {}, \"energy_nj\": {}}}, \
                     \"decisions\": {{\"total\": {}, \"by_action\": {{{}}}, \"by_mode\": {{{}}}}}, \
                     \"idle\": {{\"windows\": {}, \"total_us\": {}, \"regret_j\": {:.6}}}, \
                     \"faults\": {{\"injected\": {}, \"recovered\": {}}}}}",
                    c.app,
                    c.policy,
                    c.scheme,
                    c.energy_j,
                    c.cells_sum_j,
                    c.reconciliation_delta_j,
                    states.join(", "),
                    c.requests,
                    c.response_us,
                    c.queue_us,
                    c.spin_up_us,
                    c.wait_us,
                    c.service_us,
                    c.recovery_requests,
                    c.recovery_response_us,
                    c.accesses,
                    c.unparented,
                    c.span_energy_nj,
                    c.decisions,
                    actions.join(", "),
                    modes.join(", "),
                    c.idle_windows,
                    c.idle_us,
                    c.regret_j,
                    c.faults_injected,
                    c.faults_recovered,
                )
            })
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  ],\n");
        let shard_rows: Vec<String> = per_shard.iter().map(u64::to_string).collect();
        json.push_str(&format!(
            "  \"scene\": {{\"factor\": {:.3}, \"shards\": {}, \"components\": {}, \
             \"epochs\": {}, \"events\": {}, \"messages\": {}, \"makespan_us\": {}, \
             \"energy_j\": {:.6}, \"stall_event_slots\": {}, \"worst_epoch_stall\": {}, \
             \"per_shard_events\": [{}]}}\n",
            scene_scale,
            scene.shards,
            scene.components,
            scene.epochs,
            scene.events,
            scene.messages,
            scene.makespan.as_micros(),
            scene.energy.total(),
            stall_events,
            max_epoch_stall,
            shard_rows.join(", "),
        ));
        json.push_str("}\n");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            return Ok(false);
        }
        eprintln!("[wrote {}]", path.display());
    }

    if !ok {
        eprintln!("repro: attribution failed to reconcile (see above)");
    }
    Ok(ok)
}

/// Runs every selected app under a fault scenario and its fault-free
/// twin, printing a recovery table and optionally writing the
/// byte-deterministic `sdds-faults-v1` JSON report. Returns `Ok(false)`
/// when any app's `bytes_moved` diverges from its twin (recovery lost or
/// duplicated data) or the report cannot be written.
fn run_faults(
    base: &SystemConfig,
    apps: &[App],
    scenario: &str,
    seed: u64,
    out: Option<&std::path::Path>,
) -> Result<bool, SddsError> {
    let Some(spec) = simkit::fault::FaultSpec::scenario(scenario, seed) else {
        fail(&format!(
            "unknown fault scenario `{scenario}` (known: light, heavy)"
        ));
    };
    let clean_cfg = base.with_scheme(true);
    let faulty_cfg = clean_cfg.with_fault(Some(spec));
    println!(
        "Fault scenario `{scenario}` (seed {seed}) under `{}` + scheme",
        base.policy.name()
    );
    println!(
        "{:<11} {:>9} {:>8} {:>8} {:>12} {:>10} {:>9} {:>14} {:>7}",
        "app",
        "injected",
        "retried",
        "remapped",
        "reconstructed",
        "redirected",
        "deferred",
        "energy dJ",
        "parity"
    );
    let mut rows: Vec<String> = Vec::new();
    let mut total = simkit::fault::FaultCounters::default();
    let mut total_delta = 0.0;
    let mut parity_ok = true;
    for &app in apps {
        let clean = sdds::run(app, &clean_cfg)?;
        let faulty = sdds::run(app, &faulty_cfg)?;
        let parity = clean.result.bytes_moved == faulty.result.bytes_moved;
        parity_ok &= parity;
        let f = faulty.result.faults;
        let delta = faulty.result.energy_joules - clean.result.energy_joules;
        total.merge(&f);
        total_delta += delta;
        println!(
            "{:<11} {:>9} {:>8} {:>8} {:>12} {:>10} {:>9} {:>14.3} {:>7}",
            app.name(),
            f.total_injected(),
            f.retried,
            f.remapped,
            f.reconstructed,
            f.redirected,
            f.deferred,
            delta,
            if parity { "ok" } else { "FAIL" }
        );
        rows.push(format!(
            "    {{\"name\": \"{}\", \"bytes_read\": {}, \"bytes_written\": {}, \
             \"parity\": {}, \"exec_seconds\": {:.6}, \"energy_joules\": {:.6}, \
             \"fault_free_joules\": {:.6}, \"energy_delta_joules\": {:.6}, \
             \"faults\": {{\"injected_transient\": {}, \"injected_bad_sector\": {}, \
             \"retried\": {}, \"remapped\": {}, \"reconstructed\": {}, \
             \"redirected\": {}, \"deferred\": {}}}}}",
            app.name(),
            faulty.result.bytes_moved.0,
            faulty.result.bytes_moved.1,
            parity,
            faulty.result.exec_time.as_secs_f64(),
            faulty.result.energy_joules,
            clean.result.energy_joules,
            delta,
            f.injected_transient,
            f.injected_bad_sector,
            f.retried,
            f.remapped,
            f.reconstructed,
            f.redirected,
            f.deferred,
        ));
    }
    println!(
        "{:<11} {:>9} {:>8} {:>8} {:>12} {:>10} {:>9} {:>14.3} {:>7}",
        "TOTAL",
        total.total_injected(),
        total.retried,
        total.remapped,
        total.reconstructed,
        total.redirected,
        total.deferred,
        total_delta,
        if parity_ok { "ok" } else { "FAIL" }
    );

    if let Some(path) = out {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema\": \"sdds-faults-v1\",\n");
        json.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
        json.push_str(&format!("  \"seed\": {seed},\n"));
        json.push_str(&format!("  \"policy\": \"{}\",\n", base.policy.name()));
        json.push_str(&format!("  \"procs\": {},\n", base.scale.procs));
        json.push_str("  \"apps\": [\n");
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  ],\n");
        json.push_str(&format!(
            "  \"total\": {{\"injected\": {}, \"retried\": {}, \"remapped\": {}, \
             \"reconstructed\": {}, \"redirected\": {}, \"deferred\": {}, \
             \"energy_delta_joules\": {total_delta:.6}, \"parity\": {parity_ok}}}\n",
            total.total_injected(),
            total.retried,
            total.remapped,
            total.reconstructed,
            total.redirected,
            total.deferred,
        ));
        json.push_str("}\n");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            return Ok(false);
        }
        eprintln!("[wrote {}]", path.display());
    }

    if !parity_ok {
        eprintln!("repro: bytes_moved diverged from the fault-free twin — recovery lost data");
        return Ok(false);
    }
    Ok(true)
}

/// One measured (scene, mode) cell of the `online` experiment.
struct OnlineCell {
    mode: sdds::OnlineMode,
    policy: String,
    energy_j: f64,
    mean_read_response_s: f64,
    exec_s: f64,
    events: u64,
    bytes_read: u64,
    bytes_written: u64,
}

/// Picks the energy/latency frontier: cells no other cell beats on both
/// energy and mean read response (with at least one strict improvement).
fn online_frontier(cells: &[OnlineCell]) -> Vec<&'static str> {
    cells
        .iter()
        .filter(|c| {
            !cells.iter().any(|o| {
                o.energy_j <= c.energy_j
                    && o.mean_read_response_s <= c.mean_read_response_s
                    && (o.energy_j < c.energy_j || o.mean_read_response_s < c.mean_read_response_s)
            })
        })
        .map(|c| c.mode.name())
        .collect()
}

/// Compares the compile-time, online and hybrid decision layers on keyed
/// workloads the compiler cannot characterize from loop bounds, printing
/// an energy/latency table per scene and the resulting frontier.
/// Optionally writes the byte-deterministic `sdds-online-v1` JSON report.
/// Returns `Ok(false)` when the report cannot be written.
fn run_online(
    base: &SystemConfig,
    scenes: &[String],
    modes: &[sdds::OnlineMode],
    seed: u64,
    out: Option<&std::path::Path>,
) -> Result<bool, SddsError> {
    use sdds_compiler::SlotGranularity;
    use sdds_workloads::KeyedWorkloadSpec;

    println!("Decision-layer comparison on keyed workloads (seed {seed})");
    let mut scene_rows: Vec<String> = Vec::new();
    for scene in scenes {
        let spec = match scene.as_str() {
            "zipfian" => KeyedWorkloadSpec::zipfian_hot_set(seed),
            "diurnal" => KeyedWorkloadSpec::diurnal(seed),
            other => fail(&format!(
                "unknown scene `{other}` (known: zipfian, diurnal)"
            )),
        };
        let trace =
            spec.program()
                .trace(SlotGranularity::unit())
                .map_err(|e| SddsError::Compile {
                    app: scene.clone(),
                    source: sdds::error::CompileError::from(e),
                })?;
        println!(
            "\nscene `{scene}`: {} procs x {} ops, {} keys",
            spec.procs, spec.ops_per_proc, spec.keys
        );
        println!(
            "{:<8} {:<16} {:>12} {:>14} {:>10} {:>9}",
            "mode", "policy", "energy (J)", "read resp (s)", "exec (s)", "events"
        );
        let mut cells: Vec<OnlineCell> = Vec::new();
        for &mode in modes {
            let o = sdds::run_mode(&trace, base, mode, seed)?;
            let policy = match mode {
                sdds::OnlineMode::Table => "table-lookup",
                sdds::OnlineMode::Online => "online-speed",
                sdds::OnlineMode::Hybrid => "hybrid",
            };
            let cell = OnlineCell {
                mode,
                policy: policy.to_owned(),
                energy_j: o.result.energy_joules,
                mean_read_response_s: o.result.mean_read_response,
                exec_s: o.result.exec_time.as_secs_f64(),
                events: o.result.events,
                bytes_read: o.result.bytes_moved.0,
                bytes_written: o.result.bytes_moved.1,
            };
            println!(
                "{:<8} {:<16} {:>12.1} {:>14.6} {:>10.1} {:>9}",
                cell.mode.name(),
                cell.policy,
                cell.energy_j,
                cell.mean_read_response_s,
                cell.exec_s,
                cell.events
            );
            cells.push(cell);
        }
        let frontier = online_frontier(&cells);
        println!("frontier (energy x latency): {}", frontier.join(", "));

        let cell_json: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "      {{\"mode\": \"{}\", \"policy\": \"{}\", \"energy_j\": {:.6}, \
                     \"mean_read_response_s\": {:.6}, \"exec_s\": {:.6}, \"events\": {}, \
                     \"bytes_read\": {}, \"bytes_written\": {}}}",
                    c.mode.name(),
                    c.policy,
                    c.energy_j,
                    c.mean_read_response_s,
                    c.exec_s,
                    c.events,
                    c.bytes_read,
                    c.bytes_written
                )
            })
            .collect();
        let frontier_json: Vec<String> = frontier.iter().map(|m| format!("\"{m}\"")).collect();
        scene_rows.push(format!(
            "    {{\"scene\": \"{scene}\", \"procs\": {}, \"ops_per_proc\": {}, \
             \"keys\": {}, \"cells\": [\n{}\n    ], \"frontier\": [{}]}}",
            spec.procs,
            spec.ops_per_proc,
            spec.keys,
            cell_json.join(",\n"),
            frontier_json.join(", ")
        ));
    }

    if let Some(path) = out {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema\": \"sdds-online-v1\",\n");
        json.push_str(&format!("  \"seed\": {seed},\n"));
        json.push_str("  \"scenes\": [\n");
        json.push_str(&scene_rows.join(",\n"));
        json.push_str("\n  ]\n}\n");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            return Ok(false);
        }
        eprintln!("[wrote {}]", path.display());
    }
    Ok(true)
}

/// Runs every (app, scheme) cell once under Deterministic arbitration and
/// once per SeededShuffle seed, checking that the physical invariants are
/// identical across all of them: arbitration only permutes same-instant
/// events, so it may move *when* work happens but never *what* work is
/// done. Bytes moved and the process-finish count must match the
/// Deterministic baseline for every seed; timing-derived metrics (exec
/// time, energy, hit rates) are allowed to differ. Returns `Ok(false)`
/// when any seed diverges.
fn run_fuzz(base: &SystemConfig, apps: &[App], seeds: u64) -> Result<bool, SddsError> {
    use simkit::kernel::ArbitrationPolicy;
    println!(
        "Arbitration fuzz under `{}`: Deterministic baseline vs {seeds} SeededShuffle seeds",
        base.policy.name()
    );
    println!(
        "{:<20} {:>14} {:>14} {:>6} {:>8}",
        "cell", "bytes_read", "bytes_written", "procs", "verdict"
    );
    let mut all_ok = true;
    for &app in apps {
        for scheme in [false, true] {
            let cfg = base
                .with_scheme(scheme)
                .with_arbitration(ArbitrationPolicy::Deterministic);
            let name = if scheme {
                format!("{}+scheme", app.name())
            } else {
                app.name().to_owned()
            };
            let det = sdds::run(app, &cfg)?.result;
            let baseline = (det.bytes_moved, det.per_proc_finish.len());
            let mut cell_ok = true;
            for k in 0..seeds {
                // The seed values themselves are arbitrary (SplitMix64
                // scrambles them); only their count and distinctness matter.
                let seed = 0x5EED_0000 + k;
                let shuffled = cfg.with_arbitration(ArbitrationPolicy::SeededShuffle(seed));
                let r = sdds::run(app, &shuffled)?.result;
                let got = (r.bytes_moved, r.per_proc_finish.len());
                if got != baseline {
                    cell_ok = false;
                    eprintln!(
                        "repro: seed {seed:#x} diverged on {name}: bytes ({}, {}) vs \
                         ({}, {}), procs {} vs {}",
                        got.0 .0, got.0 .1, baseline.0 .0, baseline.0 .1, got.1, baseline.1
                    );
                }
            }
            println!(
                "{name:<20} {:>14} {:>14} {:>6} {:>8}",
                baseline.0 .0,
                baseline.0 .1,
                baseline.1,
                if cell_ok { "ok" } else { "FAIL" }
            );
            all_ok &= cell_ok;
        }
    }
    if !all_ok {
        eprintln!(
            "repro: an invariant metric depends on same-instant event order — \
             the simulation is not arbitration-independent"
        );
        return Ok(false);
    }
    Ok(true)
}

/// One twin's JSON fragment of the `sdds-rebuild-v1` report.
fn rebuild_twin_json(
    name: &str,
    params: &sdds_runtime::RebuildParams,
    r: &RebuildResult,
) -> String {
    format!(
        "    {{\"name\": \"{name}\", \"routing\": {}, \"failure\": {}, \
         \"reads\": {}, \"writes\": {}, \"bytes_read\": {}, \"bytes_written\": {}, \
         \"read_p50_us\": {}, \"read_p99_us\": {}, \"read_p999_us\": {}, \
         \"queue_us\": {}, \"spin_up_wait_us\": {}, \"service_us\": {}, \
         \"crash_wait_us\": {}, \"response_us\": {}, \"transient_retries\": {}, \
         \"deferred\": {}, \"routed_skips\": {}, \"failed_disk\": {}, \
         \"spare_disk\": {}, \"rebuild_bytes\": {}, \"rebuild_chunks\": {}, \
         \"rebuild_skipped_ticks\": {}, \"rebuild_done_us\": {}, \
         \"energy\": {{\"active_j\": {:.6}, \"idle_j\": {:.6}, \"standby_j\": {:.6}, \
         \"spin_up_j\": {:.6}, \"total_j\": {:.6}, \"foreground_active_j\": {:.6}, \
         \"rebuild_active_j\": {:.6}}}, \"spin_downs\": {}, \"spin_ups\": {}, \
         \"route_digest\": \"{:016x}\", \"end_us\": {}}}",
        params.routing,
        params.inject_failure,
        r.reads,
        r.writes,
        r.bytes_read,
        r.bytes_written,
        r.read_p50_us,
        r.read_p99_us,
        r.read_p999_us,
        r.queue_us,
        r.spin_up_wait_us,
        r.service_us,
        r.crash_wait_us,
        r.response_us,
        r.transient_retries,
        r.deferred,
        r.routed_skips,
        r.failed_disk
            .map_or_else(|| "null".to_owned(), |d| d.to_string()),
        r.spare_disk
            .map_or_else(|| "null".to_owned(), |d| d.to_string()),
        r.rebuild_bytes,
        r.rebuild_chunks,
        r.rebuild_skipped_ticks,
        r.rebuild_done_us
            .map_or_else(|| "null".to_owned(), |t| t.to_string()),
        r.energy.active_j,
        r.energy.idle_j,
        r.energy.standby_j,
        r.energy.spin_up_j,
        r.energy.total(),
        r.foreground_active_j,
        r.rebuild_active_j,
        r.spin_downs,
        r.spin_ups,
        r.route_digest,
        r.end_us,
    )
}

/// Runs the replicated object-store scenario as three twins (routed,
/// primary-only, fault-free), prints the comparison, writes the
/// `sdds-rebuild-v1` report, and enforces the scenario's invariants:
/// foreground byte parity with the fault-free twin, exact reconciliation
/// of the foreground/rebuild energy split, and a routed p99 read latency
/// no worse than the unrouted twin's.
fn run_rebuild_cmd(scenario: &str, seed: u64, out: Option<&std::path::Path>) -> bool {
    let Some(spec) = simkit::fault::FaultSpec::scenario(scenario, seed) else {
        fail(&format!(
            "unknown fault scenario `{scenario}` (known: light, heavy)"
        ));
    };
    let routed_params = sdds_runtime::RebuildParams::paper_default(seed, Some(spec));
    let mut unrouted_params = routed_params.clone();
    unrouted_params.routing = false;
    let mut clean_params = routed_params.clone();
    clean_params.scenario = None;
    clean_params.inject_failure = false;

    let run = |params: &sdds_runtime::RebuildParams| match run_rebuild(params, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(3);
        }
    };
    let routed = run(&routed_params);
    let unrouted = run(&unrouted_params);
    let clean = run(&clean_params);

    let geometry = &routed_params.placement;
    println!(
        "Rebuild scenario `{scenario}` (seed {seed}): {}+{} disks, {} replicas, \
         member {} fails at {:.1} s, spare {}",
        geometry.data_disks,
        geometry.spares,
        geometry.replicas,
        routed.failed_disk.map_or(-1, i64::from),
        routed_params.fail_at.as_secs_f64(),
        routed.spare_disk.map_or(-1, i64::from),
    );
    println!(
        "{:<11} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>11} {:>9}",
        "twin",
        "reads",
        "writes",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "rb MiB",
        "done s",
        "energy kJ",
        "spin u/d"
    );
    for (name, r) in [
        ("routed", &routed),
        ("unrouted", &unrouted),
        ("fault-free", &clean),
    ] {
        println!(
            "{name:<11} {:>6} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>8} {:>11.3} {:>9}",
            r.reads,
            r.writes,
            r.read_p50_us as f64 / 1e3,
            r.read_p99_us as f64 / 1e3,
            r.read_p999_us as f64 / 1e3,
            r.rebuild_bytes as f64 / (1024.0 * 1024.0),
            r.rebuild_done_us
                .map_or_else(|| "-".to_owned(), |t| format!("{:.1}", t as f64 / 1e6)),
            r.energy.total() / 1e3,
            format!("{}/{}", r.spin_ups, r.spin_downs),
        );
    }

    let parity_ok = routed.reads == clean.reads
        && routed.writes == clean.writes
        && routed.bytes_read == clean.bytes_read
        && routed.bytes_written == clean.bytes_written
        && unrouted.bytes_read == clean.bytes_read
        && unrouted.bytes_written == clean.bytes_written
        && routed.rebuild_done_us.is_some()
        && unrouted.rebuild_done_us.is_some();
    let energy_ok = [&routed, &unrouted, &clean]
        .iter()
        .all(|r| (r.foreground_active_j + r.rebuild_active_j - r.energy.active_j).abs() <= 1e-9);
    let p99_ok = routed.read_p99_us < unrouted.read_p99_us;
    let speedup = unrouted.read_p99_us as f64 / (routed.read_p99_us as f64).max(1.0);
    println!(
        "routing p99 speedup {speedup:.2}x; parity {}; energy split {} \
         (fg {:.1} J + rb {:.1} J)",
        if parity_ok { "ok" } else { "FAIL" },
        if energy_ok { "reconciled" } else { "FAIL" },
        routed.foreground_active_j,
        routed.rebuild_active_j,
    );

    if let Some(path) = out {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema\": \"sdds-rebuild-v1\",\n");
        json.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
        json.push_str(&format!("  \"seed\": {seed},\n"));
        json.push_str(&format!(
            "  \"geometry\": {{\"data_disks\": {}, \"spares\": {}, \"replicas\": {}, \
             \"chunk_kib\": {}, \"rebuild_period_us\": {}, \"fail_at_us\": {}}},\n",
            geometry.data_disks,
            geometry.spares,
            geometry.replicas,
            routed_params.chunk_kib,
            routed_params.rebuild_period.as_micros(),
            routed_params.fail_at.as_micros(),
        ));
        json.push_str("  \"twins\": [\n");
        json.push_str(
            &[
                rebuild_twin_json("routed", &routed_params, &routed),
                rebuild_twin_json("unrouted", &unrouted_params, &unrouted),
                rebuild_twin_json("fault_free", &clean_params, &clean),
            ]
            .join(",\n"),
        );
        json.push_str("\n  ],\n");
        json.push_str(&format!(
            "  \"checks\": {{\"bytes_parity\": {parity_ok}, \"energy_reconciled\": {energy_ok}, \
             \"p99_improved\": {p99_ok}, \"p99_speedup\": {speedup:.6}}}\n"
        ));
        json.push_str("}\n");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            return false;
        }
        eprintln!("[wrote {}]", path.display());
    }

    if !parity_ok {
        eprintln!(
            "repro: foreground traffic diverged from the fault-free twin — rebuild lost data"
        );
    }
    if !energy_ok {
        eprintln!("repro: foreground + rebuild active joules do not reconcile with the headline");
    }
    if !p99_ok {
        eprintln!(
            "repro: routing failed to improve p99 ({} us routed vs {} us unrouted)",
            routed.read_p99_us, unrouted.read_p99_us
        );
    }
    parity_ok && energy_ok && p99_ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_owned();
    let mut apps: Vec<App> = App::all().to_vec();
    let mut scale = WorkloadScale::paper();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut repeat: usize = 3;
    let mut out_path: Option<std::path::PathBuf> = None;
    let mut check_path: Option<std::path::PathBuf> = None;
    let mut tolerance: f64 = 0.30;
    let mut io_nodes: Option<usize> = None;
    let mut stripe_kb: Option<u64> = None;
    let mut cache_mb: Option<u64> = None;
    let mut buffer_mb: Option<u64> = None;
    let mut delta: Option<u32> = None;
    let mut theta: Option<u16> = None;
    let mut policy: Option<PolicyKind> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut scenario = "light".to_owned();
    let mut scenario_explicit = false;
    let mut scene_scale: f64 = 0.25;
    let mut fault_seed: u64 = 42;
    let mut fuzz_seeds: u64 = 8;
    let mut online_scenes: Vec<String> = vec!["zipfian".to_owned(), "diurnal".to_owned()];
    let mut online_modes: Vec<sdds::OnlineMode> = sdds::OnlineMode::all().to_vec();
    let mut verbose = false;
    let mut scales: Vec<f64> = vec![1.0, 10.0, 100.0];
    let mut jobs_list: Vec<usize> = vec![1, 2, 4, 8];
    let mut shards = sdds_runtime::ShardPolicy::Auto;
    let mut epoch_us: Option<u64> = None;
    let mut digest_path: Option<std::path::PathBuf> = None;
    let mut check_speedup: Option<f64> = None;
    let mut scale_baseline = true;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--repeat" => {
                repeat = parse_num(&args, i);
                if repeat == 0 {
                    fail("--repeat must be at least 1");
                }
                i += 2;
            }
            "--out" => {
                out_path = Some(std::path::PathBuf::from(operand(&args, i)));
                i += 2;
            }
            "--check" => {
                check_path = Some(std::path::PathBuf::from(operand(&args, i)));
                i += 2;
            }
            "--tolerance" => {
                tolerance = parse_num(&args, i);
                if !(0.0..1.0).contains(&tolerance) {
                    fail("--tolerance must be in [0, 1)");
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            "--apps" => {
                apps = parse_apps(operand(&args, i));
                i += 2;
            }
            "--procs" => {
                scale.procs = parse_num(&args, i);
                i += 2;
            }
            "--factor" => {
                scale.factor = parse_num(&args, i);
                i += 2;
            }
            "--gap-factor" => {
                scale.gap_factor = parse_num(&args, i);
                i += 2;
            }
            "--io-nodes" => {
                io_nodes = Some(parse_num(&args, i));
                i += 2;
            }
            "--stripe-kb" => {
                stripe_kb = Some(parse_num(&args, i));
                i += 2;
            }
            "--cache-mb" => {
                cache_mb = Some(parse_num(&args, i));
                i += 2;
            }
            "--buffer-mb" => {
                buffer_mb = Some(parse_num(&args, i));
                i += 2;
            }
            "--delta" => {
                delta = Some(parse_num(&args, i));
                i += 2;
            }
            "--theta" => {
                theta = Some(parse_num(&args, i));
                i += 2;
            }
            "--policy" => {
                policy = Some(parse_policy(operand(&args, i)));
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(std::path::PathBuf::from(operand(&args, i)));
                i += 2;
            }
            "--metrics-out" => {
                metrics_out = Some(std::path::PathBuf::from(operand(&args, i)));
                i += 2;
            }
            "--scenario" => {
                scenario = operand(&args, i).to_owned();
                scenario_explicit = true;
                i += 2;
            }
            "--scene-scale" => {
                scene_scale = parse_num(&args, i);
                if !scene_scale.is_finite() || scene_scale <= 0.0 {
                    fail("--scene-scale must be a positive number");
                }
                i += 2;
            }
            "--seed" => {
                fault_seed = parse_num(&args, i);
                i += 2;
            }
            "--seeds" => {
                fuzz_seeds = parse_num(&args, i);
                if fuzz_seeds == 0 {
                    fail("--seeds must be at least 1");
                }
                i += 2;
            }
            "--scenes" => {
                online_scenes = operand(&args, i)
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .collect();
                if online_scenes.is_empty() {
                    fail("--scenes needs at least one scene");
                }
                i += 2;
            }
            "--modes" => {
                online_modes = operand(&args, i)
                    .split(',')
                    .map(|s| {
                        sdds::OnlineMode::parse(s.trim()).unwrap_or_else(|| {
                            fail(&format!(
                                "unknown mode `{}` (known: table, online, hybrid)",
                                s.trim()
                            ))
                        })
                    })
                    .collect();
                if online_modes.is_empty() {
                    fail("--modes needs at least one mode");
                }
                i += 2;
            }
            "--verbose" => {
                verbose = true;
                i += 1;
            }
            "--scales" => {
                let raw = operand(&args, i);
                scales = raw
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail(&format!("invalid scale `{s}` in --scales")))
                    })
                    .collect();
                if scales.is_empty() {
                    fail("--scales needs at least one factor");
                }
                i += 2;
            }
            "--jobs-list" => {
                let raw = operand(&args, i);
                jobs_list = raw
                    .split(',')
                    .map(|s| {
                        let n: usize = s.trim().parse().unwrap_or_else(|_| {
                            fail(&format!("invalid worker count `{s}` in --jobs-list"))
                        });
                        if n == 0 {
                            fail("--jobs-list entries must be at least 1");
                        }
                        n
                    })
                    .collect();
                if jobs_list.is_empty() {
                    fail("--jobs-list needs at least one worker count");
                }
                i += 2;
            }
            "--shards" => {
                let raw = operand(&args, i);
                shards = if raw == "auto" {
                    sdds_runtime::ShardPolicy::Auto
                } else {
                    let n: usize = raw.parse().unwrap_or_else(|_| {
                        fail(&format!("--shards takes `auto` or a count, got `{raw}`"))
                    });
                    if n == 0 {
                        fail("--shards count must be at least 1");
                    }
                    sdds_runtime::ShardPolicy::Fixed(n)
                };
                i += 2;
            }
            "--epoch-us" => {
                epoch_us = Some(parse_num(&args, i));
                i += 2;
            }
            "--digest" => {
                digest_path = Some(std::path::PathBuf::from(operand(&args, i)));
                i += 2;
            }
            "--check-speedup" => {
                let x: f64 = parse_num(&args, i);
                if !x.is_finite() || x <= 0.0 {
                    fail("--check-speedup must be a positive number");
                }
                check_speedup = Some(x);
                i += 2;
            }
            "--no-baseline" => {
                scale_baseline = false;
                i += 1;
            }
            "--jobs" => {
                let jobs: usize = parse_num(&args, i);
                if jobs == 0 {
                    fail("--jobs must be at least 1");
                }
                simkit::pool::set_jobs(jobs);
                i += 2;
            }
            "--csv" => {
                let dir = std::path::PathBuf::from(operand(&args, i));
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    fail(&format!(
                        "cannot create --csv directory {}: {e}",
                        dir.display()
                    ));
                }
                csv_dir = Some(dir);
                i += 2;
            }
            flag if flag.starts_with('-') => {
                fail(&format!("unknown option `{flag}`"));
            }
            name => {
                if !EXPERIMENTS.contains(&name) {
                    fail(&format!("unknown experiment `{name}`"));
                }
                experiment = name.to_owned();
                i += 1;
            }
        }
    }

    // Validate the full configuration up front: every knob the flags can
    // set goes through the builder, so a bad combination is rejected here
    // — with the config exit code — before any experiment runs.
    let mut builder = SystemConfig::builder().scale(scale);
    if let Some(n) = io_nodes {
        builder = builder.io_nodes(n);
    }
    if let Some(kb) = stripe_kb {
        builder = builder.stripe_kb(kb);
    }
    if let Some(mb) = cache_mb {
        builder = builder.cache_mb(mb);
    }
    if let Some(mb) = buffer_mb {
        builder = builder.buffer_mb(mb);
    }
    if let Some(d) = delta {
        builder = builder.delta(d);
    }
    if let Some(p) = policy.clone() {
        builder = builder.policy(p);
    }
    builder = builder.theta(theta.or(SystemConfig::paper_defaults().scheduler.theta));
    let base = match builder.build() {
        Ok(cfg) => cfg,
        Err(e) => {
            let e = SddsError::from(e);
            eprintln!("{}", render_diagnostic(&e, verbose));
            std::process::exit(e.exit_code());
        }
    };

    if experiment == "scale" {
        match run_scale_cmd(
            &scales,
            &jobs_list,
            shards,
            epoch_us,
            repeat,
            scale_baseline,
            out_path.as_deref(),
            digest_path.as_deref(),
            check_speedup,
        ) {
            Ok(ok) => std::process::exit(if ok { 0 } else { 1 }),
            Err(e) => {
                eprintln!("{}", render_diagnostic(&e, verbose));
                std::process::exit(e.exit_code());
            }
        }
    }

    if experiment == "perf" {
        match run_perf(
            &base,
            &apps,
            repeat,
            out_path.as_deref(),
            check_path.as_deref(),
            tolerance,
            trace_out.as_deref(),
        ) {
            Ok(ok) => std::process::exit(if ok { 0 } else { 1 }),
            Err(e) => {
                eprintln!("{}", render_diagnostic(&e, verbose));
                std::process::exit(e.exit_code());
            }
        }
    }

    if experiment == "trace" {
        // Default the traced cell to the paper's history-based strategy so
        // the trace shows power-state activity; --policy overrides.
        let cfg = match policy {
            Some(_) => base.clone(),
            None => base.with_policy(PolicyKind::history_based_default()),
        };
        match run_trace_cmd(&cfg, &apps, trace_out.as_deref(), metrics_out.as_deref()) {
            Ok(ok) => std::process::exit(if ok { 0 } else { 1 }),
            Err(e) => {
                eprintln!("{}", render_diagnostic(&e, verbose));
                std::process::exit(e.exit_code());
            }
        }
    }

    if experiment == "attrib" {
        match run_attrib(
            &base,
            &apps,
            scenario_explicit.then_some(scenario.as_str()),
            fault_seed,
            scene_scale,
            shards,
            out_path.as_deref(),
        ) {
            Ok(ok) => std::process::exit(if ok { 0 } else { 1 }),
            Err(e) => {
                eprintln!("{}", render_diagnostic(&e, verbose));
                std::process::exit(e.exit_code());
            }
        }
    }

    if experiment == "faults" {
        // Like `trace`, default to the history-based strategy so recovery
        // interacts with real power-state transitions; --policy overrides.
        let cfg = match policy {
            Some(_) => base.clone(),
            None => base.with_policy(PolicyKind::history_based_default()),
        };
        match run_faults(&cfg, &apps, &scenario, fault_seed, out_path.as_deref()) {
            Ok(ok) => std::process::exit(if ok { 0 } else { 1 }),
            Err(e) => {
                eprintln!("{}", render_diagnostic(&e, verbose));
                std::process::exit(e.exit_code());
            }
        }
    }

    if experiment == "rebuild" {
        let ok = run_rebuild_cmd(&scenario, fault_seed, out_path.as_deref());
        std::process::exit(if ok { 0 } else { 1 });
    }

    if experiment == "online" {
        match run_online(
            &base,
            &online_scenes,
            &online_modes,
            fault_seed,
            out_path.as_deref(),
        ) {
            Ok(ok) => std::process::exit(if ok { 0 } else { 1 }),
            Err(e) => {
                eprintln!("{}", render_diagnostic(&e, verbose));
                std::process::exit(e.exit_code());
            }
        }
    }

    if experiment == "fuzz" {
        // Like `trace`, default to the history-based strategy so shuffled
        // arbitration interacts with real power-state transitions;
        // --policy overrides.
        let cfg = match policy {
            Some(_) => base.clone(),
            None => base.with_policy(PolicyKind::history_based_default()),
        };
        match run_fuzz(&cfg, &apps, fuzz_seeds) {
            Ok(ok) => std::process::exit(if ok { 0 } else { 1 }),
            Err(e) => {
                eprintln!("{}", render_diagnostic(&e, verbose));
                std::process::exit(e.exit_code());
            }
        }
    }

    let run_one = |name: &str| -> Result<(), ExperimentError> {
        let started = Instant::now();
        let cache_before = CompileCache::global().stats();
        let cells_before = exp::cell_stats();
        match name {
            "table2" => {
                println!("Table II (simulation parameters)");
                println!("{:#?}", base);
            }
            "table3" => {
                let rows = exp::table3(&base, &apps)?;
                print!("{}", render_table3(&rows));
                if let Some(dir) = &csv_dir {
                    let lines: Vec<String> = rows
                        .iter()
                        .map(|r| {
                            format!(
                                "{},{:.3},{:.1},{},{}",
                                r.app.name(),
                                r.exec_minutes,
                                r.energy_joules,
                                r.paper_exec_minutes,
                                r.paper_energy_joules
                            )
                        })
                        .collect();
                    write_csv(
                        dir,
                        "table3",
                        "app,exec_min,energy_j,paper_exec_min,paper_energy_j",
                        &lines,
                    );
                }
            }
            "fig12a" | "fig12b" => {
                let scheme = name == "fig12b";
                let label = if scheme { "(b): with" } else { "(a): without" };
                println!("Fig. 12{label} the scheme — idle-period CDF");
                let rows = exp::fig12_cdf(&base, &apps, scheme)?;
                print!("{}", render_cdf_rows(&rows));
                if let Some(dir) = &csv_dir {
                    let mut lines = Vec::new();
                    for row in &rows {
                        for p in &row.points {
                            lines.push(format!(
                                "{},{},{:.6}",
                                row.app.name(),
                                p.upto.as_micros(),
                                p.fraction
                            ));
                        }
                    }
                    write_csv(dir, name, "app,upto_us,fraction", &lines);
                }
            }
            "fig12c" | "fig12d" => {
                let scheme = name == "fig12d";
                let label = if scheme { "(d): with" } else { "(c): without" };
                println!("Fig. 12{label} the scheme — normalized energy");
                let (rows, avg) = exp::fig12_energy(&base, &apps, scheme)?;
                print!("{}", render_energy(&rows, &avg));
                if let Some(dir) = &csv_dir {
                    let lines: Vec<String> = rows
                        .iter()
                        .map(|r| {
                            format!(
                                "{},{:.3},{:.3},{:.3},{:.3}",
                                r.app.name(),
                                r.normalized[0],
                                r.normalized[1],
                                r.normalized[2],
                                r.normalized[3]
                            )
                        })
                        .collect();
                    write_csv(dir, name, "app,simple,prediction,history,staggered", &lines);
                }
            }
            "fig13a" | "fig13b" => {
                let scheme = name == "fig13b";
                let label = if scheme { "(b): with" } else { "(a): without" };
                println!("Fig. 13{label} the scheme — performance degradation");
                let (rows, avg) = exp::fig13_perf(&base, &apps, scheme)?;
                print!("{}", render_perf(&rows, &avg));
                if let Some(dir) = &csv_dir {
                    let lines: Vec<String> = rows
                        .iter()
                        .map(|r| {
                            format!(
                                "{},{:.3},{:.3},{:.3},{:.3}",
                                r.app.name(),
                                r.degradation[0],
                                r.degradation[1],
                                r.degradation[2],
                                r.degradation[3]
                            )
                        })
                        .collect();
                    write_csv(dir, name, "app,simple,prediction,history,staggered", &lines);
                }
            }
            "fig13c" => {
                println!("Fig. 13(c): extra energy reduction vs number of I/O nodes");
                let pts = exp::fig13c_io_nodes(&base, &apps, &[2, 4, 8, 16, 32])?;
                print!("{}", render_sweep("io-nodes", &pts));
                if let Some(dir) = &csv_dir {
                    let lines: Vec<String> =
                        pts.iter().map(|(x, y)| format!("{x},{y:.4}")).collect();
                    write_csv(dir, name, "io_nodes,extra_reduction_pct", &lines);
                }
            }
            "fig13d" => {
                println!("Fig. 13(d): extra energy reduction vs delta");
                let pts = exp::fig13d_delta(&base, &apps, &[5, 10, 20, 40, 80])?;
                print!("{}", render_sweep("delta", &pts));
                if let Some(dir) = &csv_dir {
                    let lines: Vec<String> =
                        pts.iter().map(|(x, y)| format!("{x},{y:.4}")).collect();
                    write_csv(dir, name, "delta,extra_reduction_pct", &lines);
                }
            }
            "fig14" => {
                println!("Fig. 14: theta sensitivity (energy reduction, perf improvement)");
                let pts = exp::fig14_theta(&base, &apps, &[2, 4, 6, 8])?;
                print!("{}", render_theta(&pts));
                if let Some(dir) = &csv_dir {
                    let lines: Vec<String> = pts
                        .iter()
                        .map(|p| {
                            format!(
                                "{},{:.4},{:.4}",
                                p.theta, p.energy_reduction, p.perf_improvement
                            )
                        })
                        .collect();
                    write_csv(
                        dir,
                        name,
                        "theta,energy_reduction_pct,perf_improvement_pct",
                        &lines,
                    );
                }
            }
            "cache" => {
                println!("Cache-capacity sensitivity (S V-D)");
                let pts = exp::cache_sensitivity(&base, &apps, &[32, 64, 256])?;
                print!("{}", render_sweep("cache-MB", &pts));
            }
            "compiler-cost" => {
                println!("Compilation cost (S V-A; paper: <= 1.4 s)");
                for (app, secs) in exp::compile_cost(&base, &apps)? {
                    println!("{:<11} {:.3} s", app.name(), secs);
                }
            }
            "granularity" => {
                println!("Slot-granularity sweep on hf (S IV-A's d):");
                println!("d     scheme benefit   compile");
                for pt in exp::granularity_sweep(&base, App::Hf, &[1, 2, 4, 8])? {
                    println!(
                        "{:>2}    {}         {:6.2} s",
                        pt.d,
                        pct(pt.benefit),
                        pt.compile_seconds
                    );
                }
            }
            "oscillation" => {
                println!("Spin-down timeout sweep on hf (DESIGN.md S7):");
                println!("timeout    energy (% of default)   perf degradation");
                for pt in exp::timeout_sweep(&base, App::Hf, &[0.2, 1.0, 3.0, 10.0, 20.0, 40.0])? {
                    println!(
                        "{:>6.0} s   {:>10}             {:>10}",
                        pt.timeout_secs,
                        pct(pt.normalized_energy),
                        pct(pt.perf_degradation)
                    );
                }
            }
            "ablation" => {
                println!("Scheduler ablation on sar (history-based + scheme):");
                println!("variant                  energy     compile    moved");
                for row in exp::scheduler_ablation(&base, App::Sar)? {
                    println!(
                        "{:<24} {}   {:6.2} s   {:>6}",
                        row.variant,
                        pct(row.normalized_energy),
                        row.compile_seconds,
                        row.moved_earlier
                    );
                }
            }
            "multiapp" => {
                println!("Multi-application scenario (S VII future work), history-based");
                let pairs = [(App::Madbench2, App::Sar), (App::Hf, App::Apsi)];
                for row in exp::multi_app(&base, &pairs)? {
                    println!(
                        "{:<10} + {:<10}  policy {}  policy+scheme {}",
                        row.pair.0.name(),
                        row.pair.1.name(),
                        pct(row.policy_only),
                        pct(row.policy_with_scheme)
                    );
                }
            }
            "headline" => {
                println!("Headline averages (abstract)");
                let h = exp::headline(&base, &apps)?;
                println!("strategy          without      with");
                let names = ["simple", "prediction", "history", "staggered"];
                for (i, name) in names.iter().enumerate() {
                    println!(
                        "{:<16} {} {}",
                        name,
                        pct(h.without_scheme[i]),
                        pct(h.with_scheme[i])
                    );
                }
                if let Some(dir) = &csv_dir {
                    let lines: Vec<String> = names
                        .iter()
                        .enumerate()
                        .map(|(i, n)| {
                            format!("{n},{:.4},{:.4}", h.without_scheme[i], h.with_scheme[i])
                        })
                        .collect();
                    write_csv(dir, "headline", "strategy,without_pct,with_pct", &lines);
                }
            }
            other => fail(&format!("unknown experiment `{other}`")),
        }
        let cells = exp::cell_stats().since(&cells_before);
        let cache = CompileCache::global().stats().since(&cache_before);
        eprintln!(
            "[{name} took {:.1} s: {} cells / {:.1} s busy \
             ({:.1} s compile + {:.1} s sim) on {} workers; \
             compile cache {} hits / {} misses]\n",
            started.elapsed().as_secs_f64(),
            cells.cells,
            cells.busy_seconds,
            cells.compile_seconds,
            cells.sim_seconds,
            simkit::pool::jobs(),
            cache.trace_hits + cache.schedule_hits,
            cache.trace_misses + cache.schedule_misses,
        );
        Ok(())
    };

    if experiment == "all" {
        let started = Instant::now();
        // Continue on error: a failing experiment reports and the rest of
        // the suite still runs; the summary below aggregates every failed
        // cell and the process exits with the most severe class.
        let mut failed: Vec<(&str, ExperimentError)> = Vec::new();
        for name in [
            "table3",
            "fig12a",
            "fig12b",
            "fig12c",
            "fig12d",
            "fig13a",
            "fig13b",
            "fig13c",
            "fig13d",
            "fig14",
            "cache",
            "compiler-cost",
            "multiapp",
            "oscillation",
            "ablation",
            "granularity",
            "headline",
        ] {
            if let Err(e) = run_one(name) {
                eprintln!("{}", render_diagnostic(&e, verbose));
                failed.push((name, e));
            }
        }
        let cells = exp::cell_stats();
        let cache = CompileCache::global().stats();
        let (traces, schedules) = CompileCache::global().len();
        eprintln!(
            "[all took {:.1} s wall / {:.1} s busy \
             ({:.1} s compile + {:.1} s sim) over {} cells; \
             compile cache: {} distinct traces, {} distinct schedules, \
             {} hits / {} misses]",
            started.elapsed().as_secs_f64(),
            cells.busy_seconds,
            cells.compile_seconds,
            cells.sim_seconds,
            cells.cells,
            traces,
            schedules,
            cache.trace_hits + cache.schedule_hits,
            cache.trace_misses + cache.schedule_misses,
        );
        if !failed.is_empty() {
            let code = failed.iter().map(|(_, e)| e.exit_code()).max().unwrap_or(1);
            eprintln!("\nrepro: {} of 17 experiments failed:", failed.len());
            for (name, e) in &failed {
                eprintln!("  {name}: {e}");
            }
            std::process::exit(code);
        }
    } else if let Err(e) = run_one(&experiment) {
        eprintln!("{}", render_diagnostic(&e, verbose));
        std::process::exit(e.exit_code());
    }
}
