//! Diagnostic tool: run one application under one policy and dump the
//! detailed counters (exec time, energy breakdown, transitions, idle CDF).
//!
//! ```text
//! cargo run --release -p sdds-bench --bin inspect -- <app> <policy> [--scheme] [--factor F]
//! ```

use sdds::{run, SystemConfig};
use sdds_power::PolicyKind;
use sdds_workloads::{App, WorkloadScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = App::all()
        .into_iter()
        .find(|a| a.name() == args.first().map(String::as_str).unwrap_or("sar"))
        .expect("unknown app");
    let policy = match args.get(1).map(String::as_str).unwrap_or("default") {
        "default" => PolicyKind::NoPm,
        "simple" => PolicyKind::simple_spin_down_default(),
        "prediction" => PolicyKind::predictive_spin_down_default(),
        "history" => PolicyKind::history_based_default(),
        "staggered" => PolicyKind::staggered_default(),
        other => panic!("unknown policy {other}"),
    };
    let mut scale = WorkloadScale::paper();
    let mut scheme = false;
    let mut delta: Option<u32> = None;
    let mut theta: Option<u16> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--scheme" => {
                scheme = true;
                i += 1;
            }
            "--factor" => {
                scale.factor = args[i + 1].parse().unwrap();
                i += 2;
            }
            "--procs" => {
                scale.procs = args[i + 1].parse().unwrap();
                i += 2;
            }
            "--gap-factor" => {
                scale.gap_factor = args[i + 1].parse().unwrap();
                i += 2;
            }
            "--delta" => {
                delta = Some(args[i + 1].parse().unwrap());
                i += 2;
            }
            "--theta" => {
                theta = Some(args[i + 1].parse().unwrap());
                i += 2;
            }
            other => panic!("unknown option {other}"),
        }
    }
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = scale;
    cfg.policy = policy;
    cfg.scheme_enabled = scheme;
    if let Some(d) = delta {
        cfg.scheduler.delta = d;
    }
    if let Some(th) = theta {
        cfg.scheduler.theta = Some(th);
    }

    let o = match run(app, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("inspect: {e}");
            std::process::exit(e.exit_code());
        }
    };
    println!(
        "app: {app}  policy: {}  scheme: {scheme}",
        cfg.policy.name()
    );
    println!("exec: {:.1} s", o.result.exec_time.as_secs_f64());
    println!("energy: {:.0} J", o.result.energy_joules);
    println!("mean read stall: {:.4} s", o.result.mean_read_response);
    println!("bytes: {:?}", o.result.bytes_moved);
    println!("prefetch: {:?}", o.result.prefetch);
    println!("buffer: {:?}", o.result.buffer);
    if scheme {
        println!(
            "compiled: {} accesses, {} moved earlier, mean advance {:.1}, {:.2} s",
            o.analyzed_accesses, o.moved_earlier, o.mean_advance, o.compile_seconds
        );
    }
    println!("-- energy by state --");
    for (state, e) in o.result.energy.iter() {
        println!(
            "  {:<14} {:>12.0} J  {:>10.1} s",
            state,
            e.joules,
            e.residency.as_secs_f64()
        );
    }
    println!("-- idle CDF (periods / time share) --");
    let time_cdf = o.result.idle_time_histogram.cdf();
    for (i, (upto, frac)) in o.result.idle_histogram.cdf().iter().enumerate() {
        let time_share = time_cdf.get(i).map(|p| p.1).unwrap_or(0.0);
        println!(
            "  <= {:>10}  {:5.1}%   {:5.1}%",
            upto.to_string(),
            frac * 100.0,
            time_share * 100.0
        );
    }
    println!(
        "idle periods: {} ({} total idle)",
        o.result.idle_histogram.total(),
        o.result.idle_time_histogram.total()
    );
}
