//! Diagnostic: compare per-node activity structure of the original program
//! order vs the compiled schedule, in slot space.
//!
//! ```text
//! cargo run --release -p sdds-bench --bin schedviz -- <app> [--delta D] [--theta T]
//! ```

use sdds::SystemConfig;
use sdds_compiler::{analyze_slacks, SchedulerConfig};
use sdds_workloads::{App, WorkloadScale};

fn gap_stats(label: &str, busy_slots: &[Vec<bool>]) {
    // Per node: distribution of idle-run lengths (in slots).
    let mut all_gaps: Vec<usize> = Vec::new();
    for node in busy_slots {
        let mut run = 0usize;
        for &b in node {
            if b {
                if run > 0 {
                    all_gaps.push(run);
                }
                run = 0;
            } else {
                run += 1;
            }
        }
        if run > 0 {
            all_gaps.push(run);
        }
    }
    all_gaps.sort_unstable();
    let total: usize = all_gaps.iter().sum();
    let n = all_gaps.len().max(1);
    let p = |q: f64| all_gaps[(q * (n - 1) as f64) as usize];
    println!(
        "{label}: idle-runs n={n} total={total} slots median={} p90={} p99={} max={}",
        p(0.5),
        p(0.9),
        p(0.99),
        all_gaps.last().copied().unwrap_or(0)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = App::all()
        .into_iter()
        .find(|a| a.name() == args.first().map(String::as_str).unwrap_or("hf"))
        .expect("unknown app");
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = WorkloadScale::paper();
    let mut sched = SchedulerConfig::paper_defaults();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--delta" => {
                sched.delta = args[i + 1].parse().unwrap();
                i += 2;
            }
            "--theta" => {
                sched.theta = Some(args[i + 1].parse().unwrap());
                i += 2;
            }
            other => panic!("unknown option {other}"),
        }
    }

    let program = app.program(&cfg.scale);
    let trace = program.trace(app.granularity()).unwrap();
    let layout = cfg
        .storage_config()
        .expect("paper defaults are valid")
        .layout;
    let accesses = analyze_slacks(&trace, &layout).expect("trace and layout are consistent");
    let table = sched
        .schedule(&accesses, &trace)
        .expect("valid scheduler configuration");

    let nodes = layout.io_nodes();
    let slots = trace.total_slots as usize;
    let mut original = vec![vec![false; slots]; nodes];
    let mut scheduled = vec![vec![false; slots]; nodes];
    for a in &accesses {
        for node in a.signature.nodes().iter() {
            original[node][a.io.slot as usize] = true;
            scheduled[node][table.point_of(a.index) as usize] = true;
        }
    }
    println!(
        "{app}: {} accesses over {} slots, {} nodes, delta={} theta={:?}",
        accesses.len(),
        slots,
        nodes,
        sched.delta,
        sched.theta
    );
    gap_stats("original ", &original);
    gap_stats("scheduled", &scheduled);

    // Busy-slot count per node (how concentrated is each node's work?).
    let busy_orig: usize = original.iter().flatten().filter(|&&b| b).count();
    let busy_sched: usize = scheduled.iter().flatten().filter(|&&b| b).count();
    println!("busy node-slots: original {busy_orig} -> scheduled {busy_sched}");
}
