//! Golden diagnostics: the exact one-line `Display` rendering of each
//! rejected configuration, and the exit-code class it maps to.
//!
//! These strings are what the `repro` CLI prints (prefixed `repro: `) and
//! what scripted callers match on; a wording change here is a breaking
//! change and must be deliberate.

use sdds::{SddsError, SystemConfig, SystemConfigBuilder};
use sdds_compiler::SlotGranularity;
use sdds_workloads::WorkloadScale;

/// Builds, asserts rejection, and returns (message, exit code).
fn reject(build: impl FnOnce(SystemConfigBuilder) -> SystemConfigBuilder) -> (String, i32) {
    let err = build(SystemConfig::builder())
        .build()
        .expect_err("config should be rejected");
    let msg = err.to_string();
    let code = SddsError::from(err).exit_code();
    (msg, code)
}

#[test]
fn zero_io_nodes() {
    let (msg, code) = reject(|b| b.io_nodes(0));
    assert_eq!(
        msg,
        "invalid storage configuration: I/O node count must be in 1..=64, got 0"
    );
    assert_eq!(code, 3);
}

#[test]
fn zero_stripe() {
    let (msg, code) = reject(|b| b.stripe_kb(0));
    assert_eq!(
        msg,
        "invalid storage configuration: stripe size must be positive"
    );
    assert_eq!(code, 3);
}

#[test]
fn zero_cache() {
    let (msg, code) = reject(|b| b.cache_mb(0));
    assert_eq!(
        msg,
        "invalid storage configuration: cache capacity (0 B) must hold at least one 65536 B block"
    );
    assert_eq!(code, 3);
}

#[test]
fn buffer_smaller_than_stripe() {
    let (msg, code) = reject(|b| b.buffer_mb(0));
    assert_eq!(
        msg,
        "engine buffer (0 B) must hold at least one stripe (65536 B)"
    );
    assert_eq!(code, 3);
}

#[test]
fn zero_theta() {
    let (msg, code) = reject(|b| b.theta(Some(0)));
    assert_eq!(
        msg,
        "invalid scheduler configuration: scheduler knob `theta` must be >= 1 when set, got 0"
    );
    assert_eq!(code, 3);
}

#[test]
fn zero_procs() {
    let (msg, code) = reject(|b| {
        b.scale(WorkloadScale {
            procs: 0,
            factor: 1.0,
            gap_factor: 1.0,
        })
    });
    assert_eq!(msg, "workload scale needs at least one client process");
    assert_eq!(code, 3);
}

#[test]
fn non_finite_scale_factor() {
    let (msg, code) = reject(|b| {
        b.scale(WorkloadScale {
            procs: 4,
            factor: f64::NAN,
            gap_factor: 1.0,
        })
    });
    assert_eq!(
        msg,
        "workload scale `factor` must be a finite positive number, got NaN"
    );
    assert_eq!(code, 3);
}

#[test]
fn zero_granularity() {
    let (msg, code) = reject(|b| {
        b.granularity(SlotGranularity {
            iterations_per_slot: 0,
            access_bytes_per_slot: None,
        })
    });
    assert_eq!(msg, "slot granularity quanta must be positive");
    assert_eq!(code, 3);
}

#[test]
fn top_level_wrapping_adds_the_config_prefix() {
    let err = SystemConfig::builder().io_nodes(0).build().unwrap_err();
    let top = SddsError::from(err);
    assert_eq!(
        top.to_string(),
        "configuration rejected: invalid storage configuration: \
         I/O node count must be in 1..=64, got 0"
    );
}
