//! The two determinism guarantees of the executor + cache layer:
//!
//! 1. the worker count of `simkit::pool` never affects an emitted number
//!    (`--jobs` changes wall time only);
//! 2. a cache hit returns bitwise the same schedule a cold compile would
//!    have produced.

use sdds::cache::CompileCache;
use sdds::experiments as exp;
use sdds::{run_with, SystemConfig};
use sdds_power::PolicyKind;
use sdds_workloads::{App, WorkloadScale};

fn small_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = WorkloadScale::test();
    cfg
}

#[test]
fn headline_identical_for_any_worker_count() {
    let cfg = small_cfg();
    let apps = [App::Sar, App::Madbench2, App::Hf];

    simkit::pool::set_jobs(1);
    let serial = exp::headline(&cfg, &apps).unwrap();
    simkit::pool::set_jobs(8);
    let wide = exp::headline(&cfg, &apps).unwrap();
    simkit::pool::set_jobs(0);

    for i in 0..4 {
        assert_eq!(
            serial.without_scheme[i].to_bits(),
            wide.without_scheme[i].to_bits(),
            "without-scheme strategy {i} differs between 1 and 8 workers"
        );
        assert_eq!(
            serial.with_scheme[i].to_bits(),
            wide.with_scheme[i].to_bits(),
            "with-scheme strategy {i} differs between 1 and 8 workers"
        );
    }
}

#[test]
fn cache_hit_equals_cold_compilation() {
    let cfg = small_cfg()
        .with_policy(PolicyKind::history_based_default())
        .with_scheme(true);

    let warm = CompileCache::new();
    let first = run_with(App::Sar, &cfg, &warm).unwrap();
    let hit = run_with(App::Sar, &cfg, &warm).unwrap();
    let cold = run_with(App::Sar, &cfg, &CompileCache::new()).unwrap();

    let stats = warm.stats();
    assert_eq!(stats.schedule_misses, 1);
    assert_eq!(stats.schedule_hits, 1);

    for (label, o) in [("hit", &hit), ("cold", &cold)] {
        assert_eq!(first.result.exec_time, o.result.exec_time, "{label}");
        assert_eq!(
            first.result.energy_joules.to_bits(),
            o.result.energy_joules.to_bits(),
            "{label}"
        );
        assert_eq!(first.analyzed_accesses, o.analyzed_accesses, "{label}");
        assert_eq!(first.moved_earlier, o.moved_earlier, "{label}");
        assert_eq!(
            first.mean_advance.to_bits(),
            o.mean_advance.to_bits(),
            "{label}"
        );
    }
}
