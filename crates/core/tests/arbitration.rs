//! Arbitration-independence: shuffled same-instant event order must not
//! change what work the simulation does.
//!
//! This is the in-tree twin of the CI `arbitration-fuzz` job (`repro
//! fuzz`): a `SeededShuffle` calendar permutes events due at the same
//! instant, which may move *when* things happen (exec time, energy, hit
//! rates) but never *what* is done. Bytes moved and the set of finished
//! processes are pinned against the `Deterministic` baseline for every
//! app, with the scheme on so the prefetch pipeline — the layer most
//! exposed to same-instant races — is exercised.

use sdds::{run, SystemConfig};
use sdds_power::PolicyKind;
use sdds_workloads::{App, WorkloadScale};
use simkit::kernel::ArbitrationPolicy;

fn base() -> SystemConfig {
    SystemConfig {
        scale: WorkloadScale::test(),
        ..SystemConfig::paper_defaults()
    }
    .with_policy(PolicyKind::history_based_default())
    .with_scheme(true)
}

/// `(bytes read, bytes written, processes finished)` — the metrics that
/// must not depend on same-instant ordering.
fn invariants(cfg: &SystemConfig, app: App) -> ((u64, u64), usize) {
    let o = run(app, cfg).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
    (o.result.bytes_moved, o.result.per_proc_finish.len())
}

#[test]
fn shuffle_seeds_preserve_invariant_metrics() {
    for app in App::all() {
        let baseline = invariants(
            &base().with_arbitration(ArbitrationPolicy::Deterministic),
            app,
        );
        for seed in [1_u64, 0x5EED_0001] {
            let shuffled = invariants(
                &base().with_arbitration(ArbitrationPolicy::SeededShuffle(seed)),
                app,
            );
            assert_eq!(
                shuffled,
                baseline,
                "{} under SeededShuffle({seed}): same-instant order leaked into \
                 physical outcomes",
                app.name()
            );
        }
    }
}

#[test]
fn deterministic_arbitration_is_byte_identical_across_runs() {
    let cfg = base().with_arbitration(ArbitrationPolicy::Deterministic);
    for app in [App::Sar, App::Apsi] {
        let a = run(app, &cfg).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        let b = run(app, &cfg).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        assert_eq!(
            a.result.energy_joules.to_bits(),
            b.result.energy_joules.to_bits(),
            "{}: energy not bit-reproducible",
            app.name()
        );
        assert_eq!(a.result.exec_time, b.result.exec_time);
        assert_eq!(a.result.events, b.result.events);
        assert_eq!(a.result.per_proc_finish, b.result.per_proc_finish);
    }
}
