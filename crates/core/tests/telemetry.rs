//! End-to-end telemetry guarantees: the layer is invisible to the
//! simulation (bit-for-bit identical outputs on or off), deterministic
//! across runs, and its per-disk energy table reconciles with the run's
//! headline energy.

use sdds::cache::CompileCache;
use sdds::{run_with, SystemConfig, TraceEvent};
use sdds_power::PolicyKind;
use sdds_workloads::{App, WorkloadScale};
use simkit::span::{decompose, SpanForest};

fn test_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_defaults()
        .with_policy(PolicyKind::history_based_default())
        .with_scheme(true);
    cfg.scale = WorkloadScale::test();
    cfg
}

#[test]
fn telemetry_is_off_by_default() {
    let cfg = test_cfg();
    assert!(!cfg.telemetry);
    let cache = CompileCache::new();
    let o = run_with(App::Sar, &cfg, &cache).unwrap();
    assert!(o.result.telemetry.is_none());
}

#[test]
fn telemetry_leaves_simulated_results_bit_for_bit_unchanged() {
    let cfg = test_cfg();
    let cache = CompileCache::new();
    let plain = run_with(App::Sar, &cfg, &cache).unwrap();
    let traced = run_with(App::Sar, &cfg.with_telemetry(true), &cache).unwrap();
    assert_eq!(
        plain.result.exec_time, traced.result.exec_time,
        "exec time must not move"
    );
    assert_eq!(
        plain.result.energy_joules.to_bits(),
        traced.result.energy_joules.to_bits(),
        "energy must be bit-for-bit identical"
    );
    assert_eq!(plain.result.energy, traced.result.energy);
    assert_eq!(
        plain.result.idle_histogram.counts(),
        traced.result.idle_histogram.counts()
    );
    assert_eq!(plain.result.buffer, traced.result.buffer);
    assert_eq!(plain.result.prefetch, traced.result.prefetch);
    assert_eq!(plain.result.per_proc_finish, traced.result.per_proc_finish);
    assert_eq!(plain.result.bytes_moved, traced.result.bytes_moved);
    assert_eq!(
        plain.result.mean_read_response.to_bits(),
        traced.result.mean_read_response.to_bits()
    );
}

#[test]
fn traces_are_deterministic_across_runs() {
    let cfg = test_cfg().with_telemetry(true);
    let cache = CompileCache::new();
    let a = run_with(App::Madbench2, &cfg, &cache).unwrap();
    let b = run_with(App::Madbench2, &cfg, &cache).unwrap();
    let (ta, tb) = (
        a.result.telemetry.expect("telemetry on"),
        b.result.telemetry.expect("telemetry on"),
    );
    assert_eq!(ta.jsonl(), tb.jsonl());
    assert_eq!(ta.chrome_trace(), tb.chrome_trace());
    assert_eq!(ta.metrics.to_json(), tb.metrics.to_json());
}

#[test]
fn per_disk_energy_table_reconciles_with_headline_energy() {
    let cfg = test_cfg().with_telemetry(true);
    let cache = CompileCache::new();
    let o = run_with(App::Astro, &cfg, &cache).unwrap();
    let t = o.result.telemetry.expect("telemetry on");
    assert_eq!(t.disks.len(), cfg.io_nodes * cfg.disks_per_node);
    let table_sum = t.summary_joules();
    assert!(
        (table_sum - o.result.energy_joules).abs() < 1e-9,
        "table sum {table_sum} vs run energy {}",
        o.result.energy_joules
    );
    // Each disk's rows also sum to its own total.
    for d in &t.disks {
        let row_sum: f64 = d.states.iter().map(|&(_, _, j)| j).sum();
        assert!((row_sum - d.total_joules).abs() < 1e-9);
    }
}

#[test]
fn span_forest_and_latency_decomposition_reconcile_end_to_end() {
    let cfg = test_cfg().with_telemetry(true);
    let cache = CompileCache::new();
    let o = run_with(App::Sar, &cfg, &cache).unwrap();
    let t = o.result.telemetry.expect("telemetry on");

    // The causal tree covers the run: access roots open and close, and
    // every completed request span carries its parent link and energy.
    let forest = SpanForest::build(&t.events);
    assert!(!forest.accesses.is_empty());
    assert!(forest.accesses.iter().all(|a| a.end.is_some()));
    assert!(forest.accesses.iter().all(|a| a
        .requests
        .iter()
        .all(|&rix| forest.requests[rix].completed())));
    assert!(forest.requests.iter().any(|r| r.access.is_some()));

    // Span energy is metered, not estimated: the fold equals the sum of
    // the raw completion events exactly.
    let raw_nj: u64 = t
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Request { energy_nj, .. } => Some(*energy_nj),
            _ => None,
        })
        .sum();
    assert!(raw_nj > 0);
    assert_eq!(forest.total_energy_nj(), raw_nj);

    // The latency split holds its invariants exactly, in integer
    // microseconds, for every completed request of the run.
    let lat = decompose(&t.events);
    assert_eq!(
        lat.len(),
        forest.requests.iter().filter(|r| r.completed()).count()
    );
    for r in &lat {
        assert_eq!(r.response_us, r.queue_us + r.service_us);
        assert_eq!(r.queue_us, r.spin_up_us + r.wait_us);
    }
}

#[test]
fn spin_up_recovery_shows_up_in_the_queue_decomposition() {
    // Without the scheme, the simple spin-down policy parks disks between
    // bursts, so later requests must queue behind an on-demand spin-up —
    // and the decomposition must attribute that wait to `spin_up_us`.
    let mut cfg = SystemConfig::paper_defaults()
        .with_policy(PolicyKind::simple_spin_down_default())
        .with_scheme(false)
        .with_telemetry(true);
    cfg.scale = WorkloadScale::test();
    // Keep the test()'s small phase count but paper-length gaps, so the
    // idle windows are long enough for the policy to park disks mid-run.
    cfg.scale.gap_factor = 1.0;
    let cache = CompileCache::new();
    let o = run_with(App::Sar, &cfg, &cache).unwrap();
    let t = o.result.telemetry.expect("telemetry on");
    let lat = decompose(&t.events);
    assert!(
        lat.iter().any(|r| r.spin_up_us > 0),
        "no queue wait was attributed to spin-up recovery"
    );
    for r in &lat {
        assert_eq!(r.queue_us, r.spin_up_us + r.wait_us);
    }
}

#[test]
fn event_stream_is_time_ordered_and_metrics_cover_every_layer() {
    let cfg = test_cfg().with_telemetry(true);
    let cache = CompileCache::new();
    let o = run_with(App::Sar, &cfg, &cache).unwrap();
    let t = o.result.telemetry.expect("telemetry on");
    assert!(!t.events.is_empty());
    assert!(
        t.events.windows(2).all(|w| w[0].at() <= w[1].at()),
        "events must be sorted by simulated time"
    );
    // At least one event from each instrumented layer.
    assert!(t
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::DiskState { .. })));
    assert!(t
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::CacheAccess { .. })));
    assert!(t
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::BufferRead { .. })));
    // Registry naming convention: every layer contributes under its
    // crate prefix.
    let json = t.metrics.to_json();
    for prefix in ["disk.n0.d0.", "power.n0.", "storage.n0.", "runtime.buffer."] {
        assert!(json.contains(prefix), "missing {prefix} in metrics dump");
    }
}
