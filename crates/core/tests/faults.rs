//! End-to-end fault-injection guarantees: recovery loses no bytes
//! (`bytes_moved` parity with the fault-free twin for every app),
//! fault runs are deterministic per seed, the per-disk energy table
//! still reconciles with the headline joules under faults, and an
//! unarmed fault subsystem is invisible bit-for-bit.

use sdds::cache::CompileCache;
use sdds::{run_with, ConfigError, SddsError, SystemConfig};
use sdds_power::PolicyKind;
use sdds_storage::RaidLevel;
use sdds_workloads::{App, WorkloadScale};
use simkit::fault::FaultSpec;

fn test_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_defaults()
        .with_policy(PolicyKind::history_based_default())
        .with_scheme(true);
    cfg.scale = WorkloadScale::test();
    cfg
}

/// Recovery must move exactly the bytes the application asked for: a
/// faulty run's `bytes_moved` matches its fault-free twin for every
/// paper application.
#[test]
fn bytes_moved_parity_for_every_app() {
    let clean_cfg = test_cfg();
    let faulty_cfg = clean_cfg.with_fault(Some(FaultSpec::heavy(11)));
    let cache = CompileCache::new();
    let mut any_injected = false;
    for app in App::all() {
        let clean = run_with(app, &clean_cfg, &cache).unwrap();
        let faulty = run_with(app, &faulty_cfg, &cache).unwrap();
        assert_eq!(
            clean.result.bytes_moved, faulty.result.bytes_moved,
            "{app}: recovery must not lose or duplicate bytes"
        );
        assert!(
            clean.result.faults.is_zero(),
            "{app}: fault counters must stay zero without a plan"
        );
        any_injected |= faulty.result.faults.total_injected() > 0;
    }
    assert!(any_injected, "the heavy scenario must inject somewhere");
}

/// The same parity holds through RAID-5 degraded reads, where recovery
/// reconstructs from the surviving members instead of retrying in place.
#[test]
fn raid5_degraded_reads_preserve_bytes_moved() {
    let mut clean_cfg = test_cfg();
    clean_cfg.raid_level = RaidLevel::Raid5;
    clean_cfg.disks_per_node = 4;
    let faulty_cfg = clean_cfg.with_fault(Some(FaultSpec::heavy(5)));
    let cache = CompileCache::new();
    for app in [App::Sar, App::Madbench2] {
        let clean = run_with(app, &clean_cfg, &cache).unwrap();
        let faulty = run_with(app, &faulty_cfg, &cache).unwrap();
        assert_eq!(
            clean.result.bytes_moved, faulty.result.bytes_moved,
            "{app}: degraded RAID-5 reads must not change bytes_moved"
        );
    }
}

/// One seed, one outcome: repeating a faulty run reproduces execution
/// time, energy (bit-for-bit), and every fault counter.
#[test]
fn fault_runs_are_deterministic() {
    let cfg = test_cfg().with_fault(Some(FaultSpec::heavy(23)));
    let cache = CompileCache::new();
    let a = run_with(App::Astro, &cfg, &cache).unwrap();
    let b = run_with(App::Astro, &cfg, &cache).unwrap();
    assert_eq!(a.result.exec_time, b.result.exec_time);
    assert_eq!(
        a.result.energy_joules.to_bits(),
        b.result.energy_joules.to_bits()
    );
    assert_eq!(a.result.faults, b.result.faults);
    assert_eq!(a.result.bytes_moved, b.result.bytes_moved);
}

/// Changing the fault seed changes the plan (different seeds should not
/// silently collapse onto the same fault pattern).
#[test]
fn fault_seeds_are_independent() {
    let cache = CompileCache::new();
    let a = run_with(
        App::Sar,
        &test_cfg().with_fault(Some(FaultSpec::heavy(1))),
        &cache,
    )
    .unwrap();
    let b = run_with(
        App::Sar,
        &test_cfg().with_fault(Some(FaultSpec::heavy(2))),
        &cache,
    )
    .unwrap();
    assert_ne!(
        a.result.faults, b.result.faults,
        "distinct seeds should draw distinct fault plans"
    );
}

/// Per-disk energy accounting stays exact under faults: the telemetry
/// table still sums to the headline joules within 1e-9 relative error.
#[test]
fn per_disk_energy_reconciles_under_faults() {
    let cfg = test_cfg()
        .with_fault(Some(FaultSpec::heavy(11)))
        .with_telemetry(true);
    let cache = CompileCache::new();
    let o = run_with(App::Astro, &cfg, &cache).unwrap();
    assert!(o.result.faults.total_injected() > 0, "scenario must bite");
    let t = o.result.telemetry.expect("telemetry on");
    let table_sum: f64 = t.disks.iter().map(|d| d.total_joules).sum();
    let headline = o.result.energy_joules;
    let tol = 1e-9 * headline.abs().max(1.0);
    assert!(
        (table_sum - headline).abs() <= tol,
        "per-disk table {table_sum} must reconcile with headline {headline}"
    );
}

/// Arming only the prefetch timeout (what `with_fault` does on top of
/// the plan) without any fault plan leaves every simulated metric
/// bit-for-bit identical to the plain configuration.
#[test]
fn unarmed_fault_subsystem_is_bit_for_bit_invisible() {
    let plain = test_cfg();
    let mut armed = plain.clone();
    armed.engine.prefetch_timeout = Some(simkit::SimDuration::from_secs(30));
    assert!(armed.fault.is_none());
    let cache = CompileCache::new();
    let a = run_with(App::Madbench2, &plain, &cache).unwrap();
    let b = run_with(App::Madbench2, &armed, &cache).unwrap();
    assert_eq!(a.result.exec_time, b.result.exec_time);
    assert_eq!(
        a.result.energy_joules.to_bits(),
        b.result.energy_joules.to_bits()
    );
    assert_eq!(a.result.energy, b.result.energy);
    assert_eq!(a.result.bytes_moved, b.result.bytes_moved);
    assert_eq!(a.result.buffer, b.result.buffer);
    assert_eq!(a.result.prefetch, b.result.prefetch);
    assert_eq!(a.result.per_proc_finish, b.result.per_proc_finish);
    assert!(b.result.faults.is_zero());
}

/// An out-of-range fault spec is rejected at validation time with the
/// dedicated [`ConfigError::Fault`] class.
#[test]
fn invalid_fault_spec_is_rejected() {
    let mut spec = FaultSpec::light(1);
    spec.transient_rate = 1.5;
    let cfg = test_cfg().with_fault(Some(spec));
    let err = run_with(App::Sar, &cfg, &CompileCache::new()).unwrap_err();
    assert!(
        matches!(err, SddsError::Config(ConfigError::Fault(_))),
        "got {err:?}"
    );
}
