//! Exactly-once compilation across the experiment matrix, asserted on
//! the process-wide cache.
//!
//! This file intentionally holds a single `#[test]`: the assertions read
//! `CompileCache::global()` and need the whole process — and a fixed
//! worker count — to themselves. Keep any new cache tests that use
//! private `CompileCache` instances in `determinism.rs` instead.

use std::collections::HashSet;

use sdds::cache::CompileCache;
use sdds::experiments as exp;
use sdds::SystemConfig;
use sdds_workloads::{App, WorkloadScale};

#[test]
fn experiment_matrix_compiles_each_key_exactly_once() {
    // One worker makes the counters exact: no two workers can race on a
    // cold key, so builds == misses == distinct keys.
    simkit::pool::set_jobs(1);
    let mut cfg = SystemConfig::paper_defaults();
    cfg.scale = WorkloadScale::test();
    let apps = [App::Sar, App::Hf];
    let thetas = [2, 4];

    let suite = |cfg: &SystemConfig, apps: &[App]| {
        let _ = exp::table3(cfg, apps);
        let _ = exp::fig12_energy(cfg, apps, false);
        let _ = exp::fig12_energy(cfg, apps, true);
        let _ = exp::fig13_perf(cfg, apps, true);
        let _ = exp::fig14_theta(cfg, apps, &thetas);
        let _ = exp::headline(cfg, apps);
    };

    let before = CompileCache::global().stats();
    suite(&cfg, &apps);
    let first = CompileCache::global().stats().since(&before);
    let (traces, schedules) = CompileCache::global().len();

    // Every build was a genuine miss, and every distinct key was
    // compiled exactly once.
    assert_eq!(first.trace_builds, first.trace_misses);
    assert_eq!(first.schedule_builds, first.schedule_misses);
    assert_eq!(first.trace_misses as usize, traces);
    assert_eq!(first.schedule_misses as usize, schedules);

    // The suite replays each app at one (scale, granularity) — one trace
    // per app — and its scheme runs differ only in θ: the paper default
    // for table3/fig12/fig13/headline, plus fig14's unconstrained
    // reference and its bounded sweep points.
    let mut distinct_thetas: HashSet<Option<u16>> = HashSet::new();
    distinct_thetas.insert(cfg.scheduler.theta);
    distinct_thetas.insert(None);
    for &t in &thetas {
        distinct_thetas.insert(Some(t));
    }
    assert_eq!(traces, apps.len());
    assert_eq!(schedules, apps.len() * distinct_thetas.len());
    assert!(
        first.trace_hits + first.schedule_hits > 0,
        "the matrix re-visits keys, so the first pass already hits"
    );

    // A second pass over the whole suite compiles nothing at all.
    let mid = CompileCache::global().stats();
    suite(&cfg, &apps);
    let second = CompileCache::global().stats().since(&mid);
    assert_eq!(second.trace_builds, 0);
    assert_eq!(second.schedule_builds, 0);
    assert_eq!(second.trace_misses, 0);
    assert_eq!(second.schedule_misses, 0);
    assert!(second.trace_hits > 0);
    assert!(second.schedule_hits > 0);

    simkit::pool::set_jobs(0);
}
