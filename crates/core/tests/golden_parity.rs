//! Golden parity: every simulated metric of the app × policy × scheme
//! matrix is pinned bit-for-bit against a committed fixture.
//!
//! The fixture (`golden_parity.txt`) was generated from the build that
//! predates the unified event kernel; any refactor of the event core must
//! keep the default `Deterministic` arbitration byte-identical to it.
//! Regenerate deliberately with:
//!
//! ```text
//! SDDS_REGEN_GOLDEN=1 cargo test -p sdds --test golden_parity
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use sdds::{run, SystemConfig};
use sdds_power::PolicyKind;
use sdds_workloads::{App, WorkloadScale};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_parity.txt")
}

/// FNV-1a over the per-process finish times, pinning each one.
fn finish_hash(finishes: &[simkit::SimDuration]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for f in finishes {
        for b in f.as_micros().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// One matrix cell rendered as `key=value` tokens, one line per cell.
fn cell_line(app: App, policy: &PolicyKind, scheme: bool) -> String {
    let cfg = SystemConfig {
        scale: WorkloadScale::test(),
        ..SystemConfig::paper_defaults()
    }
    .with_policy(policy.clone())
    .with_scheme(scheme);
    let o =
        run(app, &cfg).unwrap_or_else(|e| panic!("{} under {}: {e}", app.name(), policy.name()));
    let r = &o.result;
    let b = &r.buffer;
    let p = &r.prefetch;
    let mut line = String::new();
    write!(
        line,
        "app={} policy={} scheme={} exec_us={} energy_bits={:016x} bytes_r={} bytes_w={} \
         mrr_bits={:016x} events={} finish_hash={:016x} issued={} deferred_producer={} \
         deferred_full={} became_sync={} timed_out={} admitted={} rejected_full={} hits={} \
         hits_in_flight={} misses={} idle_periods={}",
        app.name(),
        policy.name(),
        u8::from(scheme),
        r.exec_time.as_micros(),
        r.energy_joules.to_bits(),
        r.bytes_moved.0,
        r.bytes_moved.1,
        r.mean_read_response.to_bits(),
        r.events,
        finish_hash(&r.per_proc_finish),
        p.issued,
        p.deferred_producer,
        p.deferred_full,
        p.became_sync,
        p.timed_out,
        b.admitted,
        b.rejected_full,
        b.hits,
        b.hits_in_flight,
        b.misses,
        r.idle_histogram.total(),
    )
    .expect("writing to a String cannot fail");
    line
}

fn current_matrix() -> Vec<String> {
    let mut lines = Vec::new();
    for app in App::all() {
        for policy in PolicyKind::paper_strategies() {
            for scheme in [false, true] {
                lines.push(cell_line(app, &policy, scheme));
            }
        }
    }
    lines
}

/// Parses one fixture line into its key=value map (keyed by cell id).
fn parse_line(line: &str) -> (String, BTreeMap<String, String>) {
    let mut map = BTreeMap::new();
    for token in line.split_whitespace() {
        let (k, v) = token
            .split_once('=')
            .unwrap_or_else(|| panic!("malformed fixture token {token:?}"));
        map.insert(k.to_string(), v.to_string());
    }
    let id = format!("{}/{}/{}", map["app"], map["policy"], map["scheme"]);
    (id, map)
}

#[test]
fn matrix_matches_committed_fixture() {
    let path = fixture_path();
    let lines = current_matrix();
    if std::env::var_os("SDDS_REGEN_GOLDEN").is_some() {
        let mut out = String::from(
            "# Golden parity fixture: app x policy x scheme at test scale.\n\
             # Regenerate with SDDS_REGEN_GOLDEN=1 cargo test -p sdds --test golden_parity\n",
        );
        for l in &lines {
            out.push_str(l);
            out.push('\n');
        }
        std::fs::write(&path, out).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let fixture = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let expected: BTreeMap<_, _> = fixture
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(parse_line)
        .collect();
    let actual: BTreeMap<_, _> = lines.iter().map(|l| parse_line(l)).collect();
    assert_eq!(
        expected.keys().collect::<Vec<_>>(),
        actual.keys().collect::<Vec<_>>(),
        "cell set changed; regenerate the fixture deliberately if intended"
    );
    let mut diffs = Vec::new();
    for (id, exp) in &expected {
        let act = &actual[id];
        for (k, v) in exp {
            if act.get(k) != Some(v) {
                diffs.push(format!(
                    "{id}: {k} expected {v} got {}",
                    act.get(k).map_or("<missing>", |s| s.as_str())
                ));
            }
        }
    }
    assert!(
        diffs.is_empty(),
        "golden parity violated in {} place(s):\n{}",
        diffs.len(),
        diffs.join("\n")
    );
}
