//! Cross-policy guarantees of the unified decision layer: every
//! `EnergyPolicy` behind the online comparison — the distilled table
//! lookup, the online learners and the hybrid — preserves the
//! application's bytes under fault injection, and each decision layer is
//! deterministic end to end.

use sdds::{run_mode, table_policy_for, OnlineMode, SystemConfig};
use sdds_compiler::{ProgramTrace, SlotGranularity};
use sdds_power::PolicyKind;
use sdds_workloads::KeyedWorkloadSpec;
use simkit::fault::FaultSpec;

fn base_cfg() -> SystemConfig {
    SystemConfig::paper_defaults()
}

fn keyed_trace(seed: u64) -> ProgramTrace {
    KeyedWorkloadSpec::zipfian_hot_set(seed)
        .program()
        .trace(SlotGranularity::unit())
        .unwrap()
}

/// Every (policy family, fault plan) cell moves exactly the bytes the
/// fault-free twin moves: recovery under any decision layer loses
/// nothing and duplicates nothing.
#[test]
fn no_policy_loses_bytes_under_faults() {
    let cfg = base_cfg();
    let trace = keyed_trace(17);
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("table-lookup", table_policy_for(&trace, &cfg).unwrap()),
        ("online", PolicyKind::online_spin_down_default(17)),
        ("online-speed", PolicyKind::online_multi_speed_default(17)),
        ("hybrid", PolicyKind::hybrid_default(17)),
    ];
    for (name, policy) in policies {
        for scheme in [false, true] {
            let clean_cfg = cfg.with_policy(policy.clone()).with_scheme(scheme);
            let clean = sdds::run_trace(&trace, &clean_cfg).unwrap();
            for (scenario, spec) in [
                ("light", FaultSpec::light(29)),
                ("heavy", FaultSpec::heavy(29)),
            ] {
                let faulty_cfg = clean_cfg.with_fault(Some(spec));
                let faulty = sdds::run_trace(&trace, &faulty_cfg).unwrap();
                assert_eq!(
                    clean.result.bytes_moved, faulty.result.bytes_moved,
                    "{name} (scheme={scheme}) lost bytes under the {scenario} scenario"
                );
            }
        }
    }
}

/// The three decision layers of `repro online` are deterministic: the
/// same seed reproduces execution time and energy bit-for-bit, and all
/// layers agree on the bytes the application moved.
#[test]
fn decision_layers_are_deterministic_and_byte_equal() {
    let cfg = base_cfg();
    let trace = keyed_trace(99);
    let mut bytes = None;
    for mode in OnlineMode::all() {
        let a = run_mode(&trace, &cfg, mode, 99).unwrap();
        let b = run_mode(&trace, &cfg, mode, 99).unwrap();
        assert_eq!(a.result.exec_time, b.result.exec_time, "{mode}");
        assert_eq!(
            a.result.energy_joules.to_bits(),
            b.result.energy_joules.to_bits(),
            "{mode}"
        );
        match bytes {
            None => bytes = Some(a.result.bytes_moved),
            Some(expected) => assert_eq!(
                a.result.bytes_moved, expected,
                "{mode} moved different application bytes"
            ),
        }
    }
}

/// The online policies' jitter comes from the seed: distinct seeds may
/// shift decisions, but never the bytes moved.
#[test]
fn online_seeds_never_change_bytes() {
    let cfg = base_cfg();
    let trace = keyed_trace(3);
    let a = run_mode(&trace, &cfg, OnlineMode::Online, 1).unwrap();
    let b = run_mode(&trace, &cfg, OnlineMode::Online, 2).unwrap();
    assert_eq!(a.result.bytes_moved, b.result.bytes_moved);
}

/// An exhausted or empty forecast table degrades to no power management
/// rather than crashing or stalling the run.
#[test]
fn empty_forecast_table_runs_clean() {
    let cfg = base_cfg();
    let trace = keyed_trace(5);
    let empty = PolicyKind::TableLookup {
        forecasts: std::sync::Arc::new(vec![Vec::new(); cfg.io_nodes]),
    };
    let nopm = sdds::run_trace(&trace, &cfg.with_policy(PolicyKind::NoPm)).unwrap();
    let degraded = sdds::run_trace(&trace, &cfg.with_policy(empty)).unwrap();
    assert_eq!(nopm.result.bytes_moved, degraded.result.bytes_moved);
    assert_eq!(
        nopm.result.energy_joules.to_bits(),
        degraded.result.energy_joules.to_bits(),
        "an empty table must behave exactly like NoPm"
    );
}
