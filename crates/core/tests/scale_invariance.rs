//! Determinism guarantees of the sharded scale-scene kernel.
//!
//! The contract `repro scale` and CI rely on: the digest — and therefore
//! every simulation metric — of a scene run is byte-identical for every
//! worker count, and every metric except the (partition-dependent)
//! trace hash is also identical for every shard count.

use proptest::prelude::*;
use sdds::{run_scale, run_scale_observed, ScaleSceneConfig};
use sdds_runtime::ShardPolicy;
use simkit::shard::merge_events;

/// The digest with its partition-dependent fields (`shards`,
/// `trace_hash`) removed, for comparisons across different shard counts.
fn partition_free(digest: &str) -> String {
    let shards = digest
        .find(",\"shards\":")
        .expect("digest has a shards field");
    let after = shards
        + 1
        + digest[shards + 1..]
            .find(',')
            .expect("a field follows shards");
    let hash = digest
        .find(",\"trace_hash\"")
        .expect("digest has a trace_hash field");
    format!("{}{}}}", &digest[..shards], &digest[after..hash])
}

#[test]
fn mid_size_scene_is_byte_identical_across_jobs() {
    let cfg = ScaleSceneConfig {
        factor: 3.0,
        ..ScaleSceneConfig::default()
    };
    let reference = run_scale(&cfg, 1).expect("scene runs").digest();
    assert!(reference.contains("\"schema\":\"sdds-scale-digest-v1\""));
    for jobs in [2, 4, 8] {
        let digest = run_scale(&cfg, jobs).expect("scene runs").digest();
        assert_eq!(digest, reference, "digest diverged at jobs={jobs}");
    }
}

#[test]
fn mid_size_scene_metrics_survive_any_partition() {
    let auto = run_scale(
        &ScaleSceneConfig {
            factor: 3.0,
            ..ScaleSceneConfig::default()
        },
        2,
    )
    .expect("scene runs");
    assert!(auto.events > 0 && auto.clients > 0);
    let reference = partition_free(&auto.digest());
    for shards in [1, 5, 13] {
        let cfg = ScaleSceneConfig {
            factor: 3.0,
            shards: ShardPolicy::Fixed(shards),
            ..ScaleSceneConfig::default()
        };
        let digest = partition_free(&run_scale(&cfg, 2).expect("scene runs").digest());
        assert_eq!(digest, reference, "metrics diverged at shards={shards}");
    }
}

/// Renders a merged shard-event stream as one line per event, so runs
/// can be compared byte-for-byte rather than structurally.
fn render_stream(obs: &[simkit::shard::ShardObs]) -> String {
    let mut out = String::new();
    for e in merge_events(obs) {
        out.push_str(&format!(
            "{} {} {} {} {}\n",
            e.at.as_micros(),
            e.kind,
            e.slot,
            e.src,
            e.seq
        ));
    }
    out
}

#[test]
fn merged_observer_stream_is_byte_identical_across_jobs_and_partitions() {
    // Telemetry-on runs: the observer's merged span stream from any
    // sharded multi-worker run must be byte-identical to the
    // single-shard single-worker stream, and the run's own digest must
    // be unchanged by observation.
    let base = ScaleSceneConfig {
        factor: 1.0,
        shards: ShardPolicy::Fixed(1),
        ..ScaleSceneConfig::default()
    };
    let (one, obs_one) = run_scale_observed(&base, 1).expect("scene runs");
    let reference = render_stream(&obs_one);
    assert!(!reference.is_empty());
    assert_eq!(
        one.digest(),
        run_scale(&base, 1).expect("scene runs").digest(),
        "observer must not perturb the simulated outcome"
    );
    for (shards, jobs) in [(1usize, 4usize), (7, 2), (13, 8)] {
        let cfg = ScaleSceneConfig {
            factor: 1.0,
            shards: ShardPolicy::Fixed(shards),
            ..ScaleSceneConfig::default()
        };
        let (r, obs) = run_scale_observed(&cfg, jobs).expect("scene runs");
        assert_eq!(obs.len(), shards);
        assert_eq!(
            render_stream(&obs),
            reference,
            "merged stream diverged at shards={shards} jobs={jobs}"
        );
        // Per-epoch deltas reconcile with the kernel's event counters.
        let epoch_events: u64 = obs.iter().flat_map(|o| &o.epochs).map(|d| d.events).sum();
        assert_eq!(epoch_events, r.events);
    }
}

proptest! {
    // Full scene runs per case: keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any small scene, shard count and worker count, the
    /// partition-free digest equals the single-shard single-worker one.
    #[test]
    fn any_partition_and_worker_count_agree(
        scale in 1u32..8,
        shards in 1usize..16,
        jobs in 1usize..9,
    ) {
        let factor = f64::from(scale) * 0.25;
        let base = ScaleSceneConfig {
            factor,
            shards: ShardPolicy::Fixed(1),
            ..ScaleSceneConfig::default()
        };
        let reference = partition_free(&run_scale(&base, 1).expect("scene runs").digest());
        let cfg = ScaleSceneConfig {
            factor,
            shards: ShardPolicy::Fixed(shards),
            ..ScaleSceneConfig::default()
        };
        let digest = partition_free(&run_scale(&cfg, jobs).expect("scene runs").digest());
        prop_assert_eq!(digest, reference);
    }
}
