//! Property: a `SystemConfig` assembled from arbitrary knob values either
//! builds cleanly or is rejected with a typed [`sdds::ConfigError`] —
//! construction and validation never panic, whatever the inputs.

use proptest::prelude::*;
use sdds::{SddsError, SystemConfig};
use sdds_compiler::SlotGranularity;
use sdds_workloads::WorkloadScale;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every knob the builder exposes, drawn from ranges that straddle
    /// the valid/invalid boundary (zero node counts, zero stripes, empty
    /// buffers, non-finite scale factors, zero-quantum granularities).
    #[test]
    fn builder_validates_or_rejects_without_panicking(
        io_nodes in 0usize..33,
        stripe_kb in 0u64..129,
        cache_mb in 0u64..65,
        buffer_mb in 0u64..65,
        procs in 0usize..5,
        factor in prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(-1.0),
            Just(0.0),
            0.05f64..1.5,
        ],
        gap_factor in prop_oneof![Just(0.0), Just(-0.5), 0.05f64..1.5],
        delta in 0u32..50,
        theta in 0u16..9,
        iterations_per_slot in 0u32..4,
    ) {
        let built = SystemConfig::builder()
            .io_nodes(io_nodes)
            .stripe_kb(stripe_kb)
            .cache_mb(cache_mb)
            .buffer_mb(buffer_mb)
            .delta(delta)
            .theta(if theta == 0 { None } else { Some(theta) })
            .granularity(SlotGranularity {
                iterations_per_slot,
                access_bytes_per_slot: None,
            })
            .scale(WorkloadScale {
                procs,
                factor,
                gap_factor,
            })
            .build();
        match built {
            Ok(cfg) => {
                // A successfully built config re-validates, and its
                // inputs really were inside every constraint.
                prop_assert!(cfg.validate().is_ok());
                prop_assert!(io_nodes > 0 && stripe_kb > 0 && procs > 0);
                prop_assert!(factor.is_finite() && factor > 0.0);
                prop_assert!(iterations_per_slot > 0);
                prop_assert!(buffer_mb * 1024 >= stripe_kb);
            }
            Err(e) => {
                // A rejection is a typed, printable error in the config
                // class — never a panic, never an empty message.
                prop_assert!(!e.to_string().is_empty());
                prop_assert_eq!(SddsError::from(e).exit_code(), 3);
            }
        }
    }
}
