//! Compile-time vs. online decision layers on the same workload.
//!
//! The paper's scheme needs the whole access pattern at compile time; the
//! online policy family (`sdds-power`) learns the same idleness signals
//! from the live request stream. This module puts both on one footing:
//!
//! * [`table_policy_for`] distills a compiled schedule into the per-node
//!   idle forecasts a [`PolicyKind::TableLookup`] policy replays — the
//!   compile-time tables expressed as just another [`EnergyPolicy`]
//!   (`sdds_power::EnergyPolicy`) implementation.
//! * [`OnlineMode`] names the three decision layers the `repro online`
//!   experiment compares, and [`run_mode`] runs one of them over an
//!   arbitrary trace.
//!
//! Everything here is deterministic: forecasts are integer microseconds
//! derived from the trace, and the online family draws its jitter from a
//! seeded [`DetRng`](simkit::rng::DetRng) substream.

use crate::config::{compile, run_trace, Outcome, SystemConfig};
use crate::error::SddsError;
use sdds_compiler::ProgramTrace;
use sdds_power::PolicyKind;
use sdds_storage::StripingLayout;
use simkit::SimDuration;
use std::sync::Arc;

/// Which decision layer drives the disks in an online-comparison cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineMode {
    /// The compile-time path: software scheme on, disks driven by a
    /// [`PolicyKind::TableLookup`] policy distilled from the schedule.
    Table,
    /// The online path: no compiler involvement at all — the scheme is
    /// off and the disks are driven by the learning
    /// [`PolicyKind::OnlineMultiSpeed`] policy.
    Online,
    /// The corrected path: scheme on, disks driven by
    /// [`PolicyKind::Hybrid`], which starts from table-calibrated
    /// predictions and switches to online learning once it has seen
    /// enough of the live stream.
    Hybrid,
}

impl OnlineMode {
    /// All modes in report order.
    pub fn all() -> [OnlineMode; 3] {
        [OnlineMode::Table, OnlineMode::Online, OnlineMode::Hybrid]
    }

    /// Stable name used in reports and on the command line.
    pub fn name(&self) -> &'static str {
        match self {
            OnlineMode::Table => "table",
            OnlineMode::Online => "online",
            OnlineMode::Hybrid => "hybrid",
        }
    }

    /// Parses a mode name as accepted on the command line.
    pub fn parse(s: &str) -> Option<OnlineMode> {
        OnlineMode::all().into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for OnlineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Distills a compiled schedule for `trace` into a
/// [`PolicyKind::TableLookup`] policy: per I/O node, the sequence of idle
/// gaps (in microseconds) the schedule predicts between consecutive
/// scheduled accesses on that node.
///
/// Slot boundaries are estimated barrier-style — each slot lasts as long
/// as the slowest process's compute phase in it — which is exactly the
/// signal the compiler's δ-window reasoning uses. Gaps shorter than one
/// scheduling slot are dropped: the runtime never sees them as idleness.
///
/// # Errors
///
/// Returns [`SddsError::Config`] when `cfg` fails validation and
/// [`SddsError::Compile`] when slack analysis or scheduling rejects the
/// trace.
pub fn table_policy_for(trace: &ProgramTrace, cfg: &SystemConfig) -> Result<PolicyKind, SddsError> {
    cfg.validate().map_err(SddsError::Config)?;
    let layout = StripingLayout::new(cfg.stripe_bytes, cfg.io_nodes).map_err(|source| {
        SddsError::Storage {
            app: trace.name.clone(),
            source,
        }
    })?;
    let compiled =
        compile(trace, &layout, &cfg.scheduler).map_err(|source| SddsError::Compile {
            app: trace.name.clone(),
            source,
        })?;

    // Estimated wall-clock start of every slot: slot s begins once the
    // slowest process has finished its compute for slots 0..s.
    let total = trace.total_slots as usize;
    let mut start = vec![SimDuration::ZERO; total + 1];
    let mut acc = SimDuration::ZERO;
    for s in 0..total {
        let per_slot = trace
            .processes
            .iter()
            .filter_map(|p| p.compute.get(s))
            .max()
            .copied()
            .unwrap_or(SimDuration::ZERO);
        acc += per_slot;
        start[s + 1] = acc;
    }

    // Active slots per node under the *scheduled* points.
    let mut active: Vec<Vec<u32>> = vec![Vec::new(); cfg.io_nodes];
    for e in compiled.table.iter() {
        let node = layout.node_of(e.io.file, e.io.offset);
        active[node].push(e.slot);
    }

    let forecasts = active
        .into_iter()
        .map(|mut slots| {
            slots.sort_unstable();
            slots.dedup();
            slots
                .windows(2)
                .filter(|w| w[1] > w[0] + 1)
                .map(|w| {
                    // Idle runs from the end of the active slot to the
                    // start of the next one.
                    let gap = start[w[1] as usize].saturating_sub(start[w[0] as usize + 1]);
                    gap.as_micros()
                })
                .filter(|&us| us > 0)
                .collect::<Vec<u64>>()
        })
        .collect::<Vec<_>>();

    Ok(PolicyKind::TableLookup {
        forecasts: Arc::new(forecasts),
    })
}

/// Runs `trace` under one [`OnlineMode`], returning the end-to-end
/// [`Outcome`].
///
/// The mode overrides `cfg`'s `policy` and `scheme_enabled` fields (the
/// table and hybrid modes run with the scheme on, the online mode with it
/// off); every other knob is taken from `cfg` as given. `seed` feeds the
/// online family's jitter substreams and is ignored by the table mode.
///
/// # Errors
///
/// As for [`run_trace`](crate::run_trace).
pub fn run_mode(
    trace: &ProgramTrace,
    cfg: &SystemConfig,
    mode: OnlineMode,
    seed: u64,
) -> Result<Outcome, SddsError> {
    let cell = match mode {
        OnlineMode::Table => cfg
            .with_policy(table_policy_for(trace, cfg)?)
            .with_scheme(true),
        OnlineMode::Online => cfg
            .with_policy(PolicyKind::online_multi_speed_default(seed))
            .with_scheme(false),
        OnlineMode::Hybrid => cfg
            .with_policy(PolicyKind::hybrid_default(seed))
            .with_scheme(true),
    };
    run_trace(trace, &cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_workloads::{App, WorkloadScale};

    fn test_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_defaults();
        cfg.scale = WorkloadScale::test();
        cfg
    }

    fn test_trace() -> ProgramTrace {
        let cfg = test_cfg();
        App::Sar.program(&cfg.scale).trace(cfg.granularity).unwrap()
    }

    #[test]
    fn distilled_forecasts_cover_every_node() {
        let cfg = test_cfg();
        let trace = test_trace();
        let PolicyKind::TableLookup { forecasts } = table_policy_for(&trace, &cfg).unwrap() else {
            panic!("expected a table-lookup policy");
        };
        assert_eq!(forecasts.len(), cfg.io_nodes);
        // The workload leaves real gaps on at least one node.
        assert!(forecasts.iter().any(|rows| !rows.is_empty()));
        // Forecasts are strictly positive microsecond counts.
        assert!(forecasts.iter().flatten().all(|&us| us > 0));
    }

    #[test]
    fn distillation_is_deterministic() {
        let cfg = test_cfg();
        let trace = test_trace();
        let a = table_policy_for(&trace, &cfg).unwrap();
        let b = table_policy_for(&trace, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn modes_parse_and_roundtrip() {
        for mode in OnlineMode::all() {
            assert_eq!(OnlineMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(OnlineMode::parse("nope"), None);
    }

    #[test]
    fn every_mode_runs_end_to_end() {
        let cfg = test_cfg();
        let trace = test_trace();
        for mode in OnlineMode::all() {
            let o = run_mode(&trace, &cfg, mode, 7).unwrap();
            assert!(
                o.result.exec_time > SimDuration::ZERO,
                "{mode} produced an empty run"
            );
            assert!(o.result.energy_joules > 0.0);
            // Scheme wiring follows the mode.
            match mode {
                OnlineMode::Online => assert_eq!(o.analyzed_accesses, 0),
                _ => assert!(o.analyzed_accesses > 0),
            }
        }
    }

    #[test]
    fn modes_are_deterministic() {
        let cfg = test_cfg();
        let trace = test_trace();
        for mode in OnlineMode::all() {
            let a = run_mode(&trace, &cfg, mode, 11).unwrap();
            let b = run_mode(&trace, &cfg, mode, 11).unwrap();
            assert_eq!(a.result.exec_time, b.result.exec_time, "{mode}");
            assert_eq!(a.result.energy_joules, b.result.energy_joules, "{mode}");
        }
    }
}
