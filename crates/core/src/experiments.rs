//! Drivers regenerating every table and figure of the paper's evaluation
//! (§V). Each function returns structured rows; the `sdds-bench` crate's
//! `repro` binary prints them in the paper's format.
//!
//! | Function | Reproduces |
//! |---|---|
//! | [`table3`] | Table III (Default Scheme exec time + energy) |
//! | [`fig12_cdf`] | Fig. 12(a)/(b) (idle-period CDFs) |
//! | [`fig12_energy`] | Fig. 12(c)/(d) (normalized energy) |
//! | [`fig13_perf`] | Fig. 13(a)/(b) (performance degradation) |
//! | [`fig13c_io_nodes`] | Fig. 13(c) (benefit vs number of I/O nodes) |
//! | [`fig13d_delta`] | Fig. 13(d) (benefit vs δ) |
//! | [`fig14_theta`] | Fig. 14(a)/(b) (benefit and performance vs θ) |
//! | [`cache_sensitivity`] | §V-D's storage-cache capacity study |
//! | [`compile_cost`] | §V-A's compilation-time observation |

use std::sync::atomic::{AtomicU64, Ordering};

use sdds_power::PolicyKind;
use sdds_workloads::App;

use crate::error::{CellFailure, ExperimentError, SddsError};
use crate::metrics::{
    additional_energy_reduction, idle_cdf, normalized_energy, perf_degradation, perf_improvement,
    CdfPoint,
};
use crate::{run, Outcome, SystemConfig};

/// Process-wide per-cell wall-time counters (see [`cell_stats`]).
static CELLS_RUN: AtomicU64 = AtomicU64::new(0);
static CELL_NANOS: AtomicU64 = AtomicU64::new(0);
static COMPILE_NANOS: AtomicU64 = AtomicU64::new(0);
static SIM_NANOS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the per-cell wall-time counters: how many experiment
/// cells have run and how much worker time they consumed. Comparing
/// `busy_seconds` against elapsed wall time makes the `--jobs` speedup
/// measurable in `repro all` output; the compile/simulate split shows
/// where that worker time went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Cells executed so far.
    pub cells: u64,
    /// Total worker-side seconds spent inside cells.
    pub busy_seconds: f64,
    /// Worker seconds in the compile phase: trace extraction, slack
    /// analysis, scheduling, and compile-cache lookups.
    pub compile_seconds: f64,
    /// Worker seconds inside the simulation engine.
    pub sim_seconds: f64,
}

impl CellStats {
    /// Counter-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &CellStats) -> CellStats {
        CellStats {
            cells: self.cells - earlier.cells,
            busy_seconds: self.busy_seconds - earlier.busy_seconds,
            compile_seconds: self.compile_seconds - earlier.compile_seconds,
            sim_seconds: self.sim_seconds - earlier.sim_seconds,
        }
    }
}

/// Current values of the per-cell counters.
pub fn cell_stats() -> CellStats {
    CellStats {
        cells: CELLS_RUN.load(Ordering::Relaxed),
        busy_seconds: CELL_NANOS.load(Ordering::Relaxed) as f64 / 1e9,
        compile_seconds: COMPILE_NANOS.load(Ordering::Relaxed) as f64 / 1e9,
        sim_seconds: SIM_NANOS.load(Ordering::Relaxed) as f64 / 1e9,
    }
}

/// Adds one run's wall-clock phase split (compile side vs simulation) to
/// the process-wide counters; called by the `run*` entry points.
pub(crate) fn note_phase(compile: std::time::Duration, sim: std::time::Duration) {
    COMPILE_NANOS.fetch_add(compile.as_nanos() as u64, Ordering::Relaxed);
    SIM_NANOS.fetch_add(sim.as_nanos() as u64, Ordering::Relaxed);
}

/// Fans the independent cells of an experiment matrix out over the
/// bounded [`simkit::pool`] executor, timing each cell.
///
/// Results come back in input order and each cell is a pure function of
/// its input, so the output is identical for every `--jobs` setting.
/// Every cell runs to completion even when some fail; failures are
/// aggregated into one [`ExperimentError`] afterwards.
fn par_cells<I, T, F>(items: Vec<I>, f: F) -> Result<Vec<T>, ExperimentError>
where
    I: Send,
    T: Send,
    F: Fn(I) -> Result<T, CellFailure> + Sync,
{
    let results = simkit::pool::par_map(items, |item| {
        let started = std::time::Instant::now();
        let out = f(item);
        CELLS_RUN.fetch_add(1, Ordering::Relaxed);
        CELL_NANOS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    });
    collect_cells(results)
}

/// Splits per-cell results into values and an aggregate error.
fn collect_cells<T>(results: Vec<Result<T, CellFailure>>) -> Result<Vec<T>, ExperimentError> {
    let mut out = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(t) => out.push(t),
            Err(e) => failures.push(e),
        }
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(ExperimentError { failures })
    }
}

/// Attaches a cell label to a failed run.
fn labeled<T>(label: String, r: Result<T, SddsError>) -> Result<T, CellFailure> {
    r.map_err(|error| CellFailure { label, error })
}

/// Wraps a standalone (non-matrix) reference run's failure as a
/// one-cell [`ExperimentError`].
fn single(label: String, r: Result<Outcome, SddsError>) -> Result<Outcome, ExperimentError> {
    r.map_err(|error| ExperimentError {
        failures: vec![CellFailure { label, error }],
    })
}

/// The cells of one `apps × (Default + 4 strategies)` comparison matrix,
/// app-major: for each app, the Default Scheme reference first, then the
/// four paper strategies at `scheme`.
fn strategy_cells(apps: &[App]) -> Vec<(App, Option<PolicyKind>)> {
    apps.iter()
        .flat_map(|&app| {
            std::iter::once((app, None)).chain(
                PolicyKind::paper_strategies()
                    .into_iter()
                    .map(move |policy| (app, Some(policy))),
            )
        })
        .collect()
}

/// Runs the full `apps × (Default + strategies)` matrix and reduces each
/// app's group of five outcomes to four per-strategy values.
fn strategy_matrix<T: Send>(
    base: &SystemConfig,
    apps: &[App],
    scheme: bool,
    reduce: impl Fn(&crate::Outcome, &crate::Outcome) -> T + Sync,
) -> Result<Vec<(App, [T; 4])>, ExperimentError> {
    let outcomes = par_cells(strategy_cells(apps), |(app, policy)| match policy {
        None => labeled(
            format!("{app}/default"),
            run(app, &base.with_policy(PolicyKind::NoPm).with_scheme(false)),
        ),
        Some(policy) => {
            let label = format!("{app}/{}", policy.name());
            labeled(
                label,
                run(app, &base.with_policy(policy).with_scheme(scheme)),
            )
        }
    })?;
    Ok(outcomes
        .chunks(5)
        .zip(apps)
        .map(|(group, &app)| {
            let default = &group[0];
            let values: [T; 4] = std::array::from_fn(|i| reduce(default, &group[i + 1]));
            (app, values)
        })
        .collect())
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// One Table III row: measured Default-Scheme numbers next to the paper's.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application.
    pub app: App,
    /// Measured execution time in (simulated) minutes.
    pub exec_minutes: f64,
    /// Measured disk energy in joules.
    pub energy_joules: f64,
    /// The paper's execution time in minutes.
    pub paper_exec_minutes: f64,
    /// The paper's disk energy in joules.
    pub paper_energy_joules: f64,
}

/// Reproduces Table III: every application under the Default Scheme.
///
/// # Errors
///
/// Returns every failed cell aggregated into one [`ExperimentError`]
/// (the remaining cells still run), as do all drivers in this module.
pub fn table3(base: &SystemConfig, apps: &[App]) -> Result<Vec<Table3Row>, ExperimentError> {
    let cfg = base.with_policy(PolicyKind::NoPm).with_scheme(false);
    par_cells(apps.to_vec(), |app| {
        let o = labeled(app.name().to_string(), run(app, &cfg))?;
        let (paper_exec_minutes, paper_energy_joules) = app.table3_reference();
        Ok(Table3Row {
            app,
            exec_minutes: o.result.exec_time.as_secs_f64() / 60.0,
            energy_joules: o.result.energy_joules,
            paper_exec_minutes,
            paper_energy_joules,
        })
    })
}

/// One application's idle-period CDF (a Fig. 12(a)/(b) curve).
#[derive(Debug, Clone)]
pub struct CdfRow {
    /// Application.
    pub app: App,
    /// Cumulative distribution points.
    pub points: Vec<CdfPoint>,
}

/// Reproduces Fig. 12(a) (`scheme = false`) or Fig. 12(b)
/// (`scheme = true`): the CDF of disk idle-period lengths under the
/// Default Scheme's power management (none), with or without the software
/// scheme rescheduling accesses.
pub fn fig12_cdf(
    base: &SystemConfig,
    apps: &[App],
    scheme: bool,
) -> Result<Vec<CdfRow>, ExperimentError> {
    let cfg = base.with_policy(PolicyKind::NoPm).with_scheme(scheme);
    par_cells(apps.to_vec(), |app| {
        let o = labeled(app.name().to_string(), run(app, &cfg))?;
        Ok(CdfRow {
            app,
            points: idle_cdf(&o.result.idle_histogram),
        })
    })
}

/// One application's normalized energy under the four strategies
/// (a group of Fig. 12(c)/(d) bars), in the paper's strategy order:
/// simple, prediction-based, history-based, staggered.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Application.
    pub app: App,
    /// Normalized energy (% of Default) per strategy.
    pub normalized: [f64; 4],
}

/// Reproduces Fig. 12(c) (`scheme = false`) or Fig. 12(d)
/// (`scheme = true`), plus the across-application averages the paper
/// quotes in the text.
pub fn fig12_energy(
    base: &SystemConfig,
    apps: &[App],
    scheme: bool,
) -> Result<(Vec<EnergyRow>, [f64; 4]), ExperimentError> {
    let rows: Vec<EnergyRow> = strategy_matrix(base, apps, scheme, normalized_energy)?
        .into_iter()
        .map(|(app, normalized)| EnergyRow { app, normalized })
        .collect();
    let mut averages = [0.0f64; 4];
    for (i, avg) in averages.iter_mut().enumerate() {
        *avg = mean(&rows.iter().map(|r| r.normalized[i]).collect::<Vec<_>>());
    }
    Ok((rows, averages))
}

/// One application's performance degradation under the four strategies
/// (a group of Fig. 13(a)/(b) bars).
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Application.
    pub app: App,
    /// Degradation (% of Default execution time) per strategy.
    pub degradation: [f64; 4],
}

/// Reproduces Fig. 13(a) (`scheme = false`) or Fig. 13(b)
/// (`scheme = true`), plus the across-application averages.
pub fn fig13_perf(
    base: &SystemConfig,
    apps: &[App],
    scheme: bool,
) -> Result<(Vec<PerfRow>, [f64; 4]), ExperimentError> {
    let rows: Vec<PerfRow> = strategy_matrix(base, apps, scheme, perf_degradation)?
        .into_iter()
        .map(|(app, degradation)| PerfRow { app, degradation })
        .collect();
    let mut averages = [0.0f64; 4];
    for (i, avg) in averages.iter_mut().enumerate() {
        *avg = mean(&rows.iter().map(|r| r.degradation[i]).collect::<Vec<_>>());
    }
    Ok((rows, averages))
}

/// The benefit the scheme adds on top of the history-based strategy for
/// one app at one parameter setting.
fn scheme_benefit_over_history(app: App, cfg: &SystemConfig) -> Result<f64, SddsError> {
    let history = cfg
        .with_policy(PolicyKind::history_based_default())
        .with_scheme(false);
    let reference = run(app, &history)?;
    let improved = run(app, &history.with_scheme(true))?;
    Ok(additional_energy_reduction(&reference, &improved))
}

/// Reproduces Fig. 13(c): the additional energy reduction the scheme
/// brings over the history-based strategy as the number of I/O nodes
/// varies. Returns `(io_nodes, average additional reduction %)` per point.
pub fn fig13c_io_nodes(
    base: &SystemConfig,
    apps: &[App],
    node_counts: &[usize],
) -> Result<Vec<(usize, f64)>, ExperimentError> {
    param_sweep(apps, node_counts, |&n, app| {
        scheme_benefit_over_history(app, &base.with_io_nodes(n))
    })
}

/// Runs the flat `params × apps` cell matrix of a sensitivity sweep and
/// reduces each parameter's app group to its mean.
fn param_sweep<P: Copy + Send + Sync + std::fmt::Display>(
    apps: &[App],
    params: &[P],
    cell: impl Fn(&P, App) -> Result<f64, SddsError> + Sync,
) -> Result<Vec<(P, f64)>, ExperimentError> {
    if apps.is_empty() {
        return Ok(params.iter().map(|&p| (p, 0.0)).collect());
    }
    let cells: Vec<(P, App)> = params
        .iter()
        .flat_map(|&p| apps.iter().map(move |&app| (p, app)))
        .collect();
    let benefits = par_cells(cells, |(p, app)| {
        labeled(format!("{app}@{p}"), cell(&p, app))
    })?;
    Ok(benefits
        .chunks(apps.len())
        .zip(params)
        .map(|(group, &p)| (p, mean(group)))
        .collect())
}

/// Reproduces Fig. 13(d): the additional energy reduction over
/// history-based as δ varies. Returns `(delta, average additional
/// reduction %)` per point.
pub fn fig13d_delta(
    base: &SystemConfig,
    apps: &[App],
    deltas: &[u32],
) -> Result<Vec<(u32, f64)>, ExperimentError> {
    param_sweep(apps, deltas, |&d, app| {
        scheme_benefit_over_history(app, &base.with_delta(d))
    })
}

/// One Fig. 14 point: θ, the additional energy reduction over
/// history-based (Fig. 14(a)), and the performance improvement over the
/// unconstrained (θ-less) scheme (Fig. 14(b)).
#[derive(Debug, Clone, Copy)]
pub struct ThetaPoint {
    /// The θ value.
    pub theta: u16,
    /// Additional energy reduction over history-based, in percent.
    pub energy_reduction: f64,
    /// Performance improvement over the unconstrained scheduler, in
    /// percent.
    pub perf_improvement: f64,
}

/// Reproduces Fig. 14(a)/(b): the θ sensitivity of the scheme on top of
/// the history-based strategy.
pub fn fig14_theta(
    base: &SystemConfig,
    apps: &[App],
    thetas: &[u16],
) -> Result<Vec<ThetaPoint>, ExperimentError> {
    let history = base
        .with_policy(PolicyKind::history_based_default())
        .with_scheme(false);
    // The references are θ-independent: one (history, unconstrained) pair
    // per app, not per (θ, app) cell as the seed computed.
    let references = par_cells(apps.to_vec(), |app| {
        let reference = labeled(format!("{app}/history"), run(app, &history))?;
        let unconstrained = labeled(
            format!("{app}/unconstrained"),
            run(app, &history.with_scheme(true).with_theta(None)),
        )?;
        Ok((reference, unconstrained))
    })?;
    let cells: Vec<(u16, usize)> = thetas
        .iter()
        .flat_map(|&theta| (0..apps.len()).map(move |ai| (theta, ai)))
        .collect();
    let bounded = par_cells(cells, |(theta, ai)| {
        labeled(
            format!("{}@theta={theta}", apps[ai]),
            run(apps[ai], &history.with_scheme(true).with_theta(Some(theta))),
        )
    })?;
    Ok(thetas
        .iter()
        .enumerate()
        .map(|(ti, &theta)| {
            let per_app: Vec<(f64, f64)> = references
                .iter()
                .enumerate()
                .map(|(ai, (reference, unconstrained))| {
                    let b = &bounded[ti * apps.len() + ai];
                    (
                        additional_energy_reduction(reference, b),
                        perf_improvement(unconstrained, b),
                    )
                })
                .collect();
            ThetaPoint {
                theta,
                energy_reduction: mean(&per_app.iter().map(|p| p.0).collect::<Vec<_>>()),
                perf_improvement: mean(&per_app.iter().map(|p| p.1).collect::<Vec<_>>()),
            }
        })
        .collect())
}

/// Reproduces §V-D's storage-cache study: the scheme's additional benefit
/// over history-based at different per-node cache capacities. Returns
/// `(capacity_mb, average additional reduction %)`.
pub fn cache_sensitivity(
    base: &SystemConfig,
    apps: &[App],
    capacities_mb: &[u64],
) -> Result<Vec<(u64, f64)>, ExperimentError> {
    param_sweep(apps, capacities_mb, |&mb, app| {
        scheme_benefit_over_history(app, &base.with_cache_mb(mb))
    })
}

/// Reproduces §V-A's compilation-cost observation: the wall-clock seconds
/// the compiler pass (slack analysis + scheduling) takes per application.
pub fn compile_cost(base: &SystemConfig, apps: &[App]) -> Result<Vec<(App, f64)>, ExperimentError> {
    let cfg = base.with_scheme(true);
    collect_cells(
        apps.iter()
            .map(|&app| {
                let o = labeled(app.name().to_string(), run(app, &cfg))?;
                Ok((app, o.compile_seconds))
            })
            .collect(),
    )
}

/// Convenience: the average energy savings (100 − normalized) of each
/// strategy with and without the scheme — the headline numbers of the
/// abstract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineNumbers {
    /// Savings without the scheme per strategy (simple, prediction,
    /// history, staggered).
    pub without_scheme: [f64; 4],
    /// Savings with the scheme.
    pub with_scheme: [f64; 4],
}

/// Computes the abstract's headline comparison.
///
/// # Errors
///
/// Aggregated per-cell failures, as for [`fig12_energy`].
pub fn headline(base: &SystemConfig, apps: &[App]) -> Result<HeadlineNumbers, ExperimentError> {
    let (_, avg_without) = fig12_energy(base, apps, false)?;
    let (_, avg_with) = fig12_energy(base, apps, true)?;
    Ok(HeadlineNumbers {
        without_scheme: avg_without.map(|n| 100.0 - n),
        with_scheme: avg_with.map(|n| 100.0 - n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_workloads::WorkloadScale;

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_defaults();
        cfg.scale = WorkloadScale::test();
        cfg
    }

    const APPS: [App; 2] = [App::Sar, App::Madbench2];

    #[test]
    fn table3_rows_populate() {
        let rows = table3(&small_cfg(), &APPS).unwrap();
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(r.exec_minutes > 0.0);
            assert!(r.energy_joules > 0.0);
            assert!(r.paper_exec_minutes > 0.0);
        }
    }

    #[test]
    fn fig12_energy_normalizations() {
        let (rows, averages) = fig12_energy(&small_cfg(), &[App::Sar], false).unwrap();
        assert_eq!(rows.len(), 1);
        for n in rows[0].normalized {
            // At tiny test scales the spin-down policies can thrash
            // (exactly the pathology §II describes), so only sanity-check.
            assert!(n.is_finite() && n > 0.0, "normalized energy {n}");
        }
        assert!(averages.iter().all(|&a| a > 0.0));
    }

    #[test]
    fn fig12_cdf_monotone() {
        let rows = fig12_cdf(&small_cfg(), &[App::Hf], false).unwrap();
        let pts = &rows[0].points;
        assert!(!pts.is_empty());
        assert!(pts.windows(2).all(|w| w[0].fraction <= w[1].fraction));
    }

    #[test]
    fn fig13c_runs_over_node_counts() {
        let points = fig13c_io_nodes(&small_cfg(), &[App::Sar], &[4, 8]).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].0, 4);
        assert_eq!(points[1].0, 8);
    }

    #[test]
    fn fig14_points_have_both_metrics() {
        let points = fig14_theta(&small_cfg(), &[App::Sar], &[2, 4]).unwrap();
        assert_eq!(points.len(), 2);
        for p in points {
            assert!(p.energy_reduction.is_finite());
            assert!(p.perf_improvement.is_finite());
        }
    }

    #[test]
    fn compile_cost_reports_positive_times() {
        let costs = compile_cost(&small_cfg(), &[App::Sar]).unwrap();
        assert_eq!(costs.len(), 1);
        assert!(costs[0].1 >= 0.0);
    }
}

/// One multi-application measurement (§VII future work): two applications
/// sharing the storage array.
#[derive(Debug, Clone)]
pub struct MultiAppRow {
    /// The co-scheduled pair.
    pub pair: (App, App),
    /// Normalized energy of the hardware policy alone (% of the pair's
    /// Default Scheme).
    pub policy_only: f64,
    /// Normalized energy with the software scheme on top.
    pub policy_with_scheme: f64,
}

/// Explores the paper's §VII future-work scenario: two applications run
/// concurrently against the same I/O nodes (traces merged, disjoint
/// files), under the history-based strategy with and without the scheme.
pub fn multi_app(
    base: &SystemConfig,
    pairs: &[(App, App)],
) -> Result<Vec<MultiAppRow>, ExperimentError> {
    par_cells(pairs.to_vec(), |(a, b)| {
        let label = format!("{a}+{b}");
        let trace_of = |app: App| {
            app.program(&base.scale)
                .trace(app.granularity())
                .map_err(|e| CellFailure {
                    label: label.clone(),
                    error: SddsError::Compile {
                        app: app.name().to_string(),
                        source: e.into(),
                    },
                })
        };
        let merged = trace_of(a)?.merge(&trace_of(b)?);
        let default = labeled(
            label.clone(),
            crate::run_trace(
                &merged,
                &base.with_policy(PolicyKind::NoPm).with_scheme(false),
            ),
        )?;
        let history = base.with_policy(PolicyKind::history_based_default());
        let policy_only = labeled(
            label.clone(),
            crate::run_trace(&merged, &history.with_scheme(false)),
        )?;
        let with_scheme = labeled(
            label.clone(),
            crate::run_trace(&merged, &history.with_scheme(true)),
        )?;
        Ok(MultiAppRow {
            pair: (a, b),
            policy_only: normalized_energy(&default, &policy_only),
            policy_with_scheme: normalized_energy(&default, &with_scheme),
        })
    })
}

/// One point of the spin-down timeout sweep.
#[derive(Debug, Clone, Copy)]
pub struct TimeoutPoint {
    /// The simple strategy's idleness timeout, in seconds.
    pub timeout_secs: f64,
    /// Normalized energy (% of Default).
    pub normalized_energy: f64,
    /// Performance degradation (% of Default execution time).
    pub perf_degradation: f64,
}

/// Sweeps the simple strategy's timeout, exposing the phase-locked spin
/// oscillation this reproduction documents (DESIGN.md §7): with timeouts
/// below the 16 s spin-up time, one node's wake-up stall idles the other
/// nodes past their timeout and the array thrashes.
pub fn timeout_sweep(
    base: &SystemConfig,
    app: App,
    timeouts_secs: &[f64],
) -> Result<Vec<TimeoutPoint>, ExperimentError> {
    let default = single(
        format!("{app}/default"),
        run(app, &base.with_policy(PolicyKind::NoPm).with_scheme(false)),
    )?;
    par_cells(timeouts_secs.to_vec(), |secs| {
        let kind = PolicyKind::SimpleSpinDown {
            timeout: simkit::SimDuration::from_secs_f64(secs),
        };
        let o = labeled(
            format!("{app}@timeout={secs}"),
            run(app, &base.with_policy(kind).with_scheme(false)),
        )?;
        Ok(TimeoutPoint {
            timeout_secs: secs,
            normalized_energy: normalized_energy(&default, &o),
            perf_degradation: perf_degradation(&default, &o),
        })
    })
}

/// One scheduler-ablation row: a named scheduler variant against the
/// paper-default configuration.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub variant: &'static str,
    /// Energy under history-based + scheme with this scheduler, normalized
    /// to the Default Scheme (%).
    pub normalized_energy: f64,
    /// Compile seconds (slack analysis + scheduling).
    pub compile_seconds: f64,
    /// Accesses moved earlier.
    pub moved_earlier: usize,
}

/// Ablates the scheduling algorithm's design choices on one application:
/// the θ bound, candidate subsampling, and the σ weight function — the
/// knobs DESIGN.md calls out.
pub fn scheduler_ablation(
    base: &SystemConfig,
    app: App,
) -> Result<Vec<AblationRow>, ExperimentError> {
    use sdds_compiler::reuse::WeightFn;
    use sdds_compiler::SchedulerConfig;

    let history = base.with_policy(PolicyKind::history_based_default());
    let default = single(
        format!("{app}/default"),
        run(
            app,
            &history.with_scheme(false).with_policy(PolicyKind::NoPm),
        ),
    )?;

    let variants: Vec<(&'static str, SchedulerConfig)> = vec![
        ("paper-defaults", SchedulerConfig::paper_defaults()),
        ("no-theta", SchedulerConfig::without_theta()),
        ("exhaustive-candidates", SchedulerConfig::exhaustive()),
        (
            "uniform-weights",
            SchedulerConfig {
                // σ(k) = 1 for all k: drop the linear decay of Eq. 3.
                weights: WeightFn::Table(vec![1.0; 21]),
                ..SchedulerConfig::paper_defaults()
            },
        ),
        (
            "delta-0",
            SchedulerConfig {
                delta: 0,
                ..SchedulerConfig::paper_defaults()
            },
        ),
    ];

    par_cells(variants, |(variant, scheduler)| {
        let mut cfg = history.with_scheme(true);
        cfg.scheduler = scheduler;
        let o = labeled(format!("{app}/{variant}"), run(app, &cfg))?;
        Ok(AblationRow {
            variant,
            normalized_energy: normalized_energy(&default, &o),
            compile_seconds: o.compile_seconds,
            moved_earlier: o.moved_earlier,
        })
    })
}

/// One slot-granularity point (§IV-A's `d`).
#[derive(Debug, Clone, Copy)]
pub struct GranularityPoint {
    /// Iterations per scheduling slot.
    pub d: u32,
    /// Additional energy reduction of the scheme over history-based (%).
    pub benefit: f64,
    /// Compile seconds at this granularity.
    pub compile_seconds: f64,
}

/// Sweeps the slot granularity `d` (§IV-A: "we consider d iterations as
/// one unit to measure slacks" to bound scheduling cost): coarser slots
/// compile faster but blur the schedule.
pub fn granularity_sweep(
    base: &SystemConfig,
    app: App,
    ds: &[u32],
) -> Result<Vec<GranularityPoint>, ExperimentError> {
    use sdds_compiler::SlotGranularity;
    par_cells(ds.to_vec(), |d| {
        let mut cfg = base
            .with_policy(PolicyKind::history_based_default())
            .with_scheme(false);
        cfg.granularity = SlotGranularity::grouped(d);
        let reference = labeled(format!("{app}@d={d}/reference"), run(app, &cfg))?;
        let with = labeled(
            format!("{app}@d={d}/scheme"),
            run(app, &cfg.with_scheme(true)),
        )?;
        Ok(GranularityPoint {
            d,
            benefit: additional_energy_reduction(&reference, &with),
            compile_seconds: with.compile_seconds,
        })
    })
}
