//! Derived metrics: the normalized quantities the paper's figures plot.

use simkit::stats::BucketHistogram;
use simkit::SimDuration;

use crate::Outcome;

/// Normalized energy consumption in percent of the Default Scheme
/// (Fig. 12(c)/(d)'s y-axis). Below 100 means energy was saved.
pub fn normalized_energy(default: &Outcome, candidate: &Outcome) -> f64 {
    assert!(
        default.result.energy_joules > 0.0,
        "baseline consumed no energy"
    );
    candidate.result.energy_joules / default.result.energy_joules * 100.0
}

/// Energy savings in percent of the Default Scheme (100 − normalized).
pub fn energy_savings(default: &Outcome, candidate: &Outcome) -> f64 {
    100.0 - normalized_energy(default, candidate)
}

/// Performance degradation in percent of the Default Scheme's execution
/// time (Fig. 13(a)/(b)'s y-axis). Negative values mean the candidate ran
/// faster.
pub fn perf_degradation(default: &Outcome, candidate: &Outcome) -> f64 {
    let base = default.result.exec_time.as_secs_f64();
    assert!(base > 0.0, "baseline took no time");
    (candidate.result.exec_time.as_secs_f64() - base) / base * 100.0
}

/// Additional energy reduction of `improved` over `reference`, in percent
/// of `reference` (Fig. 13(c)/(d) and Fig. 14(a)'s y-axis: the benefit the
/// software scheme brings on top of a hardware policy).
pub fn additional_energy_reduction(reference: &Outcome, improved: &Outcome) -> f64 {
    assert!(reference.result.energy_joules > 0.0);
    (reference.result.energy_joules - improved.result.energy_joules)
        / reference.result.energy_joules
        * 100.0
}

/// Performance improvement of `improved` over `reference`, in percent of
/// `reference`'s execution time (Fig. 14(b)'s y-axis).
pub fn perf_improvement(reference: &Outcome, improved: &Outcome) -> f64 {
    let base = reference.result.exec_time.as_secs_f64();
    assert!(base > 0.0);
    (base - improved.result.exec_time.as_secs_f64()) / base * 100.0
}

/// One labeled point of an idle-period CDF (Fig. 12(a)/(b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Upper edge of the bucket.
    pub upto: SimDuration,
    /// Cumulative fraction of idle periods at or below the edge.
    pub fraction: f64,
}

/// Extracts the CDF points of an idle-period histogram.
pub fn idle_cdf(histogram: &BucketHistogram) -> Vec<CdfPoint> {
    histogram
        .cdf()
        .into_iter()
        .map(|(upto, fraction)| CdfPoint { upto, fraction })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, SystemConfig};
    use sdds_power::PolicyKind;
    use sdds_workloads::{App, WorkloadScale};

    fn outcomes() -> (Outcome, Outcome) {
        let mut cfg = SystemConfig::paper_defaults();
        cfg.scale = WorkloadScale::test();
        let default = run(App::Sar, &cfg).unwrap();
        let candidate = run(
            App::Sar,
            &cfg.with_policy(PolicyKind::history_based_default()),
        )
        .unwrap();
        (default, candidate)
    }

    #[test]
    fn normalized_energy_is_percentage() {
        let (d, c) = outcomes();
        let n = normalized_energy(&d, &c);
        assert!(n.is_finite() && n > 0.0, "unreasonable normalization: {n}");
        let s = energy_savings(&d, &c);
        assert!((n + s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn self_comparison_is_neutral() {
        let (d, _) = outcomes();
        assert!((normalized_energy(&d, &d) - 100.0).abs() < 1e-12);
        assert_eq!(perf_degradation(&d, &d), 0.0);
        assert_eq!(additional_energy_reduction(&d, &d), 0.0);
        assert_eq!(perf_improvement(&d, &d), 0.0);
    }

    #[test]
    fn degradation_and_improvement_are_negatives() {
        let (d, c) = outcomes();
        let deg = perf_degradation(&d, &c);
        let imp = perf_improvement(&d, &c);
        assert!((deg + imp).abs() < 1e-9);
    }

    #[test]
    fn idle_cdf_extraction() {
        let (d, _) = outcomes();
        let cdf = idle_cdf(&d.result.idle_histogram);
        assert!(!cdf.is_empty());
        assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0].fraction <= w[1].fraction));
    }
}
