//! Datacenter-scale scene runs: configuration and entry point.
//!
//! The `repro scale` experiment grows the simulated system with a scale
//! factor `F` (client processes and I/O groups grow linearly, shared-link
//! fan-in grows with `F`) and runs it on the sharded time-domain kernel.
//! [`ScaleSceneConfig`] picks the factor, shard policy and epoch window;
//! [`run_scale`] validates, builds the scene and runs it, returning the
//! jobs-invariant [`SceneResult`].

use sdds_runtime::{SceneResult, ShardPolicy};
use sdds_workloads::{scaled_scene, SceneSpec};
use simkit::SimDuration;

use crate::error::{ConfigError, SddsError};

/// Configuration of one scale-scene run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSceneConfig {
    /// Scene scale factor (`1.0` ≈ 32 clients / 128 disks, `100.0` ≈
    /// 3.2k clients / 12.8k disks).
    pub factor: f64,
    /// How many shards to partition the scene into.
    pub shards: ShardPolicy,
    /// Epoch window; `None` uses the scene's hop latency (the largest
    /// window the lookahead contract allows).
    pub epoch: Option<SimDuration>,
}

impl Default for ScaleSceneConfig {
    fn default() -> Self {
        ScaleSceneConfig {
            factor: 1.0,
            shards: ShardPolicy::Auto,
            epoch: None,
        }
    }
}

impl ScaleSceneConfig {
    /// Rejects non-finite, non-positive or absurd scale factors and a
    /// zero epoch window before any scene is built.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.factor.is_finite() || self.factor <= 0.0 || self.factor > 100_000.0 {
            return Err(ConfigError::BadScaleFactor {
                field: "scene scale",
                value: self.factor,
            });
        }
        if let Some(e) = self.epoch {
            if e.is_zero() {
                return Err(ConfigError::BadScaleFactor {
                    field: "epoch window (us)",
                    value: 0.0,
                });
            }
        }
        Ok(())
    }

    /// The scene spec this configuration generates.
    #[must_use]
    pub fn spec(&self) -> SceneSpec {
        scaled_scene(self.factor)
    }

    /// The effective epoch window for `spec`.
    #[must_use]
    pub fn epoch_for(&self, spec: &SceneSpec) -> SimDuration {
        self.epoch.unwrap_or(spec.hop_latency)
    }
}

/// Builds the scaled scene and runs it on `jobs` workers.
///
/// The returned metrics are bitwise identical for every `jobs` value;
/// wall-clock throughput is the caller's to measure around this call.
pub fn run_scale(cfg: &ScaleSceneConfig, jobs: usize) -> Result<SceneResult, SddsError> {
    cfg.validate().map_err(SddsError::Config)?;
    let spec = cfg.spec();
    let window = cfg.epoch_for(&spec);
    sdds_runtime::run_scene(&spec, cfg.shards, window, jobs).map_err(|source| SddsError::Scene {
        scale: cfg.factor,
        source,
    })
}

/// Like [`run_scale`], but with the sharded kernel's per-shard observer
/// enabled: additionally returns one [`simkit::shard::ShardObs`] per
/// shard for barrier-stall and load-imbalance accounting. The metrics
/// are bitwise identical to [`run_scale`].
pub fn run_scale_observed(
    cfg: &ScaleSceneConfig,
    jobs: usize,
) -> Result<(SceneResult, Vec<simkit::shard::ShardObs>), SddsError> {
    cfg.validate().map_err(SddsError::Config)?;
    let spec = cfg.spec();
    let window = cfg.epoch_for(&spec);
    sdds_runtime::run_scene_observed(&spec, cfg.shards, window, jobs).map_err(|source| {
        SddsError::Scene {
            scale: cfg.factor,
            source,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_runtime::SceneError;

    #[test]
    fn default_config_runs_and_matches_across_jobs() {
        let cfg = ScaleSceneConfig {
            factor: 0.2,
            ..ScaleSceneConfig::default()
        };
        let a = run_scale(&cfg, 1).unwrap();
        let b = run_scale(&cfg, 4).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert!(a.events > 0);
    }

    #[test]
    fn bad_factor_is_a_config_error() {
        for f in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e9] {
            let cfg = ScaleSceneConfig {
                factor: f,
                ..ScaleSceneConfig::default()
            };
            match run_scale(&cfg, 1) {
                Err(e @ SddsError::Config(_)) => assert_eq!(e.exit_code(), 3),
                other => panic!("factor {f}: expected config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_epoch_is_a_scene_error() {
        let cfg = ScaleSceneConfig {
            factor: 0.1,
            epoch: Some(SimDuration::from_secs(1)),
            ..ScaleSceneConfig::default()
        };
        match run_scale(&cfg, 1) {
            Err(
                e @ SddsError::Scene {
                    source: SceneError::BadEpoch { .. },
                    ..
                },
            ) => {
                assert_eq!(e.exit_code(), 6);
            }
            other => panic!("expected BadEpoch, got {other:?}"),
        }
    }
}
