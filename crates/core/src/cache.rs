//! Memoized compilation: traces and scheduling tables computed once per
//! configuration and shared (`Arc`) across experiment cells.
//!
//! The evaluation matrix replays every application under many `(policy,
//! scheme, sensitivity-knob)` combinations, but the *compiler-side* work
//! — tracing the workload and building the scheduling table — depends
//! only on a small key:
//!
//! * **traces** on `(app, workload scale, slot granularity)`;
//! * **scheduling tables** on the trace key plus the striping layout
//!   (I/O-node count, stripe size) and the full [`SchedulerConfig`].
//!
//! Power policies never enter the key, so `table3`/`fig12*`/`fig13*`/
//! `fig14` and the sensitivity sweeps compile each distinct key exactly
//! once instead of once per cell. Hit/miss counters make that claim
//! testable (see `experiments::tests` and `tests/determinism.rs`).
//!
//! Cached values are behind `Arc` and the maps behind plain `Mutex`es:
//! the critical sections only clone an `Arc` or insert one, while the
//! expensive compile itself runs outside the lock (two workers racing on
//! the same cold key may both compile it; both results are identical —
//! the scheduler is a pure function of the key — so either insert is
//! correct and the counters still count at most one miss per *stored*
//! entry).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use sdds_compiler::{
    ProgramTrace, SchedulableAccess, ScheduleTable, SchedulerConfig, SlotGranularity,
};
use sdds_workloads::{App, WorkloadScale};

/// Key of a memoized program trace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// The application.
    pub app: App,
    /// The workload scale the program was generated at.
    pub scale: WorkloadScale,
    /// The slot granularity the trace was extracted at.
    pub granularity: SlotGranularity,
}

/// Key of a memoized compile (slack analysis + scheduling).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// The trace this schedule was compiled from.
    pub trace: TraceKey,
    /// Number of I/O nodes in the striping layout.
    pub io_nodes: usize,
    /// Stripe size in bytes.
    pub stripe_bytes: u64,
    /// The full scheduler configuration.
    pub scheduler: SchedulerConfig,
}

/// The cached result of one compiler pass.
#[derive(Debug)]
pub struct CompiledSchedule {
    /// Slack-analyzed accesses.
    pub accesses: Vec<SchedulableAccess>,
    /// The scheduling table.
    pub table: ScheduleTable,
    /// Wall-clock seconds the *cold* pass took (reported unchanged on
    /// hits, so `compile_cost` stays meaningful under caching).
    pub compile_seconds: f64,
    /// Accesses moved earlier than their original points.
    pub moved_earlier: usize,
    /// Mean advance in slots over all accesses.
    pub mean_advance: f64,
}

/// Cache hit/miss counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Trace lookups served from the cache.
    pub trace_hits: u64,
    /// Trace lookups that had to trace the program.
    pub trace_misses: u64,
    /// Compile lookups served from the cache.
    pub schedule_hits: u64,
    /// Compile lookups that had to run the compiler pass.
    pub schedule_misses: u64,
    /// Times the trace closure actually ran (≥ `trace_misses` only if two
    /// workers raced on a cold key).
    pub trace_builds: u64,
    /// Times the compile closure actually ran.
    pub schedule_builds: u64,
}

impl CacheStats {
    /// Counter-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            trace_hits: self.trace_hits - earlier.trace_hits,
            trace_misses: self.trace_misses - earlier.trace_misses,
            schedule_hits: self.schedule_hits - earlier.schedule_hits,
            schedule_misses: self.schedule_misses - earlier.schedule_misses,
            trace_builds: self.trace_builds - earlier.trace_builds,
            schedule_builds: self.schedule_builds - earlier.schedule_builds,
        }
    }
}

/// The memoizing compilation cache. One global instance backs
/// [`run`](crate::run); tests build private instances via
/// [`CompileCache::new`] to assert exact hit/miss counts.
#[derive(Debug, Default)]
pub struct CompileCache {
    traces: Mutex<HashMap<TraceKey, Arc<ProgramTrace>>>,
    schedules: Mutex<HashMap<ScheduleKey, Arc<CompiledSchedule>>>,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    schedule_hits: AtomicU64,
    schedule_misses: AtomicU64,
    trace_builds: AtomicU64,
    schedule_builds: AtomicU64,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// The process-wide cache used by [`run`](crate::run).
    pub fn global() -> &'static CompileCache {
        static GLOBAL: OnceLock<CompileCache> = OnceLock::new();
        GLOBAL.get_or_init(CompileCache::new)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            schedule_hits: self.schedule_hits.load(Ordering::Relaxed),
            schedule_misses: self.schedule_misses.load(Ordering::Relaxed),
            trace_builds: self.trace_builds.load(Ordering::Relaxed),
            schedule_builds: self.schedule_builds.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct cached traces and schedules.
    pub fn len(&self) -> (usize, usize) {
        (lock(&self.traces).len(), lock(&self.schedules).len())
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }

    /// Returns the trace for `key`, tracing via `trace_fn` on a miss.
    ///
    /// # Errors
    ///
    /// Forwards `trace_fn`'s error on a cold key; nothing is cached and
    /// no miss is counted for a failed build.
    pub fn trace_or_insert<E>(
        &self,
        key: &TraceKey,
        trace_fn: impl FnOnce() -> Result<ProgramTrace, E>,
    ) -> Result<Arc<ProgramTrace>, E> {
        if let Some(hit) = lock(&self.traces).get(key).cloned() {
            self.trace_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Trace outside the lock; see the module docs on benign races.
        self.trace_builds.fetch_add(1, Ordering::Relaxed);
        let traced = Arc::new(trace_fn()?);
        let stored = lock(&self.traces)
            .entry(key.clone())
            .or_insert_with(|| Arc::clone(&traced))
            .clone();
        if Arc::ptr_eq(&stored, &traced) {
            self.trace_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.trace_hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(stored)
    }

    /// Returns the compiled schedule for `key`, compiling via
    /// `compile_fn` on a miss.
    ///
    /// # Errors
    ///
    /// Forwards `compile_fn`'s error on a cold key; nothing is cached and
    /// no miss is counted for a failed build.
    pub fn schedule_or_insert<E>(
        &self,
        key: &ScheduleKey,
        compile_fn: impl FnOnce() -> Result<CompiledSchedule, E>,
    ) -> Result<Arc<CompiledSchedule>, E> {
        if let Some(hit) = lock(&self.schedules).get(key).cloned() {
            self.schedule_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.schedule_builds.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(compile_fn()?);
        let stored = lock(&self.schedules)
            .entry(key.clone())
            .or_insert_with(|| Arc::clone(&compiled))
            .clone();
        if Arc::ptr_eq(&stored, &compiled) {
            self.schedule_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.schedule_hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(stored)
    }
}

/// Locks a cache map, recovering from poisoning: the maps only ever hold
/// fully-built `Arc`s, so a panic in another thread cannot leave an entry
/// half-written.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_compiler::ir::Program;

    fn key(app: App) -> TraceKey {
        TraceKey {
            app,
            scale: WorkloadScale::test(),
            granularity: SlotGranularity::unit(),
        }
    }

    fn tiny_trace() -> Result<ProgramTrace, sdds_compiler::ir::ProgramError> {
        Program::new("tiny", 1).trace(SlotGranularity::unit())
    }

    #[test]
    fn trace_cache_counts_hits_and_misses() {
        let cache = CompileCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let _ = cache
                .trace_or_insert(&key(App::Sar), || {
                    calls += 1;
                    tiny_trace()
                })
                .unwrap();
        }
        let _ = cache
            .trace_or_insert(&key(App::Hf), || {
                calls += 1;
                tiny_trace()
            })
            .unwrap();
        assert_eq!(calls, 2, "one trace per distinct key");
        let stats = cache.stats();
        assert_eq!(stats.trace_misses, 2);
        assert_eq!(stats.trace_hits, 2);
        assert_eq!(cache.len().0, 2);
    }

    #[test]
    fn distinct_scales_are_distinct_keys() {
        let cache = CompileCache::new();
        let mut k2 = key(App::Sar);
        k2.scale.factor = 0.5;
        let _ = cache.trace_or_insert(&key(App::Sar), tiny_trace).unwrap();
        let _ = cache.trace_or_insert(&k2, tiny_trace).unwrap();
        assert_eq!(cache.stats().trace_misses, 2);
    }

    #[test]
    fn stats_since_subtracts() {
        let cache = CompileCache::new();
        let before = cache.stats();
        let _ = cache.trace_or_insert(&key(App::Sar), tiny_trace).unwrap();
        let delta = cache.stats().since(&before);
        assert_eq!(delta.trace_misses, 1);
        assert_eq!(delta.trace_hits, 0);
    }

    #[test]
    fn failed_builds_cache_nothing() {
        let cache = CompileCache::new();
        let err: Result<_, &str> = cache.trace_or_insert(&key(App::Sar), || Err("boom"));
        assert!(err.is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().trace_misses, 0);
        // A later successful build still populates the entry.
        let _ = cache.trace_or_insert(&key(App::Sar), tiny_trace).unwrap();
        assert_eq!(cache.len().0, 1);
    }
}
