//! The workspace-level error hierarchy.
//!
//! Every layer of the stack reports failures through its own typed error
//! — [`StorageError`], [`CompileError`], [`EngineError`] — and this
//! module ties them together under [`SddsError`], the error type of the
//! end-to-end entry points ([`run`](crate::run) and friends). Each
//! variant maps to a distinct process exit code (see
//! [`SddsError::exit_code`]) so scripted callers of the `repro` binary
//! can tell a bad configuration from a compiler rejection from an engine
//! bug without parsing diagnostics.

use std::error::Error;
use std::fmt;

pub use sdds_compiler::CompileError;
pub use sdds_runtime::{EngineError, SceneError};
pub use sdds_storage::StorageError;

/// A rejected [`SystemConfig`](crate::SystemConfig).
///
/// Produced by [`SystemConfig::validate`](crate::SystemConfig::validate)
/// and the [`SystemConfigBuilder`](crate::SystemConfigBuilder); wraps the
/// per-layer validation errors and adds the cross-layer constraints only
/// the full configuration can check.
#[derive(Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// The storage side (striping, RAID, cache, power policy) was
    /// rejected.
    Storage(StorageError),
    /// The compiler scheduling knobs were rejected.
    Scheduler(CompileError),
    /// The fault-injection spec has an out-of-range parameter.
    Fault(simkit::fault::FaultSpecError),
    /// The client-side prefetch buffer cannot hold even one stripe.
    BufferTooSmall {
        /// Configured buffer capacity in bytes.
        buffer_bytes: u64,
        /// Configured stripe size in bytes.
        stripe_bytes: u64,
    },
    /// The slot granularity has a zero iteration or byte quantum.
    ZeroGranularity,
    /// The workload scale has no client processes.
    ZeroProcs,
    /// A workload scale factor is not a finite positive number.
    BadScaleFactor {
        /// Which factor (`"factor"` or `"gap_factor"`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Storage(e) => write!(f, "invalid storage configuration: {e}"),
            ConfigError::Scheduler(e) => write!(f, "invalid scheduler configuration: {e}"),
            ConfigError::Fault(e) => write!(f, "invalid fault-injection spec: {e}"),
            ConfigError::BufferTooSmall {
                buffer_bytes,
                stripe_bytes,
            } => write!(
                f,
                "engine buffer ({buffer_bytes} B) must hold at least one stripe ({stripe_bytes} B)"
            ),
            ConfigError::ZeroGranularity => {
                write!(f, "slot granularity quanta must be positive")
            }
            ConfigError::ZeroProcs => {
                write!(f, "workload scale needs at least one client process")
            }
            ConfigError::BadScaleFactor { field, value } => write!(
                f,
                "workload scale `{field}` must be a finite positive number, got {value}"
            ),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Storage(e) => Some(e),
            ConfigError::Scheduler(e) => Some(e),
            ConfigError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ConfigError {
    fn from(e: StorageError) -> Self {
        ConfigError::Storage(e)
    }
}

/// Top-level error of the end-to-end entry points.
///
/// The `app` field on the run-time variants names the workload (or
/// merged trace) whose run failed, so multi-cell drivers can attribute
/// failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum SddsError {
    /// The configuration was rejected before anything ran.
    Config(ConfigError),
    /// Tracing or scheduling the workload failed.
    Compile {
        /// The workload being compiled.
        app: String,
        /// The compiler's rejection.
        source: CompileError,
    },
    /// Building the storage array failed.
    Storage {
        /// The workload being set up.
        app: String,
        /// The storage layer's rejection.
        source: StorageError,
    },
    /// The execution engine rejected or aborted the run.
    Engine {
        /// The workload being run.
        app: String,
        /// The engine's error.
        source: EngineError,
    },
    /// A sharded scale-scene run was rejected or aborted.
    Scene {
        /// The scene's scale factor.
        scale: f64,
        /// The scene layer's error.
        source: SceneError,
    },
}

impl SddsError {
    /// The process exit code for this error class: 3 for configuration,
    /// 4 for compile, 5 for storage, 6 for engine errors. (The `repro`
    /// CLI reserves 0 for success, 2 for usage errors, and 1 for
    /// everything else, e.g. I/O failures writing outputs.)
    pub fn exit_code(&self) -> i32 {
        match self {
            SddsError::Config(_) => 3,
            SddsError::Compile { .. } => 4,
            SddsError::Storage { .. } => 5,
            SddsError::Engine { .. } | SddsError::Scene { .. } => 6,
        }
    }
}

impl fmt::Display for SddsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SddsError::Config(e) => write!(f, "configuration rejected: {e}"),
            SddsError::Compile { app, source } => {
                write!(f, "compiling workload `{app}` failed: {source}")
            }
            SddsError::Storage { app, source } => {
                write!(f, "building storage for `{app}` failed: {source}")
            }
            SddsError::Engine { app, source } => {
                write!(f, "running `{app}` failed: {source}")
            }
            SddsError::Scene { scale, source } => {
                write!(f, "running scale-{scale} scene failed: {source}")
            }
        }
    }
}

impl Error for SddsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SddsError::Config(e) => Some(e),
            SddsError::Compile { source, .. } => Some(source),
            SddsError::Storage { source, .. } => Some(source),
            SddsError::Engine { source, .. } => Some(source),
            SddsError::Scene { source, .. } => Some(source),
        }
    }
}

impl From<ConfigError> for SddsError {
    fn from(e: ConfigError) -> Self {
        SddsError::Config(e)
    }
}

/// One failed cell of an experiment matrix.
#[derive(Debug)]
pub struct CellFailure {
    /// Which cell failed (e.g. `"sar/history-based"`).
    pub label: String,
    /// Why it failed.
    pub error: SddsError,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell {}: {}", self.label, self.error)
    }
}

/// One or more cells of an experiment matrix failed.
///
/// Drivers in [`experiments`](crate::experiments) run every cell to
/// completion and aggregate the failures, so a single bad cell reports
/// alongside — not instead of — the rest of the matrix's problems.
#[derive(Debug)]
pub struct ExperimentError {
    /// Every failed cell, in matrix order.
    pub failures: Vec<CellFailure>,
}

impl ExperimentError {
    /// The exit code of the most severe failed cell (the maximum of the
    /// per-cell [`SddsError::exit_code`] values).
    pub fn exit_code(&self) -> i32 {
        self.failures
            .iter()
            .map(|f| f.error.exit_code())
            .max()
            .unwrap_or(1)
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} experiment cell(s) failed", self.failures.len())?;
        for failure in &self.failures {
            write!(f, "\n  {failure}")?;
        }
        Ok(())
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.failures
            .first()
            .map(|f| &f.error as &(dyn Error + 'static))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let config = SddsError::Config(ConfigError::ZeroProcs);
        let compile = SddsError::Compile {
            app: "sar".into(),
            source: CompileError::EmptyTrace,
        };
        let storage = SddsError::Storage {
            app: "sar".into(),
            source: StorageError::ZeroStripe,
        };
        let engine = SddsError::Engine {
            app: "sar".into(),
            source: EngineError::ZeroBuffer,
        };
        assert_eq!(config.exit_code(), 3);
        assert_eq!(compile.exit_code(), 4);
        assert_eq!(storage.exit_code(), 5);
        assert_eq!(engine.exit_code(), 6);
    }

    #[test]
    fn display_chains_are_readable() {
        let err = SddsError::Config(ConfigError::Storage(StorageError::ZeroStripe));
        assert_eq!(
            err.to_string(),
            "configuration rejected: invalid storage configuration: stripe size must be positive"
        );
        // The source chain is walkable down to the leaf.
        let mut depth = 0;
        let mut cur: &dyn Error = &err;
        while let Some(next) = cur.source() {
            cur = next;
            depth += 1;
        }
        assert_eq!(depth, 2);
    }

    #[test]
    fn experiment_error_reports_worst_cell() {
        let err = ExperimentError {
            failures: vec![
                CellFailure {
                    label: "sar/simple".into(),
                    error: SddsError::Config(ConfigError::ZeroProcs),
                },
                CellFailure {
                    label: "hf/staggered".into(),
                    error: SddsError::Engine {
                        app: "hf".into(),
                        source: EngineError::Deadlock { blocked: 1 },
                    },
                },
            ],
        };
        assert_eq!(err.exit_code(), 6);
        let msg = err.to_string();
        assert!(msg.starts_with("2 experiment cell(s) failed"));
        assert!(msg.contains("cell sar/simple:"));
        assert!(msg.contains("cell hf/staggered:"));
    }
}
