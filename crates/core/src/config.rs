//! System configuration and the end-to-end runner.

use crate::cache::{CompileCache, CompiledSchedule, ScheduleKey, TraceKey};
use crate::error::{CompileError, ConfigError, EngineError, SddsError, StorageError};
use sdds_compiler::ir::Program;
use sdds_compiler::{analyze_slacks, SchedulerConfig, SlotGranularity};
use sdds_disk::DiskParams;
use sdds_power::PolicyKind;
use sdds_runtime::{CompiledPlan, Engine, EngineConfig, RunResult};
use sdds_storage::{CacheConfig, NodeConfig, RaidConfig, RaidLevel, StorageConfig, StripingLayout};
use sdds_workloads::{App, WorkloadScale};
use simkit::fault::{FaultPlan, FaultSpec};
use simkit::kernel::ArbitrationPolicy;
use simkit::SimDuration;

/// The full simulated platform plus framework knobs — one value per
/// experimental configuration.
///
/// Field defaults come from Table II; the sensitivity experiments of §V-D
/// vary exactly one field at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of I/O nodes (Table II: 8).
    pub io_nodes: usize,
    /// Stripe size in bytes (Table II: 64 KB).
    pub stripe_bytes: u64,
    /// RAID organization inside each I/O node (Table II lists levels 5
    /// and 10; 5 is the default).
    pub raid_level: RaidLevel,
    /// Member disks per I/O node.
    pub disks_per_node: usize,
    /// Member-disk timing and power parameters.
    pub disk: DiskParams,
    /// Per-node storage-cache configuration (Table II: 64 MB).
    pub cache: CacheConfig,
    /// The hardware power-saving strategy.
    pub policy: PolicyKind,
    /// Client-side engine parameters (network, prefetch buffer).
    pub engine: EngineConfig,
    /// Compiler scheduling parameters (δ = 20, θ = 4 per Table II).
    pub scheduler: SchedulerConfig,
    /// Scheduling-slot granularity.
    pub granularity: SlotGranularity,
    /// Whether the software-directed scheduling framework is applied.
    pub scheme_enabled: bool,
    /// Workload scale (32 processes at paper scale).
    pub scale: WorkloadScale,
    /// Whether to collect structured trace events and metrics during the
    /// run (attached to the outcome as a
    /// [`TelemetryReport`](sdds_runtime::TelemetryReport)). Off by
    /// default; telemetry never changes simulated results.
    pub telemetry: bool,
    /// Optional fault-injection scenario. `None` (the default) leaves
    /// every simulated metric bit-for-bit identical to a build without
    /// the fault subsystem; `Some` expands deterministically into a
    /// per-disk [`FaultPlan`] inside
    /// [`storage_config`](SystemConfig::storage_config).
    pub fault: Option<FaultSpec>,
}

impl SystemConfig {
    /// Table II defaults with no power management and the scheme off (the
    /// paper's Default Scheme, which all results are normalized against).
    pub fn paper_defaults() -> Self {
        SystemConfig {
            io_nodes: 8,
            stripe_bytes: 64 * 1024,
            // Power management happens at the I/O-node level and the paper
            // "uses the terms I/O node and disk interchangeably" (§II), so
            // the default models one disk per node; RAID 5/10 remain
            // available for the intra-node organizations Table II lists.
            raid_level: RaidLevel::Single,
            disks_per_node: 1,
            disk: DiskParams::paper_defaults(),
            cache: CacheConfig::paper_defaults(),
            policy: PolicyKind::NoPm,
            engine: EngineConfig::paper_defaults(),
            scheduler: SchedulerConfig::paper_defaults(),
            granularity: SlotGranularity::unit(),
            scheme_enabled: false,
            scale: WorkloadScale::paper(),
            telemetry: false,
            fault: None,
        }
    }

    /// Returns a copy with a different power policy.
    pub fn with_policy(&self, policy: PolicyKind) -> Self {
        SystemConfig {
            policy,
            ..self.clone()
        }
    }

    /// Returns a copy with the software scheme switched on or off.
    pub fn with_scheme(&self, enabled: bool) -> Self {
        SystemConfig {
            scheme_enabled: enabled,
            ..self.clone()
        }
    }

    /// Returns a copy with telemetry collection switched on or off.
    pub fn with_telemetry(&self, enabled: bool) -> Self {
        SystemConfig {
            telemetry: enabled,
            ..self.clone()
        }
    }

    /// Returns a copy with a different same-time arbitration policy for
    /// every event calendar in the platform (engine and storage side).
    /// The stored knob lives on the engine configuration;
    /// [`SystemConfig::storage_config`] propagates it to the nodes.
    pub fn with_arbitration(&self, arbitration: ArbitrationPolicy) -> Self {
        let mut c = self.clone();
        c.engine.arbitration = arbitration;
        c
    }

    /// Returns a copy running under a fault-injection scenario (or with
    /// faults removed when `fault` is `None`).
    ///
    /// Enabling faults also arms the engine's prefetch timeout (when not
    /// already set) at 30 simulated seconds — far beyond any shipped
    /// crash window, so it never fires in practice but guarantees the
    /// engine cannot deadlock on a prefetch lost to a fault.
    pub fn with_fault(&self, fault: Option<FaultSpec>) -> Self {
        let mut c = self.clone();
        if fault.is_some() && c.engine.prefetch_timeout.is_none() {
            c.engine.prefetch_timeout = Some(SimDuration::from_secs(30));
        }
        c.fault = fault;
        c
    }

    /// Returns a copy with a different number of I/O nodes (Fig. 13(c)).
    pub fn with_io_nodes(&self, io_nodes: usize) -> Self {
        SystemConfig {
            io_nodes,
            ..self.clone()
        }
    }

    /// Returns a copy with a different δ (Fig. 13(d)).
    pub fn with_delta(&self, delta: u32) -> Self {
        let mut c = self.clone();
        c.scheduler.delta = delta;
        c
    }

    /// Returns a copy with a different θ (Fig. 14); `None` removes the
    /// constraint.
    pub fn with_theta(&self, theta: Option<u16>) -> Self {
        let mut c = self.clone();
        c.scheduler.theta = theta;
        c
    }

    /// Returns a copy with a different per-node storage-cache capacity
    /// (§V-D's cache sensitivity).
    pub fn with_cache_mb(&self, megabytes: u64) -> Self {
        let mut c = self.clone();
        c.cache.capacity_bytes = megabytes * 1024 * 1024;
        c
    }

    /// Checks every cross-layer constraint of this configuration:
    /// striping and RAID geometry, cache capacity, power-policy knobs,
    /// scheduler knobs, prefetch-buffer capacity versus stripe size,
    /// slot-granularity quanta, and the workload scale.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        StripingLayout::new(self.stripe_bytes, self.io_nodes)?;
        RaidConfig::new(
            self.raid_level,
            self.disks_per_node,
            self.stripe_bytes,
            self.disk.sector_bytes,
        )?;
        self.cache.validate()?;
        self.policy
            .validate(&self.disk)
            .map_err(sdds_storage::StorageError::from)?;
        self.scheduler.validate().map_err(ConfigError::Scheduler)?;
        if self.engine.buffer_capacity < self.stripe_bytes {
            return Err(ConfigError::BufferTooSmall {
                buffer_bytes: self.engine.buffer_capacity,
                stripe_bytes: self.stripe_bytes,
            });
        }
        if self.granularity.iterations_per_slot == 0
            || self.granularity.access_bytes_per_slot == Some(0)
        {
            return Err(ConfigError::ZeroGranularity);
        }
        if self.scale.procs == 0 {
            return Err(ConfigError::ZeroProcs);
        }
        for (field, value) in [
            ("factor", self.scale.factor),
            ("gap_factor", self.scale.gap_factor),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(ConfigError::BadScaleFactor { field, value });
            }
        }
        if let Some(spec) = &self.fault {
            spec.validate().map_err(ConfigError::Fault)?;
        }
        Ok(())
    }

    /// A validating builder seeded with [`SystemConfig::paper_defaults`].
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig::paper_defaults(),
        }
    }

    /// The storage-side configuration this system describes.
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] when the striping or RAID geometry is
    /// invalid (never after a successful [`SystemConfig::validate`]).
    pub fn storage_config(&self) -> Result<StorageConfig, StorageError> {
        Ok(StorageConfig {
            layout: StripingLayout::new(self.stripe_bytes, self.io_nodes)?,
            node: NodeConfig {
                cache: self.cache.clone(),
                raid: RaidConfig::new(
                    self.raid_level,
                    self.disks_per_node,
                    self.stripe_bytes,
                    self.disk.sector_bytes,
                )?,
                disk: self.disk.clone(),
                policy: self.policy.clone(),
                hit_latency: SimDuration::from_micros(500),
                arbitration: self.engine.arbitration,
                faults: self.fault.as_ref().map(|spec| {
                    FaultPlan::generate(
                        spec,
                        self.io_nodes,
                        self.disks_per_node,
                        self.disk.total_sectors(),
                    )
                }),
            },
        })
    }
}

/// Builds a [`SystemConfig`] knob by knob, validating everything at
/// [`build`](SystemConfigBuilder::build) time.
///
/// ```
/// use sdds::SystemConfig;
///
/// let cfg = SystemConfig::builder()
///     .io_nodes(4)
///     .stripe_kb(128)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.io_nodes, 4);
///
/// // Invalid combinations are rejected with a typed error:
/// assert!(SystemConfig::builder().io_nodes(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Sets the number of I/O nodes.
    pub fn io_nodes(mut self, io_nodes: usize) -> Self {
        self.cfg.io_nodes = io_nodes;
        self
    }

    /// Sets the stripe size in kilobytes.
    pub fn stripe_kb(mut self, kb: u64) -> Self {
        self.cfg.stripe_bytes = kb * 1024;
        self
    }

    /// Sets the intra-node RAID organization.
    pub fn raid(mut self, level: RaidLevel, disks_per_node: usize) -> Self {
        self.cfg.raid_level = level;
        self.cfg.disks_per_node = disks_per_node;
        self
    }

    /// Sets the per-node storage-cache capacity in megabytes.
    pub fn cache_mb(mut self, megabytes: u64) -> Self {
        self.cfg.cache.capacity_bytes = megabytes * 1024 * 1024;
        self
    }

    /// Sets the client-side prefetch-buffer capacity in megabytes.
    pub fn buffer_mb(mut self, megabytes: u64) -> Self {
        self.cfg.engine.buffer_capacity = megabytes * 1024 * 1024;
        self
    }

    /// Sets the hardware power-saving strategy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Sets the scheduling window δ.
    pub fn delta(mut self, delta: u32) -> Self {
        self.cfg.scheduler.delta = delta;
        self
    }

    /// Sets the per-slot bound θ; `None` removes the constraint.
    pub fn theta(mut self, theta: Option<u16>) -> Self {
        self.cfg.scheduler.theta = theta;
        self
    }

    /// Sets the scheduling-slot granularity.
    pub fn granularity(mut self, granularity: SlotGranularity) -> Self {
        self.cfg.granularity = granularity;
        self
    }

    /// Switches the software-directed scheduling scheme on or off.
    pub fn scheme(mut self, enabled: bool) -> Self {
        self.cfg.scheme_enabled = enabled;
        self
    }

    /// Sets the workload scale.
    pub fn scale(mut self, scale: WorkloadScale) -> Self {
        self.cfg.scale = scale;
        self
    }

    /// Switches telemetry collection (trace events + metrics) on or off.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.cfg.telemetry = enabled;
        self
    }

    /// Sets the same-time arbitration policy for every event calendar in
    /// the platform (see [`SystemConfig::with_arbitration`]).
    pub fn arbitration(mut self, arbitration: ArbitrationPolicy) -> Self {
        self.cfg = self.cfg.with_arbitration(arbitration);
        self
    }

    /// Arms a fault-injection scenario (see [`SystemConfig::with_fault`]).
    pub fn fault(mut self, spec: FaultSpec) -> Self {
        self.cfg = self.cfg.with_fault(Some(spec));
        self
    }

    /// Validates the accumulated configuration and returns it.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`]; see
    /// [`SystemConfig::validate`].
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// The result of one end-to-end run, together with compile-side statistics.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Runtime results: execution time, energy, idle CDF, buffer stats.
    pub result: RunResult,
    /// Number of I/O accesses analyzed (0 when the scheme is off).
    pub analyzed_accesses: usize,
    /// Accesses moved earlier than their original points.
    pub moved_earlier: usize,
    /// Mean advance in slots over all accesses.
    pub mean_advance: f64,
    /// Wall-clock time the compiler pass took (slack analysis plus
    /// scheduling; the paper reports ~1.4 s worst case).
    pub compile_seconds: f64,
}

/// Maps an [`EngineError`] from one run onto [`SddsError`], peeling the
/// storage-rejection case out to its own class (and exit code).
fn engine_error(app: &str, e: EngineError) -> SddsError {
    match e {
        EngineError::Storage(source) => SddsError::Storage {
            app: app.to_string(),
            source,
        },
        source => SddsError::Engine {
            app: app.to_string(),
            source,
        },
    }
}

/// Runs `app` under `cfg` end to end, memoizing compiler work in the
/// process-wide [`CompileCache`](crate::cache::CompileCache).
///
/// # Errors
///
/// Returns [`SddsError::Config`] when `cfg` fails validation, and the
/// compile/storage/engine variants when the corresponding layer rejects
/// or aborts the run.
pub fn run(app: App, cfg: &SystemConfig) -> Result<Outcome, SddsError> {
    run_with(app, cfg, CompileCache::global())
}

/// [`run`] against an explicit compilation cache (tests use a private
/// cache to assert exact hit/miss/build counts).
///
/// # Errors
///
/// As for [`run`].
pub fn run_with(app: App, cfg: &SystemConfig, cache: &CompileCache) -> Result<Outcome, SddsError> {
    cfg.validate().map_err(SddsError::Config)?;
    let phase_started = std::time::Instant::now();
    let trace_key = TraceKey {
        app,
        scale: cfg.scale,
        granularity: cfg.granularity,
    };
    let trace = cache
        .trace_or_insert(&trace_key, || {
            app.program(&cfg.scale)
                .trace(cfg.granularity)
                .map_err(CompileError::from)
        })
        .map_err(|source| SddsError::Compile {
            app: app.name().to_string(),
            source,
        })?;
    let storage = cfg.storage_config().map_err(|source| SddsError::Storage {
        app: app.name().to_string(),
        source,
    })?;
    let mut engine = Engine::new(cfg.engine.clone(), storage.clone())
        .map_err(|e| engine_error(app.name(), e))?;
    if cfg.telemetry {
        engine.enable_telemetry();
    }
    if cfg.scheme_enabled {
        let schedule_key = ScheduleKey {
            trace: trace_key,
            io_nodes: cfg.io_nodes,
            stripe_bytes: cfg.stripe_bytes,
            scheduler: cfg.scheduler.clone(),
        };
        let compiled = cache
            .schedule_or_insert(&schedule_key, || {
                compile(&trace, &storage.layout, &cfg.scheduler)
            })
            .map_err(|source| SddsError::Compile {
                app: app.name().to_string(),
                source,
            })?;
        let compile_elapsed = phase_started.elapsed();
        let sim_started = std::time::Instant::now();
        let result = engine
            .run(
                &trace,
                Some(CompiledPlan::new(&compiled.accesses, &compiled.table)),
            )
            .map_err(|e| engine_error(app.name(), e))?;
        crate::experiments::note_phase(compile_elapsed, sim_started.elapsed());
        Ok(Outcome {
            result,
            analyzed_accesses: compiled.accesses.len(),
            moved_earlier: compiled.moved_earlier,
            mean_advance: compiled.mean_advance,
            compile_seconds: compiled.compile_seconds,
        })
    } else {
        let compile_elapsed = phase_started.elapsed();
        let sim_started = std::time::Instant::now();
        let result = engine
            .run(&trace, None)
            .map_err(|e| engine_error(app.name(), e))?;
        crate::experiments::note_phase(compile_elapsed, sim_started.elapsed());
        Ok(Outcome {
            result,
            analyzed_accesses: 0,
            moved_earlier: 0,
            mean_advance: 0.0,
            compile_seconds: 0.0,
        })
    }
}

/// One timed compiler pass: slack analysis plus scheduling.
pub(crate) fn compile(
    trace: &sdds_compiler::ProgramTrace,
    layout: &sdds_storage::StripingLayout,
    scheduler: &SchedulerConfig,
) -> Result<CompiledSchedule, CompileError> {
    let started = std::time::Instant::now();
    let accesses = analyze_slacks(trace, layout)?;
    let table = scheduler.schedule(&accesses, trace)?;
    let compile_seconds = started.elapsed().as_secs_f64();
    let moved_earlier = table.moved_earlier();
    let mean_advance = table.mean_advance();
    Ok(CompiledSchedule {
        accesses,
        table,
        compile_seconds,
        moved_earlier,
        mean_advance,
    })
}

/// Runs an arbitrary loop-nest program under `cfg`: traces it, optionally
/// compiles a schedule, and simulates execution. Arbitrary programs have
/// no cache identity, so this path never memoizes.
///
/// # Errors
///
/// As for [`run`]; a program that fails validation or exceeds the
/// supported slot count reports as [`SddsError::Compile`].
pub fn run_program(
    program: &Program,
    granularity: SlotGranularity,
    cfg: &SystemConfig,
) -> Result<Outcome, SddsError> {
    let trace = program.trace(granularity).map_err(|e| SddsError::Compile {
        app: program.name().to_string(),
        source: CompileError::from(e),
    })?;
    run_trace(&trace, cfg)
}

/// Runs an already-extracted program trace under `cfg` — the entry point
/// for multi-application workloads built with
/// [`ProgramTrace::merge`](sdds_compiler::ProgramTrace::merge). Merged
/// traces have no cache identity, so this path never memoizes.
///
/// # Errors
///
/// As for [`run`].
pub fn run_trace(
    trace: &sdds_compiler::ProgramTrace,
    cfg: &SystemConfig,
) -> Result<Outcome, SddsError> {
    cfg.validate().map_err(SddsError::Config)?;
    let phase_started = std::time::Instant::now();
    let app = trace.name.clone();
    let storage = cfg.storage_config().map_err(|source| SddsError::Storage {
        app: app.clone(),
        source,
    })?;
    let mut engine =
        Engine::new(cfg.engine.clone(), storage.clone()).map_err(|e| engine_error(&app, e))?;
    if cfg.telemetry {
        engine.enable_telemetry();
    }
    if cfg.scheme_enabled {
        let compiled = compile(trace, &storage.layout, &cfg.scheduler).map_err(|source| {
            SddsError::Compile {
                app: app.clone(),
                source,
            }
        })?;
        let compile_elapsed = phase_started.elapsed();
        let sim_started = std::time::Instant::now();
        let result = engine
            .run(
                trace,
                Some(CompiledPlan::new(&compiled.accesses, &compiled.table)),
            )
            .map_err(|e| engine_error(&app, e))?;
        crate::experiments::note_phase(compile_elapsed, sim_started.elapsed());
        Ok(Outcome {
            result,
            analyzed_accesses: compiled.accesses.len(),
            moved_earlier: compiled.moved_earlier,
            mean_advance: compiled.mean_advance,
            compile_seconds: compiled.compile_seconds,
        })
    } else {
        let compile_elapsed = phase_started.elapsed();
        let sim_started = std::time::Instant::now();
        let result = engine.run(trace, None).map_err(|e| engine_error(&app, e))?;
        crate::experiments::note_phase(compile_elapsed, sim_started.elapsed());
        Ok(Outcome {
            result,
            analyzed_accesses: 0,
            moved_earlier: 0,
            mean_advance: 0.0,
            compile_seconds: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_defaults();
        cfg.scale = WorkloadScale::test();
        cfg
    }

    #[test]
    fn default_scheme_runs_every_app() {
        let cfg = test_cfg();
        for app in App::all() {
            let o = run(app, &cfg).unwrap();
            assert!(o.result.exec_time > SimDuration::ZERO, "{app} ran");
            assert!(o.result.energy_joules > 0.0);
            assert_eq!(o.analyzed_accesses, 0);
        }
    }

    #[test]
    fn scheme_compiles_and_runs() {
        let cfg = test_cfg().with_scheme(true);
        let o = run(App::Sar, &cfg).unwrap();
        assert!(o.analyzed_accesses > 0);
        assert!(o.compile_seconds >= 0.0);
        assert!(o.result.exec_time > SimDuration::ZERO);
    }

    #[test]
    fn builders_change_one_knob() {
        let base = SystemConfig::paper_defaults();
        assert_eq!(base.with_io_nodes(16).io_nodes, 16);
        assert_eq!(base.with_delta(40).scheduler.delta, 40);
        assert_eq!(base.with_theta(Some(2)).scheduler.theta, Some(2));
        assert_eq!(base.with_theta(None).scheduler.theta, None);
        assert_eq!(
            base.with_cache_mb(32).cache.capacity_bytes,
            32 * 1024 * 1024
        );
        assert!(base.with_scheme(true).scheme_enabled);
        assert_eq!(
            base.with_policy(PolicyKind::staggered_default()).policy,
            PolicyKind::staggered_default()
        );
        // The base is untouched.
        assert_eq!(base.io_nodes, 8);
        assert!(!base.scheme_enabled);
    }

    #[test]
    fn storage_config_reflects_fields() {
        let cfg = SystemConfig::paper_defaults().with_io_nodes(4);
        let sc = cfg.storage_config().unwrap();
        assert_eq!(sc.layout.io_nodes(), 4);
        assert_eq!(sc.layout.stripe_bytes(), 64 * 1024);
        assert_eq!(sc.node.raid.disks(), 1);
        // The Table II RAID organizations remain available.
        let mut raid5 = SystemConfig::paper_defaults();
        raid5.raid_level = sdds_storage::RaidLevel::Raid5;
        raid5.disks_per_node = 4;
        assert_eq!(raid5.storage_config().unwrap().node.raid.disks(), 4);
    }

    #[test]
    fn deterministic_end_to_end() {
        let cfg = test_cfg()
            .with_policy(PolicyKind::history_based_default())
            .with_scheme(true);
        let a = run(App::Madbench2, &cfg).unwrap();
        let b = run(App::Madbench2, &cfg).unwrap();
        assert_eq!(a.result.exec_time, b.result.exec_time);
        assert_eq!(a.result.energy_joules, b.result.energy_joules);
    }

    #[test]
    fn policies_do_not_break_apps() {
        let cfg = test_cfg();
        for policy in PolicyKind::paper_strategies() {
            let o = run(App::Astro, &cfg.with_policy(policy.clone())).unwrap();
            assert!(
                o.result.exec_time > SimDuration::ZERO,
                "{} hangs",
                policy.name()
            );
        }
    }
}
