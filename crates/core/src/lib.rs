//! End-to-end façade for the SDDS reproduction.
//!
//! This crate ties the whole stack together — workload generators,
//! compiler (slack analysis + data access scheduling), runtime scheduler,
//! storage array and power policies — behind one configuration type and
//! one entry point:
//!
//! ```
//! use sdds::{run, SystemConfig};
//! use sdds_power::PolicyKind;
//! use sdds_workloads::{App, WorkloadScale};
//!
//! let mut cfg = SystemConfig::paper_defaults();
//! cfg.scale = WorkloadScale::test();
//! cfg.policy = PolicyKind::history_based_default();
//! cfg.scheme_enabled = true;
//! let outcome = run(App::Madbench2, &cfg);
//! assert!(outcome.result.energy_joules > 0.0);
//! ```
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation (§V); see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured numbers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod config;
pub mod experiments;
pub mod metrics;

pub use config::{run, run_program, run_trace, run_with, Outcome, SystemConfig};
