//! End-to-end façade for the SDDS reproduction.
//!
//! This crate ties the whole stack together — workload generators,
//! compiler (slack analysis + data access scheduling), runtime scheduler,
//! storage array and power policies — behind one configuration type and
//! one entry point:
//!
//! ```
//! use sdds::{run, SystemConfig};
//! use sdds_power::PolicyKind;
//! use sdds_workloads::{App, WorkloadScale};
//!
//! let mut cfg = SystemConfig::paper_defaults();
//! cfg.scale = WorkloadScale::test();
//! cfg.policy = PolicyKind::history_based_default();
//! cfg.scheme_enabled = true;
//! let outcome = run(App::Madbench2, &cfg).expect("valid configuration");
//! assert!(outcome.result.energy_joules > 0.0);
//! ```
//!
//! Configurations are validated before anything runs; invalid ones come
//! back as typed errors ([`error::SddsError`]) with per-class exit codes:
//!
//! ```
//! use sdds::SystemConfig;
//!
//! let err = SystemConfig::builder().io_nodes(0).build().unwrap_err();
//! assert!(err.to_string().contains("I/O node count"));
//! ```
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation (§V); see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured numbers.

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod config;
pub mod error;
pub mod experiments;
pub mod metrics;
pub mod online;
pub mod scale;

pub use config::{
    run, run_program, run_trace, run_with, Outcome, SystemConfig, SystemConfigBuilder,
};
pub use error::{CellFailure, ConfigError, ExperimentError, SddsError};
pub use online::{run_mode, table_policy_for, OnlineMode};
pub use scale::{run_scale, run_scale_observed, ScaleSceneConfig};
pub use sdds_runtime::{DiskSummary, TelemetryReport};
pub use simkit::telemetry::{MetricsRegistry, TraceEvent};
