//! Property tests for the simulation core.

use proptest::prelude::*;
use simkit::kernel::{ArbitrationPolicy, Calendar};
use simkit::stats::{BucketHistogram, OnlineStats};
use simkit::{DetRng, EventQueue, SimDuration, SimTime};

/// Drains a calendar whose slots were targeted at `times[i]`, returning
/// the fired `(time, slot index)` sequence.
fn drain(policy: ArbitrationPolicy, times: &[u64]) -> Vec<(SimTime, usize)> {
    let mut cal = Calendar::new(policy);
    let slots: Vec<_> = times.iter().map(|_| cal.register()).collect();
    for (slot, &t) in slots.iter().zip(times) {
        cal.retarget(*slot, Some(SimTime::from_micros(t)));
    }
    let mut fired = Vec::new();
    while let Some((t, s)) = cal.pop() {
        fired.push((t, s.index()));
    }
    fired
}

proptest! {
    /// Popping the queue always yields events in non-decreasing time order,
    /// FIFO among equal timestamps.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated among ties");
            }
        }
    }

    /// Welford mean/variance agree with the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-4 * var.abs().max(1.0));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Merging summaries over any split equals the sequential summary.
    #[test]
    fn online_stats_merge_is_associative(
        xs in prop::collection::vec(-1e5f64..1e5, 2..120),
        cut in 1usize..100,
    ) {
        let cut = cut.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..cut] {
            left.push(x);
        }
        for &x in &xs[cut..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-2);
    }

    /// Histogram CDF is monotone, ends at 1, and the total matches the
    /// sample count regardless of values.
    #[test]
    fn histogram_cdf_invariants(samples in prop::collection::vec(0u64..100_000_000, 1..300)) {
        let mut h = BucketHistogram::paper_idle_buckets();
        for &us in &samples {
            h.record(SimDuration::from_micros(us));
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let cdf = h.cdf();
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        prop_assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        let counted: u64 = h.counts().iter().sum();
        prop_assert_eq!(counted, samples.len() as u64);
    }

    /// Two generators with the same seed agree; a fork is independent of
    /// later parent draws.
    #[test]
    fn rng_reproducibility(seed in any::<u64>(), extra_draws in 0usize..10) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..extra_draws {
            let _ = a.unit_f64();
        }
        for _ in 0..16 {
            prop_assert_eq!(fa.range_u64(0, 1_000), fb.range_u64(0, 1_000));
        }
    }

    /// Shuffle produces a permutation.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), n in 1usize..200) {
        let mut rng = DetRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Duration arithmetic: (t + d) - t == d for all in-range values.
    #[test]
    fn time_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_micros(t);
        let dd = SimDuration::from_micros(d);
        prop_assert_eq!((t0 + dd) - t0, dd);
        prop_assert_eq!((t0 + dd) - dd, t0);
    }

    /// Deterministic arbitration yields a stable total order for any
    /// multiset of due times: time-ascending, registration order among
    /// ties, and identical on every drain.
    #[test]
    fn deterministic_arbitration_is_a_stable_total_order(
        times in prop::collection::vec(0u64..50, 1..120),
    ) {
        let fired = drain(ArbitrationPolicy::Deterministic, &times);
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "registration order violated among ties");
            }
        }
        prop_assert_eq!(drain(ArbitrationPolicy::Deterministic, &times), fired);
    }

    /// Every policy — including any shuffle seed — preserves time order;
    /// arbitration only permutes same-time events. Each slot fires exactly
    /// once.
    #[test]
    fn arbitration_never_reorders_distinct_times(
        times in prop::collection::vec(0u64..50, 1..120),
        seed in any::<u64>(),
    ) {
        for policy in [
            ArbitrationPolicy::Deterministic,
            ArbitrationPolicy::SeededShuffle(seed),
            ArbitrationPolicy::Priority,
        ] {
            let fired = drain(policy, &times);
            prop_assert_eq!(fired.len(), times.len());
            prop_assert!(fired.windows(2).all(|w| w[0].0 <= w[1].0));
            let mut slots: Vec<usize> = fired.iter().map(|&(_, s)| s).collect();
            slots.sort_unstable();
            prop_assert_eq!(slots, (0..times.len()).collect::<Vec<_>>());
        }
    }

    /// Model check for retargeting against a naive map from slot to its
    /// single pending target: a random interleaving of retargets —
    /// including cancels and retargets of idle slots that already fired
    /// or were never armed — and pops matches the model exactly, and the
    /// final drain fires the surviving targets in (time, slot) order.
    #[test]
    fn calendar_retarget_while_idle_matches_model(
        slots in 1usize..12,
        // A raw target of 100..110 encodes a cancel (retarget to None).
        ops in prop::collection::vec(
            (0usize..12, 0u64..110, any::<bool>()),
            1..200,
        ),
    ) {
        let mut cal = Calendar::new(ArbitrationPolicy::Deterministic);
        let handles: Vec<_> = (0..slots).map(|_| cal.register()).collect();
        let mut model: Vec<Option<u64>> = vec![None; slots];
        for &(raw, raw_target, do_pop) in &ops {
            let target = (raw_target < 100).then_some(raw_target);
            if do_pop {
                let expected = model
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| t.map(|t| (t, i)))
                    .min();
                let got = cal.pop().map(|(t, s)| (t.as_micros(), s.index()));
                prop_assert_eq!(got, expected);
                if let Some((_, i)) = expected {
                    model[i] = None;
                }
            } else {
                let s = raw % slots;
                cal.retarget(handles[s], target.map(SimTime::from_micros));
                model[s] = target;
            }
        }
        let mut rest: Vec<(u64, usize)> = model
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (t, i)))
            .collect();
        rest.sort_unstable();
        let mut drained = Vec::new();
        while let Some((t, s)) = cal.pop() {
            drained.push((t.as_micros(), s.index()));
        }
        prop_assert_eq!(drained, rest);
    }

    /// Priority arbitration never inverts distinct priorities at the same
    /// instant: among same-time events the lower priority value always
    /// fires first.
    #[test]
    fn priority_arbitration_never_inverts_distinct_priorities(
        entries in prop::collection::vec((0u64..20, 0u32..8), 1..100),
    ) {
        let mut cal = Calendar::new(ArbitrationPolicy::Priority);
        let mut priority_of = Vec::new();
        for &(t, prio) in &entries {
            let slot = cal.register_with_priority(prio);
            cal.retarget(slot, Some(SimTime::from_micros(t)));
            priority_of.push(prio);
        }
        let mut fired = Vec::new();
        while let Some((t, s)) = cal.pop() {
            fired.push((t, priority_of[s.index()]));
        }
        prop_assert_eq!(fired.len(), entries.len());
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(
                    w[0].1 <= w[1].1,
                    "priority inversion at {:?}: {} fired before {}",
                    w[0].0, w[1].1, w[0].1
                );
            }
        }
    }
}
