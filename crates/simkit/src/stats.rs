//! Statistics gathering: online summaries, bucketed histograms and CDFs.
//!
//! The paper reports its results as cumulative distribution functions of
//! idle-period lengths (Fig. 12(a)/(b)) and as normalized percentages
//! (energy, performance). [`BucketHistogram`] reproduces the bucketed CDF
//! with the exact bucket edges used by the paper, and [`OnlineStats`]
//! provides streaming mean/min/max/variance without storing samples.

use std::fmt;

use crate::SimDuration;

/// Streaming summary statistics (count, mean, variance, min, max) using
/// Welford's algorithm.
///
/// # Example
///
/// ```
/// use simkit::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty summary.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over half-open duration buckets `(edge[i-1], edge[i]]`, with a
/// final overflow bucket for samples above the last edge.
///
/// The default edges are the ones the paper uses for its idle-period CDFs:
/// 5, 10, 50, 100, 500, 1 000, 5 000, 10 000, 20 000, 30 000, 40 000 and
/// 50 000 ms, plus a `50 000+` overflow bucket.
///
/// # Example
///
/// ```
/// use simkit::stats::BucketHistogram;
/// use simkit::SimDuration;
///
/// let mut h = BucketHistogram::paper_idle_buckets();
/// h.record(SimDuration::from_millis(3));
/// h.record(SimDuration::from_millis(700));
/// let cdf = h.cdf();
/// assert_eq!(cdf.len(), 13);
/// assert!((cdf[0].1 - 0.5).abs() < 1e-12); // <=5ms bucket holds half the mass
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BucketHistogram {
    /// Upper edges of each bucket, strictly increasing.
    edges: Vec<SimDuration>,
    /// Counts per bucket; `counts.len() == edges.len() + 1` (last = overflow).
    counts: Vec<u64>,
    total: u64,
}

impl BucketHistogram {
    /// Creates a histogram with the given strictly-increasing bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: Vec<SimDuration>) -> Self {
        assert!(
            !edges.is_empty(),
            "histogram needs at least one bucket edge"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let counts = vec![0; edges.len() + 1];
        BucketHistogram {
            edges,
            counts,
            total: 0,
        }
    }

    /// The bucket edges used in the paper's Fig. 12 idle-period CDFs.
    pub fn paper_idle_buckets() -> Self {
        let ms = [
            5u64, 10, 50, 100, 500, 1_000, 5_000, 10_000, 20_000, 30_000, 40_000, 50_000,
        ];
        BucketHistogram::new(ms.iter().map(|&m| SimDuration::from_millis(m)).collect())
    }

    /// Records one sample.
    pub fn record(&mut self, value: SimDuration) {
        let idx = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket edges.
    pub fn edges(&self) -> &[SimDuration] {
        &self.edges
    }

    /// Returns the cumulative distribution: for each bucket edge, the
    /// fraction of samples at or below it, ending with the overflow bucket at
    /// fraction 1.0. Labels are `(upper_edge, cumulative_fraction)`; the
    /// overflow entry reuses the last edge as its label.
    ///
    /// Returns an empty vector when no samples have been recorded.
    pub fn cdf(&self) -> Vec<(SimDuration, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            let edge = self
                .edges
                .get(i)
                .or_else(|| self.edges.last())
                .copied()
                .unwrap_or(SimDuration::MAX);
            out.push((edge, acc as f64 / self.total as f64));
        }
        out
    }

    /// Fraction of samples at or below `value` (linear in the number of
    /// buckets; exact at bucket edges, bucket-granular in between).
    pub fn fraction_at_or_below(&self, value: SimDuration) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for (i, &e) in self.edges.iter().enumerate() {
            if e <= value {
                acc += self.counts[i];
            } else {
                break;
            }
        }
        acc as f64 / self.total as f64
    }

    /// Merges another histogram with identical edges into this one.
    ///
    /// # Panics
    ///
    /// Panics if the edge vectors differ.
    pub fn merge(&mut self, other: &BucketHistogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different bucket edges"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl fmt::Display for BucketHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (edge, frac) in self.cdf() {
            writeln!(f, "<= {:>12}  {:6.2}%", edge.to_string(), frac * 100.0)?;
        }
        Ok(())
    }
}

/// A histogram over the same duration buckets as [`BucketHistogram`], but
/// accumulating the *total time* falling in each bucket rather than the
/// count — the view that says where the idle time (and hence the energy
/// opportunity) actually lives.
///
/// # Example
///
/// ```
/// use simkit::stats::DurationHistogram;
/// use simkit::SimDuration;
///
/// let mut h = DurationHistogram::paper_idle_buckets();
/// h.record(SimDuration::from_millis(3));      // 3 ms of sub-5ms idle
/// h.record(SimDuration::from_secs(60));       // a minute-long idle
/// // Virtually all idle *time* is in the long bucket even though the
/// // short bucket holds half the *periods*.
/// let share = h.share_at_or_below(SimDuration::from_secs(1));
/// assert!(share < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DurationHistogram {
    edges: Vec<SimDuration>,
    totals: Vec<SimDuration>,
    grand_total: SimDuration,
}

impl DurationHistogram {
    /// Creates a histogram with the given strictly-increasing bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: Vec<SimDuration>) -> Self {
        assert!(
            !edges.is_empty(),
            "histogram needs at least one bucket edge"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let totals = vec![SimDuration::ZERO; edges.len() + 1];
        DurationHistogram {
            edges,
            totals,
            grand_total: SimDuration::ZERO,
        }
    }

    /// The paper's Fig. 12 bucket edges.
    pub fn paper_idle_buckets() -> Self {
        let ms = [
            5u64, 10, 50, 100, 500, 1_000, 5_000, 10_000, 20_000, 30_000, 40_000, 50_000,
        ];
        DurationHistogram::new(ms.iter().map(|&m| SimDuration::from_millis(m)).collect())
    }

    /// Adds one period of the given length: its entire duration lands in
    /// the bucket its length selects.
    pub fn record(&mut self, value: SimDuration) {
        let idx = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.totals[idx] += value;
        self.grand_total += value;
    }

    /// Total recorded time.
    pub fn total(&self) -> SimDuration {
        self.grand_total
    }

    /// Per-bucket time totals (last entry is the overflow bucket).
    pub fn totals(&self) -> &[SimDuration] {
        &self.totals
    }

    /// The share (0..=1) of total time contributed by periods of length at
    /// most `value` (bucket-granular).
    pub fn share_at_or_below(&self, value: SimDuration) -> f64 {
        if self.grand_total.is_zero() {
            return 0.0;
        }
        let mut acc = SimDuration::ZERO;
        for (i, &e) in self.edges.iter().enumerate() {
            if e <= value {
                acc += self.totals[i];
            } else {
                break;
            }
        }
        acc.as_secs_f64() / self.grand_total.as_secs_f64()
    }

    /// The cumulative time distribution, analogous to
    /// [`BucketHistogram::cdf`].
    pub fn cdf(&self) -> Vec<(SimDuration, f64)> {
        if self.grand_total.is_zero() {
            return Vec::new();
        }
        let mut acc = SimDuration::ZERO;
        let mut out = Vec::with_capacity(self.totals.len());
        for (i, &t) in self.totals.iter().enumerate() {
            acc += t;
            let edge = self
                .edges
                .get(i)
                .or_else(|| self.edges.last())
                .copied()
                .unwrap_or(SimDuration::MAX);
            out.push((edge, acc.as_secs_f64() / self.grand_total.as_secs_f64()));
        }
        out
    }

    /// Merges another histogram with identical edges.
    ///
    /// # Panics
    ///
    /// Panics if the edges differ.
    pub fn merge(&mut self, other: &DurationHistogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different bucket edges"
        );
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            *a += *b;
        }
        self.grand_total += other.grand_total;
    }
}

/// Relative change `(new - old) / old`, in percent. Positive means `new` is
/// larger.
///
/// # Panics
///
/// Panics if `old` is zero.
pub fn percent_change(old: f64, new: f64) -> f64 {
    assert!(old != 0.0, "percent change from zero is undefined");
    (new - old) / old * 100.0
}

/// Normalizes `value` against `baseline`, in percent (100.0 = equal).
///
/// # Panics
///
/// Panics if `baseline` is zero.
pub fn normalized_percent(baseline: f64, value: f64) -> f64 {
    assert!(baseline != 0.0, "cannot normalize against zero");
    value / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_buckets_samples() {
        let mut h = BucketHistogram::paper_idle_buckets();
        h.record(SimDuration::from_millis(5)); // boundary: goes to first bucket
        h.record(SimDuration::from_millis(6)); // second bucket
        h.record(SimDuration::from_secs(100)); // overflow
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(*h.counts().last().unwrap(), 1);
    }

    #[test]
    fn cdf_reaches_one() {
        let mut h = BucketHistogram::paper_idle_buckets();
        for m in [1u64, 8, 40, 90, 450, 900, 4_000, 9_000, 60_000] {
            h.record(SimDuration::from_millis(m));
        }
        let cdf = h.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // Monotone non-decreasing.
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn fraction_at_or_below() {
        let mut h = BucketHistogram::paper_idle_buckets();
        h.record(SimDuration::from_millis(3));
        h.record(SimDuration::from_millis(70));
        h.record(SimDuration::from_millis(70_000));
        assert!((h.fraction_at_or_below(SimDuration::from_millis(5)) - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.fraction_at_or_below(SimDuration::from_millis(100)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_cdf_is_empty() {
        let h = BucketHistogram::paper_idle_buckets();
        assert!(h.cdf().is_empty());
        assert_eq!(h.fraction_at_or_below(SimDuration::from_secs(1)), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = BucketHistogram::paper_idle_buckets();
        let mut b = BucketHistogram::paper_idle_buckets();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_secs(200));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts()[0], 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_edges_panic() {
        let _ = BucketHistogram::new(vec![
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
        ]);
    }

    #[test]
    fn duration_histogram_weights_by_time() {
        let mut h = DurationHistogram::paper_idle_buckets();
        for _ in 0..1_000 {
            h.record(SimDuration::from_millis(3)); // 3 s total, short bucket
        }
        h.record(SimDuration::from_secs(27)); // one long period
        assert_eq!(h.total(), SimDuration::from_secs(30));
        // Periods: 1000 short vs 1 long; time: 10% short vs 90% long.
        let share_short = h.share_at_or_below(SimDuration::from_millis(5));
        assert!((share_short - 0.1).abs() < 1e-9, "got {share_short}");
        let cdf = h.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn duration_histogram_merge() {
        let mut a = DurationHistogram::paper_idle_buckets();
        let mut b = DurationHistogram::paper_idle_buckets();
        a.record(SimDuration::from_secs(1));
        b.record(SimDuration::from_secs(2));
        a.merge(&b);
        assert_eq!(a.total(), SimDuration::from_secs(3));
    }

    #[test]
    fn percent_helpers() {
        assert!((percent_change(200.0, 100.0) + 50.0).abs() < 1e-12);
        assert!((normalized_percent(200.0, 100.0) - 50.0).abs() < 1e-12);
    }
}
