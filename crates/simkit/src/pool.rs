//! Bounded, deterministic parallel execution.
//!
//! The experiment drivers fan out over large `app × policy × scheme`
//! cell matrices. Spawning one OS thread per cell (the seed's approach)
//! does not scale with the matrix, so this module provides a bounded
//! executor instead: a fixed number of worker threads self-schedule
//! tasks from a shared atomic cursor (a degenerate single-queue form of
//! work stealing — workers "steal" the next index as they go idle).
//!
//! # Determinism guarantee
//!
//! [`par_map`] returns results **in input order**, each slot written by
//! whichever worker ran that task. As long as the task function itself
//! is a pure function of its input (every simulation in this workspace
//! is — see [`DetRng`](crate::DetRng)), the output vector is bitwise
//! identical for every worker count, including 1. The `--jobs` flag of
//! the `repro` binary therefore changes wall time but never a number.
//!
//! The default worker count is the machine's available parallelism and
//! can be overridden process-wide with [`set_jobs`] (the `--jobs N`
//! plumbing) or per call with [`par_map_with`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Process-wide worker-count override; 0 means "auto" (available
/// parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`par_map`]; `0` restores
/// the default (the machine's available parallelism).
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count [`par_map`] currently resolves to (≥ 1).
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on at most [`jobs`] worker threads, returning
/// results in input order. See the module docs for the determinism
/// guarantee.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (remaining tasks may or may
/// not have run).
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    par_map_with(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count (used by tests that pin
/// `jobs` on both sides of a determinism comparison).
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn par_map_with<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Task inputs and result slots, indexed by input position. Workers
    // claim indices from the shared cursor; each slot is touched by
    // exactly one worker, the Mutexes only make that provable to the
    // compiler (they are never contended).
    let tasks: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The cursor hands each index to exactly one worker,
                    // so the slot is always occupied; a poisoned lock only
                    // means another worker panicked mid-task, and that
                    // panic is re-raised at join time below.
                    let Some(item) = tasks[i]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                    else {
                        debug_assert!(false, "task {i} claimed twice");
                        continue;
                    };
                    let out = f(item);
                    *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                })
            })
            .collect();
        // Join explicitly so a task panic re-raises with its original
        // payload (scope's implicit join would replace it); a failed task
        // can therefore never yield a partial result vector.
        for worker in workers {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let out: Vec<T> = results
        .into_iter()
        .filter_map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    // Workers either store a result or panic, and panics were re-raised
    // above, so every slot must be filled by now.
    assert!(
        out.len() == n,
        "worker exited without storing a result ({} of {n} slots filled)",
        out.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map_with(4, (0..100).collect(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_worker_counts() {
        let work = |i: u64| {
            // A deterministic but order-sensitive-looking computation.
            let mut rng = crate::DetRng::new(i);
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let serial = par_map_with(1, (0..64).collect(), work);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(par_map_with(jobs, (0..64).collect(), work), serial);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_with(8, Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(par_map_with(8, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn worker_count_is_bounded() {
        use std::sync::atomic::AtomicUsize;
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        par_map_with(3, (0..64).collect::<Vec<u64>>(), |i| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            LIVE.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(
            PEAK.load(Ordering::SeqCst) <= 3,
            "more than 3 concurrent tasks"
        );
    }

    #[test]
    fn set_jobs_round_trips() {
        let before = jobs();
        set_jobs(5);
        assert_eq!(jobs(), 5);
        set_jobs(0);
        assert!(jobs() >= 1);
        set_jobs(if before == 0 { 0 } else { before });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_worker_panics() {
        par_map_with(2, (0..8).collect::<Vec<u32>>(), |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
