//! Seed-deterministic disk fault plans.
//!
//! This module generates, from one user-facing seed, a complete schedule
//! of the faults a simulated disk array will experience: transient read
//! errors, permanent bad sectors, slow-disk stragglers and whole-disk
//! crash/recover windows. The plan is computed *up front* on its own
//! split RNG stream ([`StreamId::Fault`]) so that
//!
//! * the same `(config, seed)` pair always produces the same faults at
//!   the same simulated times, independent of how many draws the
//!   workload or executor streams take, and
//! * a run with no fault plan performs **zero** RNG draws and zero
//!   branches beyond one `Option` check per request, leaving every
//!   simulated metric bit-for-bit identical to a fault-free build.
//!
//! The division of labour across the stack:
//!
//! * `simkit::fault` (here) — the plan: what goes wrong, where, when.
//! * `disk` — surfaces faults as typed service outcomes (the physics).
//! * `storage` — recovery policy: retry with backoff, sector remap,
//!   degraded RAID reconstruction, crash redirect/defer.
//! * `runtime` — prefetch timeout + synchronous fallback so no bytes
//!   are lost and the engine cannot deadlock on a faulted prefetch.
//!
//! [`FaultCounters`] is the shared ledger all layers increment; the
//! `repro faults` report and the fault-injection tests reconcile it.

use std::error::Error;
use std::fmt;

use crate::rng::{DetRng, StreamId};
use crate::time::{SimDuration, SimTime};

/// User-facing description of a fault scenario.
///
/// A spec is scale-free: it describes fault *rates and shapes*, and
/// [`FaultPlan::generate`] expands it against a concrete array geometry
/// (node count, disks per node, sectors per disk). Two specs with equal
/// fields expand to identical plans for the same geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for the fault stream. Mixed through [`StreamId::Fault`], so
    /// it may equal the workload seed without correlating the streams.
    pub seed: u64,
    /// Probability that any single disk read completes with a transient
    /// error (retryable in place). Must lie in `[0, 0.9]`; the upper
    /// bound keeps bounded retry loops terminating almost surely.
    pub transient_rate: f64,
    /// Number of permanently bad sectors drawn uniformly per disk.
    /// A read overlapping one fails until the storage layer remaps it.
    pub bad_sectors_per_disk: u32,
    /// Fraction of disks (drawn independently per disk) that are
    /// stragglers. Must lie in `[0, 1]`.
    pub straggler_fraction: f64,
    /// Service-time multiplier applied to a straggler's mechanical
    /// phases (seek + transfer). Must be finite and `>= 1`.
    pub straggler_factor: f64,
    /// Total number of whole-disk crash windows drawn across the array
    /// (disk and start time uniform).
    pub crash_windows: u32,
    /// Length of each crash window. Must be positive when
    /// `crash_windows > 0`.
    pub crash_duration: SimDuration,
    /// Horizon within which crash windows start. Must be positive when
    /// `crash_windows > 0`; faults never start after the horizon.
    pub horizon: SimDuration,
}

impl FaultSpec {
    /// The `light` scenario: occasional transient errors, a couple of
    /// bad sectors per disk, a quarter of disks mildly slow, one short
    /// crash window.
    pub fn light(seed: u64) -> Self {
        FaultSpec {
            seed,
            transient_rate: 0.02,
            bad_sectors_per_disk: 2,
            straggler_fraction: 0.25,
            straggler_factor: 1.5,
            crash_windows: 1,
            crash_duration: SimDuration::from_secs(2),
            horizon: SimDuration::from_secs(60),
        }
    }

    /// The `heavy` scenario: frequent transient errors, many bad
    /// sectors, half the disks markedly slow, several long crashes.
    pub fn heavy(seed: u64) -> Self {
        FaultSpec {
            seed,
            transient_rate: 0.08,
            bad_sectors_per_disk: 8,
            straggler_fraction: 0.5,
            straggler_factor: 2.5,
            crash_windows: 3,
            crash_duration: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(60),
        }
    }

    /// Looks up a named scenario (`"light"` or `"heavy"`).
    pub fn scenario(name: &str, seed: u64) -> Option<Self> {
        match name {
            "light" => Some(FaultSpec::light(seed)),
            "heavy" => Some(FaultSpec::heavy(seed)),
            _ => None,
        }
    }

    /// Checks the spec's numeric ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultSpecError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        if !self.transient_rate.is_finite()
            || !(0.0..=MAX_TRANSIENT_RATE).contains(&self.transient_rate)
        {
            return Err(FaultSpecError::RateOutOfRange {
                field: "transient_rate",
                value: self.transient_rate,
                lo: 0.0,
                hi: MAX_TRANSIENT_RATE,
            });
        }
        if !self.straggler_fraction.is_finite() || !(0.0..=1.0).contains(&self.straggler_fraction) {
            return Err(FaultSpecError::RateOutOfRange {
                field: "straggler_fraction",
                value: self.straggler_fraction,
                lo: 0.0,
                hi: 1.0,
            });
        }
        if !self.straggler_factor.is_finite() || self.straggler_factor < 1.0 {
            return Err(FaultSpecError::BadParameter {
                field: "straggler_factor",
                reason: "must be a finite multiplier >= 1",
            });
        }
        if self.crash_windows > 0 {
            if self.crash_duration.is_zero() {
                return Err(FaultSpecError::BadParameter {
                    field: "crash_duration",
                    reason: "must be positive when crash windows are requested",
                });
            }
            if self.horizon.is_zero() {
                return Err(FaultSpecError::BadParameter {
                    field: "horizon",
                    reason: "must be positive when crash windows are requested",
                });
            }
        }
        Ok(())
    }
}

/// Upper bound on [`FaultSpec::transient_rate`]: bounded retry loops
/// must terminate almost surely, so the per-attempt failure probability
/// is kept well away from 1.
pub const MAX_TRANSIENT_RATE: f64 = 0.9;

/// Why a [`FaultSpec`] failed validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultSpecError {
    /// A probability field fell outside its allowed interval.
    RateOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// A non-probability parameter was structurally invalid.
    BadParameter {
        /// Name of the offending field.
        field: &'static str,
        /// What the field must satisfy.
        reason: &'static str,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::RateOutOfRange {
                field,
                value,
                lo,
                hi,
            } => write!(f, "fault spec: {field} = {value} outside [{lo}, {hi}]"),
            FaultSpecError::BadParameter { field, reason } => {
                write!(f, "fault spec: {field} {reason}")
            }
        }
    }
}

impl Error for FaultSpecError {}

/// The concrete fault schedule of one disk, expanded from a
/// [`FaultSpec`] by [`FaultPlan::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiskFaultProfile {
    /// Permanently bad sector addresses, sorted ascending and deduped.
    /// Reads overlapping one fail with a bad-sector outcome until the
    /// storage layer remaps the range.
    pub bad_sectors: Vec<u64>,
    /// Mechanical service-time multiplier (`1.0` = nominal). Applied to
    /// the seek and transfer phases of every request on this disk.
    pub slow_factor: f64,
    /// Half-open crash windows `[start, end)`, sorted by start and
    /// non-overlapping. While crashed the disk is unreachable at the
    /// storage layer (submissions are redirected or deferred); the disk
    /// state machine itself keeps running so per-state energy accrual
    /// is unchanged.
    pub crash_windows: Vec<(SimTime, SimTime)>,
    /// Per-read transient error probability for this disk.
    pub transient_rate: f64,
    /// Seed for the disk's private online draw stream (transient error
    /// coin flips). Derived at plan time so the stream is independent
    /// of every other disk's.
    pub rng_seed: u64,
}

impl DiskFaultProfile {
    /// A profile that injects nothing.
    pub fn none() -> Self {
        DiskFaultProfile {
            bad_sectors: Vec::new(),
            slow_factor: 1.0,
            crash_windows: Vec::new(),
            transient_rate: 0.0,
            rng_seed: 0,
        }
    }

    /// Returns `true` when this profile can inject at least one fault
    /// or slowdown (used to skip installation entirely otherwise).
    pub fn is_active(&self) -> bool {
        !self.bad_sectors.is_empty()
            || self.slow_factor > 1.0
            || !self.crash_windows.is_empty()
            || self.transient_rate > 0.0
    }

    /// If the disk is crashed at `t`, returns the recovery time (the
    /// end of the containing window); otherwise `None`.
    pub fn crashed_at(&self, t: SimTime) -> Option<SimTime> {
        // Windows are sorted and disjoint; a linear scan is fine for the
        // handful of windows a plan generates.
        for &(start, end) in &self.crash_windows {
            if start > t {
                return None;
            }
            if t < end {
                return Some(end);
            }
        }
        None
    }
}

/// A fully expanded fault schedule for a disk array: one
/// [`DiskFaultProfile`] per `(node, disk)` slot.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    nodes: Vec<Vec<DiskFaultProfile>>,
}

impl FaultPlan {
    /// Expands `spec` against an array geometry.
    ///
    /// The expansion is a pure function of `(spec, io_nodes,
    /// disks_per_node, total_sectors)`: the root generator is the
    /// [`StreamId::Fault`] stream of `spec.seed`, each disk receives the
    /// named [`DetRng::substream`] `disk-{node}-{disk}` of the root (so
    /// per-disk draws are independent of geometry iteration order), and
    /// crash windows are drawn from the root afterwards. No draw depends
    /// on simulation state, so the plan is reproducible by construction.
    pub fn generate(
        spec: &FaultSpec,
        io_nodes: usize,
        disks_per_node: usize,
        total_sectors: u64,
    ) -> FaultPlan {
        let mut root = DetRng::for_stream(spec.seed, StreamId::Fault);
        let mut nodes: Vec<Vec<DiskFaultProfile>> = Vec::with_capacity(io_nodes);
        for node in 0..io_nodes {
            let mut disks = Vec::with_capacity(disks_per_node);
            for disk in 0..disks_per_node {
                let mut rng = root.substream(&format!("disk-{node}-{disk}"));
                let mut bad_sectors = Vec::with_capacity(spec.bad_sectors_per_disk as usize);
                if total_sectors > 0 {
                    for _ in 0..spec.bad_sectors_per_disk {
                        bad_sectors.push(rng.range_u64(0, total_sectors - 1));
                    }
                    bad_sectors.sort_unstable();
                    bad_sectors.dedup();
                }
                let slow_factor = if rng.chance(spec.straggler_fraction) {
                    spec.straggler_factor
                } else {
                    1.0
                };
                let rng_seed = rng.next_u64();
                disks.push(DiskFaultProfile {
                    bad_sectors,
                    slow_factor,
                    crash_windows: Vec::new(),
                    transient_rate: spec.transient_rate,
                    rng_seed,
                });
            }
            nodes.push(disks);
        }
        if io_nodes > 0 && disks_per_node > 0 {
            let horizon_us = spec.horizon.as_micros();
            for _ in 0..spec.crash_windows {
                let node = root.index(io_nodes);
                let disk = root.index(disks_per_node);
                let start_us = if horizon_us > 1 {
                    root.range_u64(0, horizon_us - 1)
                } else {
                    0
                };
                let start = SimTime::from_micros(start_us);
                let end = start + spec.crash_duration;
                nodes[node][disk].crash_windows.push((start, end));
            }
            for disks in &mut nodes {
                for profile in disks {
                    normalize_windows(&mut profile.crash_windows);
                }
            }
        }
        FaultPlan { nodes }
    }

    /// Wraps hand-written profiles into a plan (targeted tests and
    /// bespoke scenarios). Crash windows are normalized to the sorted
    /// disjoint form [`DiskFaultProfile::crash_windows`] documents, and
    /// bad-sector lists are sorted and deduped.
    pub fn from_profiles(mut nodes: Vec<Vec<DiskFaultProfile>>) -> FaultPlan {
        for disks in &mut nodes {
            for profile in disks {
                profile.bad_sectors.sort_unstable();
                profile.bad_sectors.dedup();
                normalize_windows(&mut profile.crash_windows);
            }
        }
        FaultPlan { nodes }
    }

    /// The fault profiles of one I/O node's disks.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the geometry the plan was generated
    /// for (a wiring bug, not a data condition).
    pub fn node(&self, node: usize) -> &[DiskFaultProfile] {
        &self.nodes[node]
    }

    /// Number of I/O nodes the plan covers.
    pub fn io_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Sorts crash windows by start and merges overlapping or touching
/// windows, so [`DiskFaultProfile::crash_windows`] is always a sorted
/// list of disjoint half-open intervals.
fn normalize_windows(windows: &mut Vec<(SimTime, SimTime)>) {
    if windows.len() < 2 {
        return;
    }
    windows.sort_unstable();
    let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
    for &(start, end) in windows.iter() {
        match merged.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => merged.push((start, end)),
        }
    }
    *windows = merged;
}

/// The shared ledger of fault activity across the whole stack.
///
/// The disk layer counts injections, the storage layer counts recovery
/// actions, the runtime counts prefetch timeouts; [`FaultCounters::merge`]
/// folds per-component ledgers into the run-level report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Reads that completed with a transient error.
    pub injected_transient: u64,
    /// Reads that completed against an unremapped bad sector.
    pub injected_bad_sector: u64,
    /// Recovery re-submissions of a failed request to the same disk.
    pub retried: u64,
    /// Bad-sector ranges remapped to healthy reserve sectors.
    pub remapped: u64,
    /// Failed member reads recovered by reading the surviving RAID
    /// members (degraded-mode reconstruction).
    pub reconstructed: u64,
    /// Member reads redirected to survivors because the target disk was
    /// inside a crash window at submission time.
    pub redirected: u64,
    /// Member operations deferred until a crashed disk's recovery time
    /// (writes, and reads with no surviving redundancy).
    pub deferred: u64,
}

impl FaultCounters {
    /// Adds `other` into `self`, field by field.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected_transient += other.injected_transient;
        self.injected_bad_sector += other.injected_bad_sector;
        self.retried += other.retried;
        self.remapped += other.remapped;
        self.reconstructed += other.reconstructed;
        self.redirected += other.redirected;
        self.deferred += other.deferred;
    }

    /// Total faults injected at the disk layer.
    pub fn total_injected(&self) -> u64 {
        self.injected_transient + self.injected_bad_sector
    }

    /// Returns `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> (usize, usize, u64) {
        (4, 2, 1_000_000)
    }

    #[test]
    fn presets_validate() {
        assert_eq!(FaultSpec::light(1).validate(), Ok(()));
        assert_eq!(FaultSpec::heavy(1).validate(), Ok(()));
        assert_eq!(FaultSpec::scenario("light", 3), Some(FaultSpec::light(3)));
        assert_eq!(FaultSpec::scenario("nope", 3), None);
    }

    #[test]
    fn validate_rejects_out_of_range_fields() {
        let mut spec = FaultSpec::light(1);
        spec.transient_rate = 0.95;
        assert!(matches!(
            spec.validate(),
            Err(FaultSpecError::RateOutOfRange {
                field: "transient_rate",
                ..
            })
        ));
        let mut spec = FaultSpec::light(1);
        spec.straggler_fraction = -0.1;
        assert!(spec.validate().is_err());
        let mut spec = FaultSpec::light(1);
        spec.straggler_factor = 0.5;
        assert!(matches!(
            spec.validate(),
            Err(FaultSpecError::BadParameter {
                field: "straggler_factor",
                ..
            })
        ));
        let mut spec = FaultSpec::light(1);
        spec.crash_duration = SimDuration::ZERO;
        assert!(spec.validate().is_err());
        let mut spec = FaultSpec::light(1);
        spec.horizon = SimDuration::ZERO;
        assert!(spec.validate().is_err());
        let mut spec = FaultSpec::light(1);
        spec.transient_rate = f64::NAN;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn generate_is_deterministic() {
        let (nodes, disks, sectors) = geometry();
        let spec = FaultSpec::heavy(42);
        let a = FaultPlan::generate(&spec, nodes, disks, sectors);
        let b = FaultPlan::generate(&spec, nodes, disks, sectors);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (nodes, disks, sectors) = geometry();
        let a = FaultPlan::generate(&FaultSpec::heavy(1), nodes, disks, sectors);
        let b = FaultPlan::generate(&FaultSpec::heavy(2), nodes, disks, sectors);
        assert_ne!(a, b);
    }

    #[test]
    fn plan_matches_geometry() {
        let (nodes, disks, sectors) = geometry();
        let plan = FaultPlan::generate(&FaultSpec::light(7), nodes, disks, sectors);
        assert_eq!(plan.io_nodes(), nodes);
        for n in 0..nodes {
            assert_eq!(plan.node(n).len(), disks);
            for profile in plan.node(n) {
                assert!(profile.bad_sectors.windows(2).all(|w| w[0] < w[1]));
                assert!(profile.bad_sectors.iter().all(|&s| s < sectors));
                assert!(profile.slow_factor >= 1.0);
            }
        }
    }

    #[test]
    fn crash_windows_are_sorted_and_disjoint() {
        let spec = FaultSpec {
            crash_windows: 40,
            crash_duration: SimDuration::from_secs(10),
            horizon: SimDuration::from_secs(30),
            ..FaultSpec::heavy(11)
        };
        let plan = FaultPlan::generate(&spec, 2, 1, 1_000);
        let mut total = 0;
        for n in 0..plan.io_nodes() {
            for profile in plan.node(n) {
                total += profile.crash_windows.len();
                for pair in profile.crash_windows.windows(2) {
                    assert!(pair[0].1 < pair[1].0, "windows overlap: {pair:?}");
                }
                for &(s, e) in &profile.crash_windows {
                    assert!(s < e);
                }
            }
        }
        // Forty windows crammed into 30 s of horizon with 10 s durations
        // must have merged heavily.
        assert!(total < 40, "expected overlapping windows to merge");
    }

    #[test]
    fn crashed_at_reports_recovery_time() {
        let mut profile = DiskFaultProfile::none();
        let t = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
        profile.crash_windows = vec![(t(10), t(12)), (t(20), t(25))];
        assert_eq!(profile.crashed_at(t(5)), None);
        assert_eq!(profile.crashed_at(t(10)), Some(t(12)));
        assert_eq!(profile.crashed_at(t(11)), Some(t(12)));
        assert_eq!(profile.crashed_at(t(12)), None);
        assert_eq!(profile.crashed_at(t(24)), Some(t(25)));
        assert_eq!(profile.crashed_at(t(30)), None);
    }

    #[test]
    fn none_profile_is_inactive() {
        assert!(!DiskFaultProfile::none().is_active());
        let plan = FaultPlan::generate(&FaultSpec::heavy(3), 1, 1, 1_000);
        assert!(plan.node(0)[0].is_active());
    }

    #[test]
    fn counters_merge() {
        let mut a = FaultCounters {
            injected_transient: 1,
            retried: 2,
            ..FaultCounters::default()
        };
        let b = FaultCounters {
            injected_transient: 3,
            remapped: 4,
            reconstructed: 5,
            redirected: 6,
            deferred: 7,
            injected_bad_sector: 8,
            retried: 0,
        };
        a.merge(&b);
        assert_eq!(a.injected_transient, 4);
        assert_eq!(a.retried, 2);
        assert_eq!(a.remapped, 4);
        assert_eq!(a.reconstructed, 5);
        assert_eq!(a.redirected, 6);
        assert_eq!(a.deferred, 7);
        assert_eq!(a.total_injected(), 12);
        assert!(!a.is_zero());
        assert!(FaultCounters::default().is_zero());
    }

    #[test]
    fn zero_geometry_generates_empty_plan() {
        let plan = FaultPlan::generate(&FaultSpec::heavy(1), 0, 0, 0);
        assert_eq!(plan.io_nodes(), 0);
        let plan = FaultPlan::generate(&FaultSpec::heavy(1), 1, 1, 0);
        assert!(plan.node(0)[0].bad_sectors.is_empty());
    }
}
