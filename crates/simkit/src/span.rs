//! Causal span trees and deterministic latency attribution, folded from
//! the flat [`TraceEvent`] stream.
//!
//! The telemetry layer records *events*; this module turns them into
//! *spans* with parent links. Every client access forms a root span
//! ([`AccessSpan`], opened by [`TraceEvent::AccessStart`] and closed by
//! [`TraceEvent::AccessEnd`]); every member-disk request it fanned out to
//! becomes a child [`RequestSpan`] (parent-linked through the `access`
//! field of [`TraceEvent::RequestIssued`]); retry and reconstruction
//! traffic rides in the same tree as flagged recovery spans. Each request
//! span carries the exact energy the disk metered over its service
//! window, so energy attribution is a fold, not an estimate.
//!
//! [`decompose`] performs the latency critical-path split: for every
//! completed request, `response = queue + service` holds *exactly* in
//! integer microseconds, and the queue share is further split into the
//! portion overlapping the disk's spin-up recovery versus plain waiting.
//! All folds are pure functions of the event stream, so their output is
//! byte-for-byte reproducible for a deterministic simulation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::telemetry::TraceEvent;
use crate::time::SimTime;

/// One member-disk request span, parent-linked to its owning access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpan {
    /// I/O node index.
    pub node: u32,
    /// Disk index within the node.
    pub disk: u32,
    /// Request id (unique per node).
    pub id: u64,
    /// Owning access id, or `None` for cache-initiated prefetch reads.
    pub access: Option<u64>,
    /// Issue time (from the issue-anchored event), when observed.
    pub issued: Option<SimTime>,
    /// Retry attempt (0 = first issue).
    pub attempt: u32,
    /// True for recovery traffic (post-remap reissues, reconstruction).
    pub recovery: bool,
    /// Queue-entry time at the disk, once completed.
    pub arrival: Option<SimTime>,
    /// Service start, once completed.
    pub start: Option<SimTime>,
    /// Completion time, once completed.
    pub end: Option<SimTime>,
    /// Exact whole-disk energy metered over the service window, in
    /// nanojoules.
    pub energy_nj: u64,
    /// Number of injected faults observed on this request id.
    pub faults: u32,
}

impl RequestSpan {
    fn new(node: u32, disk: u32, id: u64) -> Self {
        RequestSpan {
            node,
            disk,
            id,
            access: None,
            issued: None,
            attempt: 0,
            recovery: false,
            arrival: None,
            start: None,
            end: None,
            energy_nj: 0,
            faults: 0,
        }
    }

    /// Whether the span saw its completion event.
    pub fn completed(&self) -> bool {
        self.end.is_some()
    }
}

/// One client access: the root span of a causal tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSpan {
    /// Engine-wide access id.
    pub access: u64,
    /// Submission time.
    pub start: SimTime,
    /// Completion time, or `None` if the run ended first.
    pub end: Option<SimTime>,
    /// Indices into [`SpanForest::requests`] of the member requests this
    /// access fanned out to, in issue order.
    pub requests: Vec<usize>,
}

/// The span trees of one run: access roots plus all request spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanForest {
    /// Access root spans, in submission order.
    pub accesses: Vec<AccessSpan>,
    /// All request spans, in first-observation order. Spans whose
    /// `access` is `None` (prefetch traffic) have no parent.
    pub requests: Vec<RequestSpan>,
}

impl SpanForest {
    /// Folds an event stream into its span forest.
    ///
    /// The fold is a single pass and is total: events that reference a
    /// request never observed before simply open a new span, so partial
    /// streams (e.g. a run cut at a horizon) still fold cleanly.
    pub fn build(events: &[TraceEvent]) -> SpanForest {
        let mut forest = SpanForest::default();
        let mut access_ix: BTreeMap<u64, usize> = BTreeMap::new();
        let mut request_ix: BTreeMap<(u32, u64), usize> = BTreeMap::new();
        for e in events {
            match *e {
                TraceEvent::AccessStart { at, access } => {
                    let ix = forest.accesses.len();
                    access_ix.entry(access).or_insert_with(|| {
                        forest.accesses.push(AccessSpan {
                            access,
                            start: at,
                            end: None,
                            requests: Vec::new(),
                        });
                        ix
                    });
                }
                TraceEvent::AccessEnd { at, access } => {
                    if let Some(&ix) = access_ix.get(&access) {
                        forest.accesses[ix].end = Some(at);
                    }
                }
                TraceEvent::RequestIssued {
                    at,
                    node,
                    disk,
                    id,
                    access,
                    attempt,
                    recovery,
                } => {
                    let rix = *request_ix.entry((node, id)).or_insert_with(|| {
                        forest.requests.push(RequestSpan::new(node, disk, id));
                        forest.requests.len() - 1
                    });
                    let span = &mut forest.requests[rix];
                    span.issued = Some(at);
                    span.access = access;
                    span.attempt = attempt;
                    span.recovery = recovery;
                    if let Some(&aix) = access.and_then(|a| access_ix.get(&a)) {
                        if !forest.accesses[aix].requests.contains(&rix) {
                            forest.accesses[aix].requests.push(rix);
                        }
                    }
                }
                TraceEvent::Request {
                    node,
                    disk,
                    id,
                    arrival,
                    start,
                    end,
                    energy_nj,
                } => {
                    let rix = *request_ix.entry((node, id)).or_insert_with(|| {
                        forest.requests.push(RequestSpan::new(node, disk, id));
                        forest.requests.len() - 1
                    });
                    let span = &mut forest.requests[rix];
                    span.arrival = Some(arrival);
                    span.start = Some(start);
                    span.end = Some(end);
                    span.energy_nj = energy_nj;
                }
                TraceEvent::FaultInjected { node, id, .. } => {
                    if let Some(&rix) = request_ix.get(&(node, id)) {
                        forest.requests[rix].faults += 1;
                    }
                }
                _ => {}
            }
        }
        forest
    }

    /// Total request-span energy in nanojoules (service windows only).
    pub fn total_energy_nj(&self) -> u64 {
        self.requests.iter().map(|r| r.energy_nj).sum()
    }

    /// Number of recovery spans (retries past the first attempt plus
    /// reconstruction traffic).
    pub fn recovery_spans(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| r.recovery || r.attempt > 0)
            .count()
    }

    /// Serializes the forest as one deterministic JSON document: access
    /// roots with their member requests nested, unparented (prefetch)
    /// spans in a trailing array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"accesses\":[");
        for (i, a) in self.accesses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"access\":{},\"start_us\":{},\"end_us\":{},\"requests\":[",
                a.access,
                a.start.as_micros(),
                opt_us(a.end)
            );
            for (j, &rix) in a.requests.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&request_json(&self.requests[rix]));
            }
            out.push_str("]}");
        }
        out.push_str("],\"unparented\":[");
        let mut first = true;
        for r in &self.requests {
            if r.access.is_none() {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&request_json(r));
            }
        }
        out.push_str("]}");
        out
    }
}

fn opt_us(t: Option<SimTime>) -> String {
    match t {
        Some(t) => t.as_micros().to_string(),
        None => "null".to_owned(),
    }
}

fn request_json(r: &RequestSpan) -> String {
    format!(
        "{{\"node\":{},\"disk\":{},\"id\":{},\"issued_us\":{},\"attempt\":{},\
         \"recovery\":{},\"arrival_us\":{},\"start_us\":{},\"end_us\":{},\
         \"energy_nj\":{},\"faults\":{}}}",
        r.node,
        r.disk,
        r.id,
        opt_us(r.issued),
        r.attempt,
        r.recovery,
        opt_us(r.arrival),
        opt_us(r.start),
        opt_us(r.end),
        r.energy_nj,
        r.faults
    )
}

/// The exact latency split of one completed request, in integer
/// microseconds. Invariants (by construction, not approximation):
/// `response_us == queue_us + service_us` and
/// `queue_us == spin_up_us + wait_us`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestLatency {
    /// I/O node index.
    pub node: u32,
    /// Disk index within the node.
    pub disk: u32,
    /// Request id (unique per node).
    pub id: u64,
    /// Owning access id, when parent-linked.
    pub access: Option<u64>,
    /// True for recovery traffic (retries, reconstruction reads).
    pub recovery: bool,
    /// End-to-end disk response time (`end - arrival`).
    pub response_us: u64,
    /// Time spent queued before service (`start - arrival`).
    pub queue_us: u64,
    /// Portion of the queue wait overlapping the disk's spin-up.
    pub spin_up_us: u64,
    /// Remaining queue wait (head-of-line blocking, seek of others).
    pub wait_us: u64,
    /// Service time (`end - start`).
    pub service_us: u64,
    /// Exact service-window energy in nanojoules.
    pub energy_nj: u64,
}

/// Splits every completed request in `events` into its exact latency
/// components (see [`RequestLatency`] for the invariants).
///
/// The spin-up share is computed by intersecting each request's queue
/// window `[arrival, start)` with the disk's `spin-up` state residencies
/// reconstructed from the [`TraceEvent::DiskState`] transitions.
pub fn decompose(events: &[TraceEvent]) -> Vec<RequestLatency> {
    // Reconstruct per-disk spin-up intervals from the transition stream.
    let mut spin_ups: BTreeMap<(u32, u32), Vec<(SimTime, SimTime)>> = BTreeMap::new();
    let mut open: BTreeMap<(u32, u32), SimTime> = BTreeMap::new();
    for e in events {
        if let TraceEvent::DiskState {
            at, node, disk, to, ..
        } = *e
        {
            let lane = (node, disk);
            if let Some(since) = open.remove(&lane) {
                spin_ups.entry(lane).or_default().push((since, at));
            }
            if to == "spin-up" {
                open.insert(lane, at);
            }
        }
    }
    // A spin-up still open at stream end can only overlap queue windows
    // of requests that never completed, so it is safely dropped.

    // Issue metadata join: (node, id) -> (access, recovery).
    let mut meta: BTreeMap<(u32, u64), (Option<u64>, bool)> = BTreeMap::new();
    for e in events {
        if let TraceEvent::RequestIssued {
            node,
            id,
            access,
            attempt,
            recovery,
            ..
        } = *e
        {
            meta.insert((node, id), (access, recovery || attempt > 0));
        }
    }

    let mut out = Vec::new();
    for e in events {
        let TraceEvent::Request {
            node,
            disk,
            id,
            arrival,
            start,
            end,
            energy_nj,
        } = *e
        else {
            continue;
        };
        let queue_us = start.saturating_since(arrival).as_micros();
        let service_us = end.saturating_since(start).as_micros();
        let spin_up_us = spin_ups
            .get(&(node, disk))
            .map(|ivs| {
                ivs.iter()
                    .map(|&(s, e)| overlap_us(arrival, start, s, e))
                    .sum()
            })
            .unwrap_or(0)
            .min(queue_us);
        let (access, recovery) = meta.get(&(node, id)).copied().unwrap_or((None, false));
        out.push(RequestLatency {
            node,
            disk,
            id,
            access,
            recovery,
            response_us: queue_us + service_us,
            queue_us,
            spin_up_us,
            wait_us: queue_us - spin_up_us,
            service_us,
            energy_nj,
        });
    }
    out
}

/// Length of the intersection of `[a0, a1)` and `[b0, b1)` in integer
/// microseconds.
fn overlap_us(a0: SimTime, a1: SimTime, b0: SimTime, b1: SimTime) -> u64 {
    let lo = a0.max(b0);
    let hi = a1.min(b1);
    hi.saturating_since(lo).as_micros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn issue(node: u32, disk: u32, id: u64, at: u64, access: Option<u64>) -> TraceEvent {
        TraceEvent::RequestIssued {
            at: t(at),
            node,
            disk,
            id,
            access,
            attempt: 0,
            recovery: false,
        }
    }

    fn done(node: u32, disk: u32, id: u64, arrival: u64, start: u64, end: u64) -> TraceEvent {
        TraceEvent::Request {
            node,
            disk,
            id,
            arrival: t(arrival),
            start: t(start),
            end: t(end),
            energy_nj: 1_000,
        }
    }

    #[test]
    fn builds_access_rooted_trees() {
        let events = vec![
            TraceEvent::AccessStart {
                at: t(0),
                access: 0,
            },
            issue(0, 0, 1, 0, Some(0)),
            issue(0, 1, 2, 0, Some(0)),
            issue(0, 2, 3, 5, None), // prefetch: unparented
            done(0, 0, 1, 0, 10, 50),
            done(0, 1, 2, 0, 12, 60),
            TraceEvent::AccessEnd {
                at: t(70),
                access: 0,
            },
        ];
        let forest = SpanForest::build(&events);
        assert_eq!(forest.accesses.len(), 1);
        assert_eq!(forest.accesses[0].requests.len(), 2);
        assert_eq!(forest.requests.len(), 3);
        assert_eq!(forest.accesses[0].end, Some(t(70)));
        assert_eq!(forest.total_energy_nj(), 2_000);
        assert_eq!(forest.recovery_spans(), 0);
        let json = forest.to_json();
        assert!(json.starts_with("{\"accesses\":["));
        assert!(json.contains("\"unparented\":[{\"node\":0,\"disk\":2,\"id\":3"));
    }

    #[test]
    fn recovery_and_faults_attach_to_spans() {
        let events = vec![
            issue(0, 0, 1, 0, Some(4)),
            TraceEvent::FaultInjected {
                at: t(30),
                node: 0,
                disk: 0,
                id: 1,
                kind: "transient",
            },
            TraceEvent::RequestIssued {
                at: t(40),
                node: 0,
                disk: 0,
                id: 2,
                access: Some(4),
                attempt: 1,
                recovery: false,
            },
            done(0, 0, 2, 40, 45, 90),
        ];
        let forest = SpanForest::build(&events);
        assert_eq!(forest.requests.len(), 2);
        assert_eq!(forest.requests[0].faults, 1);
        assert!(!forest.requests[0].completed());
        assert_eq!(forest.requests[1].attempt, 1);
        assert_eq!(forest.recovery_spans(), 1);
    }

    #[test]
    fn decompose_is_exact_and_splits_spin_up() {
        let events = vec![
            issue(0, 0, 7, 100, Some(2)),
            // The disk spins up inside the queue window [100, 400).
            TraceEvent::DiskState {
                at: t(150),
                node: 0,
                disk: 0,
                from: "standby",
                to: "spin-up",
                rpm: 0,
            },
            TraceEvent::DiskState {
                at: t(350),
                node: 0,
                disk: 0,
                from: "spin-up",
                to: "idle",
                rpm: 12_000,
            },
            done(0, 0, 7, 100, 400, 650),
        ];
        let lat = decompose(&events);
        assert_eq!(lat.len(), 1);
        let r = &lat[0];
        assert_eq!(r.response_us, 550);
        assert_eq!(r.queue_us, 300);
        assert_eq!(r.spin_up_us, 200);
        assert_eq!(r.wait_us, 100);
        assert_eq!(r.service_us, 250);
        assert_eq!(r.queue_us + r.service_us, r.response_us);
        assert_eq!(r.spin_up_us + r.wait_us, r.queue_us);
        assert_eq!(r.access, Some(2));
        assert!(!r.recovery);
    }

    #[test]
    fn decompose_without_transitions_charges_pure_wait() {
        let events = vec![done(1, 0, 9, 0, 40, 100)];
        let lat = decompose(&events);
        assert_eq!(lat[0].spin_up_us, 0);
        assert_eq!(lat[0].wait_us, 40);
        assert_eq!(lat[0].response_us, 100);
    }
}
