//! Discrete-event simulation core for the SDDS reproduction.
//!
//! This crate provides the time base, event queue, deterministic random
//! number generation and statistics gathering used by every other crate in
//! the workspace:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time
//!   with checked arithmetic,
//! * [`EventQueue`] — a stable priority queue of timestamped events with
//!   deterministic FIFO tie-breaking,
//! * [`DetRng`] — a seeded random number generator so that every simulation
//!   run is exactly reproducible, with [`StreamId`]-keyed stream splitting
//!   so independent subsystems can never collide on one stream,
//! * [`fault`] — seed-deterministic disk fault plans (transient errors,
//!   bad sectors, stragglers, crash windows) expanded up front on their
//!   own RNG stream,
//! * [`hash`] — a deterministic fixed-seed FxHash-style hasher for
//!   hot-path maps (identical hashes on every platform and process),
//! * [`kernel`] — the unified event kernel: a slot-based calendar queue
//!   with pluggable same-time arbitration, plus a [`kernel::Component`]
//!   trait and driver for composing event sources,
//! * [`pool`] — a bounded deterministic thread-pool executor for fanning
//!   out independent simulations (`--jobs` changes wall time, not results),
//! * [`span`] — causal span trees folded from the trace stream: access
//!   roots with parent-linked member requests, exact per-span energy and
//!   an exact latency critical-path decomposition,
//! * [`shard`] — the sharded time-domain kernel: components partitioned
//!   across per-shard calendars advancing in epoch windows with barrier
//!   message exchange in a canonical order, bitwise identical for any
//!   worker count,
//! * [`stats`] — online summaries, bucketed histograms and CDFs used to
//!   reproduce the figures of the paper,
//! * [`telemetry`] — structured trace events, export formats (JSONL and
//!   Chrome `trace_event`) and a named-metrics registry for observing
//!   runs without perturbing them.
//!
//! # Example
//!
//! ```
//! use simkit::{EventQueue, SimTime, SimDuration};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.schedule(SimTime::ZERO, "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!(t, SimTime::ZERO);
//! assert_eq!(e, "a");
//! ```

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_debug_implementations)]

mod event;
pub mod fault;
pub mod hash;
pub mod kernel;
pub mod pool;
mod rng;
pub mod shard;
pub mod span;
pub mod stats;
pub mod telemetry;
mod time;

pub use event::EventQueue;
pub use rng::{DetRng, StreamId};
pub use time::{SimDuration, SimTime};
