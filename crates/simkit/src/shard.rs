//! Sharded time-domain event kernel.
//!
//! [`ShardedKernel`] partitions a scene's components across *shards*, each
//! owning a private [`Calendar`] and message inbox, and runs the shards in
//! lock-step *epochs* of a fixed time window. Within an epoch every shard
//! advances independently (optionally on parallel workers); at the epoch
//! barrier all cross-component messages produced during the epoch are
//! exchanged in one canonical order and the next epoch window is derived
//! from the global minimum next-event time (empty windows are skipped, so
//! sparse scenes do not pay per-window cost).
//!
//! # Determinism
//!
//! The simulated outcome is **bitwise identical for any worker count and
//! any shard partition**:
//!
//! * Every message — even one whose destination lives on the same shard —
//!   travels through the epoch outbox and is delivered from the
//!   destination inbox, a [`std::collections::BinaryHeap`] ordered by the
//!   globally unique key `(deliver_at, dst, src, seq)` where `seq` is a
//!   per-sender monotone counter. Delivery order therefore never depends
//!   on which shard or worker produced the message.
//! * Epoch boundaries are aligned to a fixed grid of `window`-sized cells
//!   and chosen from the *global* minimum next-event time, which is a
//!   partition-independent quantity.
//! * Within a shard, same-time ties are resolved messages-first, then by
//!   the canonical message key, then by calendar registration order —
//!   all partition-independent for components that only interact through
//!   messages.
//!
//! # Lookahead
//!
//! Conservative epoch synchronization is only correct when a message sent
//! at time `t` inside a window `[s, s + w)` is delivered at or after
//! `s + w`. Components guarantee this by using a hop latency `≥ w` for
//! every send; the kernel verifies the invariant at each barrier and
//! returns [`ShardError::LookaheadViolation`] instead of silently
//! reordering history.
//!
//! # Example
//!
//! ```
//! use simkit::shard::{GlobalSlot, ShardComponent, ShardCtx, ShardedKernel};
//! use simkit::{SimDuration, SimTime};
//!
//! /// Sends one message to a peer, counts what it receives.
//! struct Node { peer: Option<GlobalSlot>, start: Option<SimTime>, received: u32 }
//!
//! impl ShardComponent<u32> for Node {
//!     fn next_tick(&self) -> Option<SimTime> { self.start }
//!     fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, u32>) {
//!         self.start = None;
//!         if let Some(peer) = self.peer {
//!             ctx.send(peer, now + SimDuration::from_millis(1), 7);
//!         }
//!     }
//!     fn on_message(&mut self, _now: SimTime, msg: u32, _ctx: &mut ShardCtx<'_, u32>) {
//!         self.received += msg;
//!     }
//! }
//!
//! let mut k = ShardedKernel::new(2, SimDuration::from_millis(1)).unwrap();
//! let a = k.add(0, Node { peer: None, start: None, received: 0 }).unwrap();
//! let _b = k.add(1, Node { peer: Some(a), start: Some(SimTime::ZERO), received: 0 }).unwrap();
//! let stats = k.run(1, SimTime::MAX).unwrap();
//! assert_eq!(stats.events, 2);
//! assert_eq!(k.components().next().unwrap().received, 7);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::kernel::{ArbitrationPolicy, Calendar, SlotId};
use crate::{SimDuration, SimTime};

/// Identifies a component across every shard of a [`ShardedKernel`].
///
/// Slots are handed out by [`ShardedKernel::add`] in registration order
/// and are the addresses used by [`ShardCtx::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalSlot(u32);

impl GlobalSlot {
    /// The slot's position in global registration order.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The slot that will be (or was) handed out `index`-th by
    /// [`ShardedKernel::add`]. Lets scene builders precompute a layout;
    /// a message to a slot that never registers fails the run with
    /// [`ShardError::UnknownSlot`].
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        GlobalSlot(index as u32)
    }
}

/// A component that lives on a shard and interacts with the rest of the
/// scene exclusively through timestamped messages.
///
/// The contract mirrors [`crate::kernel::Component`] but replaces the
/// shared-heap emitter with addressed sends: all interaction between
/// components must go through [`ShardCtx::send`] with a delivery latency
/// of at least the kernel's epoch window.
pub trait ShardComponent<M>: Send {
    /// The next time this component wants [`Self::tick`] to run, if any.
    ///
    /// Re-read after every `tick`/`on_message`; returning a time earlier
    /// than the event just processed is clamped up to it.
    fn next_tick(&self) -> Option<SimTime>;

    /// Called when simulated time reaches [`Self::next_tick`].
    fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, M>);

    /// Called when a message addressed to this component is delivered.
    fn on_message(&mut self, now: SimTime, msg: M, ctx: &mut ShardCtx<'_, M>);
}

/// Per-event context handed to [`ShardComponent`] callbacks; collects
/// outgoing messages into the shard's epoch outbox.
pub struct ShardCtx<'a, M> {
    now: SimTime,
    self_slot: GlobalSlot,
    outbox: &'a mut Vec<Envelope<M>>,
    seq: &'a mut u64,
}

impl<M> ShardCtx<'_, M> {
    /// The timestamp of the event being processed.
    #[inline]
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The global slot of the component being called.
    #[inline]
    #[must_use]
    pub fn self_slot(&self) -> GlobalSlot {
        self.self_slot
    }

    /// Sends `msg` to `dst` for delivery at simulated time `at`.
    ///
    /// `at` must satisfy the kernel's lookahead contract: it has to fall
    /// at or after the end of the epoch window the send happens in (any
    /// fixed latency `≥` the epoch window does, because windows are
    /// grid-aligned). Violations are detected at the next barrier and
    /// reported as [`ShardError::LookaheadViolation`].
    #[inline]
    pub fn send(&mut self, dst: GlobalSlot, at: SimTime, msg: M) {
        let seq = *self.seq;
        *self.seq = seq.wrapping_add(1);
        self.outbox.push(Envelope {
            at,
            dst: dst.0,
            src: self.self_slot.0,
            seq,
            dst_shard: 0,
            dst_local: 0,
            msg,
        });
    }
}

impl<M> fmt::Debug for ShardCtx<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardCtx")
            .field("now", &self.now)
            .field("self_slot", &self.self_slot)
            .finish_non_exhaustive()
    }
}

/// A message in flight. Ordered by the globally unique canonical key
/// `(at, dst, src, seq)`; the payload never participates in ordering.
struct Envelope<M> {
    at: SimTime,
    dst: u32,
    src: u32,
    seq: u64,
    /// Routing hints filled in by the kernel during the barrier exchange.
    dst_shard: u32,
    dst_local: u32,
    msg: M,
}

impl<M> Envelope<M> {
    #[inline]
    fn key(&self) -> (SimTime, u32, u32, u64) {
        (self.at, self.dst, self.src, self.seq)
    }
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Envelope<M> {}
impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Errors from building or running a [`ShardedKernel`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShardError {
    /// The kernel was asked for zero shards.
    NoShards,
    /// The epoch window must be a positive duration.
    ZeroWindow,
    /// `add` named a shard index outside `0..shard_count`.
    UnknownShard {
        /// The out-of-range shard index.
        shard: usize,
        /// The number of shards the kernel was built with.
        shards: usize,
    },
    /// A message was addressed to a slot that was never registered.
    UnknownSlot {
        /// The sender's global slot index.
        src: u32,
        /// The unregistered destination index.
        dst: u32,
    },
    /// A message's delivery time fell inside the epoch window it was
    /// sent in, breaking conservative synchronization.
    LookaheadViolation {
        /// The sender's global slot index.
        src: u32,
        /// The offending delivery time.
        at: SimTime,
        /// The end of the epoch window the send happened in.
        epoch_end: SimTime,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "sharded kernel needs at least one shard"),
            ShardError::ZeroWindow => write!(f, "epoch window must be positive"),
            ShardError::UnknownShard { shard, shards } => {
                write!(
                    f,
                    "shard index {shard} out of range (kernel has {shards} shards)"
                )
            }
            ShardError::UnknownSlot { src, dst } => {
                write!(
                    f,
                    "component {src} sent a message to unregistered slot {dst}"
                )
            }
            ShardError::LookaheadViolation { src, at, epoch_end } => write!(
                f,
                "component {src} sent a message for t={}us inside its own epoch window \
                 (epoch ends at t={}us); sends must use a latency >= the epoch window",
                at.as_micros(),
                epoch_end.as_micros()
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// One observed event from a shard's log, in the canonical
/// partition-invariant order.
///
/// The derived `Ord` is the canonical key: message deliveries sort as
/// `(at, 0, dst, src, seq)` and calendar ticks as `(at, 1, slot, 0, 0)`,
/// mirroring the kernel's messages-first tie rule. Because the *set* of
/// processed events is partition-invariant, sorting the concatenated
/// per-shard logs (see [`merge_events`]) yields a stream that is byte
/// identical for every worker count and shard partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// `0` for a message delivery, `1` for a calendar tick.
    pub kind: u8,
    /// Destination slot for messages; the ticking slot for ticks.
    pub slot: u32,
    /// Sender slot for messages; `0` for ticks.
    pub src: u32,
    /// Sender sequence number for messages; `0` for ticks.
    pub seq: u64,
}

/// Per-epoch delta counters from one shard.
///
/// Every shard records exactly one entry per global epoch (a shard with
/// no work in the window records zeros), so the epoch logs of all shards
/// align by index and can be compared side by side for barrier-stall and
/// load-imbalance accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochObs {
    /// End of the epoch window (exclusive).
    pub end: SimTime,
    /// Events this shard processed inside the window.
    pub events: u64,
    /// Message deliveries among those events.
    pub messages: u64,
}

/// Everything one shard observed during a run: its event log in local
/// processing order and its per-epoch delta log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardObs {
    /// Events in the order this shard processed them.
    pub events: Vec<ShardEvent>,
    /// One delta entry per epoch, aligned across shards by index.
    pub epochs: Vec<EpochObs>,
}

/// Merges per-shard event logs into the canonical partition-invariant
/// stream (sorted by the [`ShardEvent`] key). The result is identical
/// for every worker count and every shard partition of the same scene.
#[must_use]
pub fn merge_events(obs: &[ShardObs]) -> Vec<ShardEvent> {
    let mut all: Vec<ShardEvent> = obs.iter().flat_map(|o| o.events.iter().copied()).collect();
    all.sort_unstable();
    all
}

/// Load-imbalance summary for one epoch, derived from the aligned
/// per-shard epoch logs by [`epoch_imbalance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochImbalance {
    /// End of the epoch window (exclusive).
    pub end: SimTime,
    /// Events processed by the busiest shard this epoch.
    pub max_events: u64,
    /// Events processed by all shards this epoch.
    pub total_events: u64,
    /// `Σ (max_events − shard events)`: the events' worth of capacity
    /// the other shards spend waiting at the epoch barrier while the
    /// busiest shard finishes — the kernel's barrier-stall proxy.
    pub stall_events: u64,
}

/// Folds aligned per-shard epoch logs into per-epoch barrier-stall and
/// load-imbalance accounting. Epochs are aligned by index; a shard
/// whose log is shorter (possible only after a mid-run error) simply
/// contributes zeros to the trailing epochs.
#[must_use]
pub fn epoch_imbalance(obs: &[ShardObs]) -> Vec<EpochImbalance> {
    let epochs = obs.iter().map(|o| o.epochs.len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(epochs);
    for e in 0..epochs {
        let mut end = SimTime::ZERO;
        let mut max_events = 0u64;
        let mut total = 0u64;
        for o in obs {
            if let Some(d) = o.epochs.get(e) {
                end = end.max(d.end);
                max_events = max_events.max(d.events);
                total += d.events;
            }
        }
        let stall = obs
            .iter()
            .map(|o| max_events - o.epochs.get(e).map_or(0, |d| d.events))
            .sum();
        out.push(EpochImbalance {
            end,
            max_events,
            total_events: total,
            stall_events: stall,
        });
    }
    out
}

/// Aggregate counters from one [`ShardedKernel::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardRunStats {
    /// Total events processed (calendar ticks + message deliveries).
    pub events: u64,
    /// Message deliveries alone (a subset of `events`).
    pub messages: u64,
    /// Number of non-empty epoch windows executed.
    pub epochs: u64,
    /// Timestamp of the latest event processed (`SimTime::ZERO` if none).
    pub end: SimTime,
    /// Order-sensitive digest of every `(time, slot, kind)` processed,
    /// folded per shard then combined in shard order. Identical for any
    /// worker count; it *does* depend on the shard partition.
    pub trace_hash: u64,
}

/// One shard: a calendar of local components plus its message inbox,
/// epoch outbox and per-sender sequence counters.
struct Shard<M, C> {
    cal: Calendar,
    slots: Vec<SlotId>,
    globals: Vec<u32>,
    comps: Vec<C>,
    seqs: Vec<u64>,
    inbox: BinaryHeap<Reverse<Envelope<M>>>,
    outbox: Vec<Envelope<M>>,
    events: u64,
    messages: u64,
    last: SimTime,
    trace_hash: u64,
    /// Opt-in observability log; `None` (the default) records nothing.
    obs: Option<ShardObs>,
}

/// FxHash-style one-word fold used for the trace digest.
#[inline]
fn mix(h: u64, x: u64) -> u64 {
    (h.rotate_left(5) ^ x).wrapping_mul(0x517c_c1b7_2722_0a95)
}

impl<M, C: ShardComponent<M>> Shard<M, C> {
    fn new() -> Self {
        Shard {
            cal: Calendar::new(ArbitrationPolicy::Deterministic),
            slots: Vec::new(),
            globals: Vec::new(),
            comps: Vec::new(),
            seqs: Vec::new(),
            inbox: BinaryHeap::new(),
            outbox: Vec::new(),
            events: 0,
            messages: 0,
            last: SimTime::ZERO,
            trace_hash: 0,
            obs: None,
        }
    }

    /// Earliest pending work on this shard (tick or queued delivery).
    fn next_time(&mut self) -> Option<SimTime> {
        let msg = self.inbox.peek().map(|Reverse(e)| e.at);
        let tick = self.cal.peek_time();
        match (msg, tick) {
            (Some(m), Some(t)) => Some(m.min(t)),
            (m, t) => m.or(t),
        }
    }

    /// Runs every event strictly before `end`, messages first on ties.
    fn run_epoch(&mut self, end: SimTime) {
        let (events_at_start, messages_at_start) = (self.events, self.messages);
        loop {
            let msg = self.inbox.peek().map(|Reverse(e)| e.at);
            let tick = self.cal.peek_time();
            let deliver = match (msg, tick) {
                (None, None) => break,
                (Some(m), None) => {
                    if m >= end {
                        break;
                    }
                    true
                }
                (None, Some(t)) => {
                    if t >= end {
                        break;
                    }
                    false
                }
                (Some(m), Some(t)) => {
                    let earliest = m.min(t);
                    if earliest >= end {
                        break;
                    }
                    m <= t
                }
            };
            if deliver {
                let Some(Reverse(env)) = self.inbox.pop() else {
                    break;
                };
                if let Some(obs) = self.obs.as_mut() {
                    obs.events.push(ShardEvent {
                        at: env.at,
                        kind: 0,
                        slot: env.dst,
                        src: env.src,
                        seq: env.seq,
                    });
                }
                let li = env.dst_local as usize;
                let mut ctx = ShardCtx {
                    now: env.at,
                    self_slot: GlobalSlot(env.dst),
                    outbox: &mut self.outbox,
                    seq: &mut self.seqs[li],
                };
                self.comps[li].on_message(env.at, env.msg, &mut ctx);
                let next = self.comps[li].next_tick().map(|t| t.max(env.at));
                self.cal.retarget(self.slots[li], next);
                self.events += 1;
                self.messages += 1;
                self.last = self.last.max(env.at);
                self.trace_hash = mix(
                    mix(self.trace_hash, env.at.as_micros()),
                    (u64::from(env.dst) << 1) | 1,
                );
            } else {
                let Some((t, slot)) = self.cal.pop() else {
                    break;
                };
                let li = slot.index();
                if let Some(obs) = self.obs.as_mut() {
                    obs.events.push(ShardEvent {
                        at: t,
                        kind: 1,
                        slot: self.globals[li],
                        src: 0,
                        seq: 0,
                    });
                }
                let mut ctx = ShardCtx {
                    now: t,
                    self_slot: GlobalSlot(self.globals[li]),
                    outbox: &mut self.outbox,
                    seq: &mut self.seqs[li],
                };
                self.comps[li].tick(t, &mut ctx);
                let next = self.comps[li].next_tick().map(|n| n.max(t));
                self.cal.retarget(slot, next);
                self.events += 1;
                self.last = self.last.max(t);
                self.trace_hash = mix(
                    mix(self.trace_hash, t.as_micros()),
                    u64::from(self.globals[li]) << 1,
                );
            }
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.epochs.push(EpochObs {
                end,
                events: self.events - events_at_start,
                messages: self.messages - messages_at_start,
            });
        }
    }
}

/// Envelopes grouped by destination shard plus their minimum delivery
/// time, as produced by the barrier exchange.
type RoutedEnvelopes<M> = (Vec<Vec<Envelope<M>>>, Option<SimTime>);

/// Mailbox shared between the coordinator and one worker thread.
struct WorkerSlot<M> {
    /// Messages routed to this worker's shards, absorbed at epoch start.
    incoming: Mutex<Vec<Envelope<M>>>,
    /// This worker's epoch products: collected outboxes and the minimum
    /// next-event time across its shards after the epoch ran.
    report: Mutex<(Vec<Envelope<M>>, Option<SimTime>)>,
}

/// The sharded epoch-barrier kernel. See the [module docs](self) for the
/// execution model and determinism argument.
pub struct ShardedKernel<M, C> {
    shards: Vec<Shard<M, C>>,
    /// Global slot index → `(shard, local index)`.
    index: Vec<(u32, u32)>,
    window: SimDuration,
}

impl<M, C> fmt::Debug for ShardedKernel<M, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedKernel")
            .field("shards", &self.shards.len())
            .field("components", &self.index.len())
            .field("window", &self.window)
            .finish()
    }
}

impl<M: Send, C: ShardComponent<M>> ShardedKernel<M, C> {
    /// Creates a kernel with `shards` empty shards and the given epoch
    /// window. Fails on zero shards or a zero window.
    pub fn new(shards: usize, window: SimDuration) -> Result<Self, ShardError> {
        if shards == 0 {
            return Err(ShardError::NoShards);
        }
        if window.is_zero() {
            return Err(ShardError::ZeroWindow);
        }
        let mut v = Vec::with_capacity(shards);
        for _ in 0..shards {
            v.push(Shard::new());
        }
        Ok(ShardedKernel {
            shards: v,
            index: Vec::new(),
            window,
        })
    }

    /// Registers `component` on shard `shard`, returning its global slot.
    ///
    /// The component's initial [`ShardComponent::next_tick`] is targeted
    /// immediately.
    pub fn add(&mut self, shard: usize, component: C) -> Result<GlobalSlot, ShardError> {
        let Some(s) = self.shards.get_mut(shard) else {
            return Err(ShardError::UnknownShard {
                shard,
                shards: self.shards.len(),
            });
        };
        let global = GlobalSlot(self.index.len() as u32);
        let slot = s.cal.register();
        s.cal.retarget(slot, component.next_tick());
        s.slots.push(slot);
        s.globals.push(global.0);
        s.comps.push(component);
        s.seqs.push(0);
        self.index.push((shard as u32, (s.comps.len() - 1) as u32));
        Ok(global)
    }

    /// The epoch window.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Turns on per-shard observability: every shard starts recording
    /// its event log and per-epoch deltas (see [`ShardObs`]). Purely
    /// additive — the simulated outcome is bitwise identical with the
    /// observer on or off. Call before [`Self::run`].
    pub fn enable_observer(&mut self) {
        for s in &mut self.shards {
            if s.obs.is_none() {
                s.obs = Some(ShardObs::default());
            }
        }
    }

    /// Drains the per-shard observations, one entry per shard in shard
    /// order. Shards that never had the observer enabled yield empty
    /// logs. Recording continues on subsequent runs.
    pub fn take_observations(&mut self) -> Vec<ShardObs> {
        self.shards
            .iter_mut()
            .map(|s| match s.obs.as_mut() {
                Some(obs) => std::mem::take(obs),
                None => ShardObs::default(),
            })
            .collect()
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.index.len()
    }

    /// Iterates components in global registration order.
    pub fn components(&self) -> impl Iterator<Item = &C> {
        self.index
            .iter()
            .map(|&(s, l)| &self.shards[s as usize].comps[l as usize])
    }

    /// Consumes the kernel, returning components in global registration
    /// order.
    #[must_use]
    pub fn into_components(self) -> Vec<C> {
        let mut pools: Vec<Vec<Option<C>>> = self
            .shards
            .into_iter()
            .map(|s| s.comps.into_iter().map(Some).collect())
            .collect();
        self.index
            .iter()
            .filter_map(|&(s, l)| pools[s as usize][l as usize].take())
            .collect()
    }

    /// End of the grid-aligned epoch cell containing `t`.
    fn cell_end(&self, t: SimTime) -> SimTime {
        let w = self.window.as_micros().max(1);
        let cell = t.as_micros() / w;
        SimTime::from_micros(cell.saturating_add(1).saturating_mul(w))
    }

    /// Routes one epoch's collected envelopes: verifies the lookahead
    /// contract, resolves destination shard/local indices, and returns
    /// the envelopes grouped by destination shard along with the minimum
    /// delivery time.
    fn route(
        &self,
        collected: Vec<Envelope<M>>,
        epoch_end: SimTime,
    ) -> Result<RoutedEnvelopes<M>, ShardError> {
        let mut per_shard: Vec<Vec<Envelope<M>>> = Vec::with_capacity(self.shards.len());
        per_shard.resize_with(self.shards.len(), Vec::new);
        let mut min_at: Option<SimTime> = None;
        for mut env in collected {
            if env.at < epoch_end {
                return Err(ShardError::LookaheadViolation {
                    src: env.src,
                    at: env.at,
                    epoch_end,
                });
            }
            let Some(&(s, l)) = self.index.get(env.dst as usize) else {
                return Err(ShardError::UnknownSlot {
                    src: env.src,
                    dst: env.dst,
                });
            };
            env.dst_shard = s;
            env.dst_local = l;
            min_at = Some(min_at.map_or(env.at, |m| m.min(env.at)));
            per_shard[s as usize].push(env);
        }
        Ok((per_shard, min_at))
    }

    /// Runs the scene until it is quiescent or the next event time
    /// exceeds `horizon` (pass [`SimTime::MAX`] to run to quiescence;
    /// a mid-window horizon still finishes its epoch window).
    ///
    /// `jobs` is the worker count: `0` means the process-wide
    /// [`crate::pool::jobs`] setting, `1` runs inline, larger values run
    /// shards on that many persistent worker threads. The result is
    /// bitwise identical for every `jobs` value.
    pub fn run(&mut self, jobs: usize, horizon: SimTime) -> Result<ShardRunStats, ShardError> {
        let jobs = if jobs == 0 { crate::pool::jobs() } else { jobs };
        let workers = jobs.min(self.shards.len()).max(1);
        let epochs = if workers <= 1 {
            self.run_inline(horizon)?
        } else {
            self.run_threaded(workers, horizon)?
        };
        let mut stats = ShardRunStats {
            epochs,
            ..ShardRunStats::default()
        };
        for s in &self.shards {
            stats.events += s.events;
            stats.messages += s.messages;
            stats.end = stats.end.max(s.last);
            stats.trace_hash = mix(stats.trace_hash, s.trace_hash);
        }
        Ok(stats)
    }

    /// Single-worker epoch loop; no threads, same exchange protocol.
    fn run_inline(&mut self, horizon: SimTime) -> Result<u64, ShardError> {
        let mut epochs = 0u64;
        loop {
            let next = self.shards.iter_mut().filter_map(Shard::next_time).min();
            let Some(t) = next else { break };
            if t > horizon {
                break;
            }
            let end = self.cell_end(t);
            for s in &mut self.shards {
                s.run_epoch(end);
            }
            epochs += 1;
            let mut collected = Vec::new();
            for s in &mut self.shards {
                collected.append(&mut s.outbox);
            }
            let (per_shard, _) = self.route(collected, end)?;
            for (s, envs) in self.shards.iter_mut().zip(per_shard) {
                for env in envs {
                    s.inbox.push(Reverse(env));
                }
            }
        }
        Ok(epochs)
    }

    /// Multi-worker epoch loop: persistent scoped threads, two barrier
    /// crossings per epoch (start work / collect results).
    fn run_threaded(&mut self, workers: usize, horizon: SimTime) -> Result<u64, ShardError> {
        // Shard i runs on worker i % workers at position i / workers;
        // the coordinator routes messages with the same arithmetic.
        let mut initial = self.shards.iter_mut().filter_map(Shard::next_time).min();
        let index = std::mem::take(&mut self.index);
        let window = self.window;
        let cell_end = |t: SimTime| {
            let w = window.as_micros().max(1);
            SimTime::from_micros((t.as_micros() / w).saturating_add(1).saturating_mul(w))
        };

        let mut assigned: Vec<Vec<&mut Shard<M, C>>> = Vec::with_capacity(workers);
        assigned.resize_with(workers, Vec::new);
        for (i, s) in self.shards.iter_mut().enumerate() {
            assigned[i % workers].push(s);
        }

        let slots: Vec<WorkerSlot<M>> = (0..workers)
            .map(|_| WorkerSlot {
                incoming: Mutex::new(Vec::new()),
                report: Mutex::new((Vec::new(), None)),
            })
            .collect();
        // Epoch end in micros; u64::MAX is the shutdown signal.
        let epoch_end = AtomicU64::new(0);
        let barrier = Barrier::new(workers + 1);

        let mut epochs = 0u64;
        let mut run_err: Option<ShardError> = None;

        std::thread::scope(|scope| {
            for (w, mine) in assigned.into_iter().enumerate() {
                let slot = &slots[w];
                let barrier = &barrier;
                let epoch_end = &epoch_end;
                let mut mine = mine;
                scope.spawn(move || loop {
                    barrier.wait();
                    let end = epoch_end.load(Ordering::SeqCst);
                    if end == u64::MAX {
                        break;
                    }
                    let end = SimTime::from_micros(end);
                    {
                        let mut inc = slot
                            .incoming
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        for env in inc.drain(..) {
                            let pos = (env.dst_shard as usize) / workers;
                            mine[pos].inbox.push(Reverse(env));
                        }
                    }
                    let mut out = Vec::new();
                    let mut next: Option<SimTime> = None;
                    for shard in mine.iter_mut() {
                        shard.run_epoch(end);
                        out.append(&mut shard.outbox);
                        if let Some(t) = shard.next_time() {
                            next = Some(next.map_or(t, |n| n.min(t)));
                        }
                    }
                    {
                        let mut rep = slot
                            .report
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        *rep = (out, next);
                    }
                    barrier.wait();
                });
            }

            // Coordinator loop.
            while let Some(t) = initial {
                if t > horizon {
                    break;
                }
                let end = cell_end(t);
                epoch_end.store(end.as_micros(), Ordering::SeqCst);
                barrier.wait(); // workers absorb + run the epoch
                barrier.wait(); // workers published their reports
                epochs += 1;

                let mut collected = Vec::new();
                let mut min_next: Option<SimTime> = None;
                for slot in &slots {
                    let mut rep = slot
                        .report
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let (out, next) = std::mem::take(&mut *rep);
                    collected.extend(out);
                    if let Some(t) = next {
                        min_next = Some(min_next.map_or(t, |n| n.min(t)));
                    }
                }
                let mut min_routed: Option<SimTime> = None;
                let mut routed: Vec<Vec<Envelope<M>>> = Vec::with_capacity(workers);
                routed.resize_with(workers, Vec::new);
                let mut failed = None;
                for mut env in collected {
                    if env.at < end {
                        failed = Some(ShardError::LookaheadViolation {
                            src: env.src,
                            at: env.at,
                            epoch_end: end,
                        });
                        break;
                    }
                    let Some(&(s, l)) = index.get(env.dst as usize) else {
                        failed = Some(ShardError::UnknownSlot {
                            src: env.src,
                            dst: env.dst,
                        });
                        break;
                    };
                    env.dst_shard = s;
                    env.dst_local = l;
                    min_routed = Some(min_routed.map_or(env.at, |m| m.min(env.at)));
                    routed[(s as usize) % workers].push(env);
                }
                if let Some(e) = failed {
                    run_err = Some(e);
                    break;
                }
                for (slot, envs) in slots.iter().zip(routed) {
                    if !envs.is_empty() {
                        let mut inc = slot
                            .incoming
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        inc.extend(envs);
                    }
                }
                initial = match (min_next, min_routed) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            epoch_end.store(u64::MAX, Ordering::SeqCst);
            barrier.wait();
        });

        self.index = index;
        match run_err {
            Some(e) => Err(e),
            None => Ok(epochs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOP: SimDuration = SimDuration::from_millis(1);

    /// A chatty node: ticks once at `start`, then ping-pongs with `peer`
    /// until `rounds` messages have been received, logging every receipt.
    struct Chatty {
        peer: GlobalSlot,
        start: Option<SimTime>,
        rounds: u32,
        received: u32,
        log: Vec<(u64, u32)>,
    }

    impl Chatty {
        fn new(peer: GlobalSlot, start_us: u64, rounds: u32) -> Self {
            Chatty {
                peer,
                start: Some(SimTime::from_micros(start_us)),
                rounds,
                received: 0,
                log: Vec::new(),
            }
        }
    }

    impl ShardComponent<u32> for Chatty {
        fn next_tick(&self) -> Option<SimTime> {
            self.start
        }
        fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, u32>) {
            self.start = None;
            ctx.send(self.peer, now + HOP, 0);
        }
        fn on_message(&mut self, now: SimTime, msg: u32, ctx: &mut ShardCtx<'_, u32>) {
            self.received += 1;
            self.log.push((now.as_micros(), msg));
            if self.received < self.rounds {
                ctx.send(self.peer, now + HOP, msg + 1);
            }
        }
    }

    /// Builds a ring of `n` chatty pairs spread over `shards` shards.
    fn build_ring(shards: usize, n: usize, rounds: u32) -> ShardedKernel<u32, Chatty> {
        let mut k = ShardedKernel::new(shards, HOP).unwrap();
        // Slot ids are allocated in registration order, so peers can be
        // computed up front: component i talks to i^1 (its pair).
        for i in 0..n {
            let peer = GlobalSlot((i ^ 1) as u32);
            let c = Chatty::new(peer, (i as u64 * 37) % 500, rounds);
            k.add(i % shards, c).unwrap();
        }
        k
    }

    fn fingerprint(k: &ShardedKernel<u32, Chatty>) -> Vec<(u32, Vec<(u64, u32)>)> {
        k.components()
            .map(|c| (c.received, c.log.clone()))
            .collect()
    }

    #[test]
    fn ping_pong_terminates_with_expected_counts() {
        let mut k = build_ring(2, 2, 4);
        let stats = k.run(1, SimTime::MAX).unwrap();
        // 2 ticks + messages until both sides have received 4.
        let comps: Vec<_> = k.components().collect();
        assert_eq!(comps[0].received, 4);
        assert_eq!(comps[1].received, 4);
        assert_eq!(stats.messages, 8);
        assert_eq!(stats.events, 10);
        assert!(stats.end > SimTime::ZERO);
    }

    #[test]
    fn jobs_invariance_bitwise() {
        let mut base = build_ring(4, 16, 8);
        let s1 = base.run(1, SimTime::MAX).unwrap();
        let f1 = fingerprint(&base);
        for jobs in [2usize, 3, 4, 8] {
            let mut k = build_ring(4, 16, 8);
            let s = k.run(jobs, SimTime::MAX).unwrap();
            assert_eq!(s, s1, "stats diverged at jobs={jobs}");
            assert_eq!(fingerprint(&k), f1, "logs diverged at jobs={jobs}");
        }
    }

    #[test]
    fn partition_invariance_of_component_state() {
        let mut one = build_ring(1, 16, 8);
        let s_one = one.run(1, SimTime::MAX).unwrap();
        let f_one = fingerprint(&one);
        for shards in [2usize, 3, 5, 16] {
            let mut k = build_ring(shards, 16, 8);
            let s = k.run(2, SimTime::MAX).unwrap();
            assert_eq!(s.events, s_one.events, "events diverged at shards={shards}");
            assert_eq!(s.messages, s_one.messages);
            assert_eq!(s.end, s_one.end);
            assert_eq!(fingerprint(&k), f_one, "state diverged at shards={shards}");
        }
    }

    #[test]
    fn skip_ahead_keeps_epoch_count_low() {
        // Two components exchanging sparse messages 100 windows apart:
        // the kernel must skip empty windows rather than step each one.
        struct Sparse {
            peer: GlobalSlot,
            start: Option<SimTime>,
            left: u32,
        }
        impl ShardComponent<u32> for Sparse {
            fn next_tick(&self) -> Option<SimTime> {
                self.start
            }
            fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, u32>) {
                self.start = None;
                ctx.send(self.peer, now + HOP.mul_f64(100.0), 0);
            }
            fn on_message(&mut self, now: SimTime, _m: u32, ctx: &mut ShardCtx<'_, u32>) {
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send(self.peer, now + HOP.mul_f64(100.0), 0);
                }
            }
        }
        let mut k = ShardedKernel::new(2, HOP).unwrap();
        let a = k
            .add(
                0,
                Sparse {
                    peer: GlobalSlot(1),
                    start: Some(SimTime::ZERO),
                    left: 10,
                },
            )
            .unwrap();
        assert_eq!(a.index(), 0);
        k.add(
            1,
            Sparse {
                peer: a,
                start: None,
                left: 10,
            },
        )
        .unwrap();
        let stats = k.run(2, SimTime::MAX).unwrap();
        assert!(
            stats.epochs <= stats.events + 1,
            "epochs {} not sparse",
            stats.epochs
        );
        assert!(stats.end >= SimTime::from_micros(100_000 * 11));
    }

    #[test]
    fn lookahead_violation_is_reported() {
        struct Rude {
            peer: GlobalSlot,
            start: Option<SimTime>,
        }
        impl ShardComponent<u32> for Rude {
            fn next_tick(&self) -> Option<SimTime> {
                self.start
            }
            fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, u32>) {
                self.start = None;
                // Latency shorter than the epoch window: must be caught.
                ctx.send(self.peer, now + SimDuration::from_micros(1), 0);
            }
            fn on_message(&mut self, _n: SimTime, _m: u32, _c: &mut ShardCtx<'_, u32>) {}
        }
        for jobs in [1usize, 2] {
            let mut k = ShardedKernel::new(2, HOP).unwrap();
            let a = k
                .add(
                    0,
                    Rude {
                        peer: GlobalSlot(1),
                        start: Some(SimTime::ZERO),
                    },
                )
                .unwrap();
            k.add(
                1,
                Rude {
                    peer: a,
                    start: None,
                },
            )
            .unwrap();
            match k.run(jobs, SimTime::MAX) {
                Err(ShardError::LookaheadViolation { src, .. }) => assert_eq!(src, 0),
                other => panic!("expected lookahead violation, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_destination_is_reported() {
        struct Wild {
            start: Option<SimTime>,
        }
        impl ShardComponent<u32> for Wild {
            fn next_tick(&self) -> Option<SimTime> {
                self.start
            }
            fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, u32>) {
                self.start = None;
                ctx.send(GlobalSlot(999), now + HOP, 0);
            }
            fn on_message(&mut self, _n: SimTime, _m: u32, _c: &mut ShardCtx<'_, u32>) {}
        }
        let mut k = ShardedKernel::new(1, HOP).unwrap();
        k.add(
            0,
            Wild {
                start: Some(SimTime::ZERO),
            },
        )
        .unwrap();
        match k.run(1, SimTime::MAX) {
            Err(ShardError::UnknownSlot { dst, .. }) => assert_eq!(dst, 999),
            other => panic!("expected unknown slot, got {other:?}"),
        }
    }

    #[test]
    fn builder_errors() {
        assert_eq!(
            ShardedKernel::<u32, Chatty>::new(0, HOP).err(),
            Some(ShardError::NoShards)
        );
        assert_eq!(
            ShardedKernel::<u32, Chatty>::new(1, SimDuration::from_micros(0)).err(),
            Some(ShardError::ZeroWindow)
        );
        let mut k = ShardedKernel::<u32, Chatty>::new(2, HOP).unwrap();
        let c = Chatty::new(GlobalSlot(0), 0, 1);
        assert!(matches!(
            k.add(5, c),
            Err(ShardError::UnknownShard {
                shard: 5,
                shards: 2
            })
        ));
    }

    #[test]
    fn observer_event_stream_is_partition_invariant() {
        // Reference: single shard, inline.
        let mut one = build_ring(1, 16, 8);
        one.enable_observer();
        let s_one = one.run(1, SimTime::MAX).unwrap();
        let obs_one = one.take_observations();
        let merged_one = merge_events(&obs_one);
        assert_eq!(merged_one.len() as u64, s_one.events);
        // The merged stream is sorted by the canonical key.
        assert!(merged_one.windows(2).all(|w| w[0] <= w[1]));

        for (shards, jobs) in [(2usize, 1usize), (4, 2), (16, 4)] {
            let mut k = build_ring(shards, 16, 8);
            k.enable_observer();
            let s = k.run(jobs, SimTime::MAX).unwrap();
            let obs = k.take_observations();
            assert_eq!(obs.len(), shards);
            assert_eq!(
                merge_events(&obs),
                merged_one,
                "merged stream diverged at shards={shards} jobs={jobs}"
            );
            // Epoch deltas reconcile with the run totals.
            let events: u64 = obs.iter().flat_map(|o| &o.epochs).map(|d| d.events).sum();
            let messages: u64 = obs.iter().flat_map(|o| &o.epochs).map(|d| d.messages).sum();
            assert_eq!(events, s.events);
            assert_eq!(messages, s.messages);
            // Every shard logs every epoch, so the logs align by index.
            for o in &obs {
                assert_eq!(o.epochs.len() as u64, s.epochs);
            }
            let imbalance = epoch_imbalance(&obs);
            assert_eq!(imbalance.len() as u64, s.epochs);
            for epoch in &imbalance {
                assert!(epoch.max_events * (shards as u64) >= epoch.total_events);
                assert_eq!(
                    epoch.stall_events,
                    epoch.max_events * (shards as u64) - epoch.total_events
                );
            }
        }
    }

    #[test]
    fn observer_is_off_by_default_and_does_not_perturb_the_run() {
        let mut plain = build_ring(4, 16, 8);
        let s_plain = plain.run(2, SimTime::MAX).unwrap();
        let f_plain = fingerprint(&plain);
        assert!(plain
            .take_observations()
            .iter()
            .all(|o| o.events.is_empty() && o.epochs.is_empty()));

        let mut observed = build_ring(4, 16, 8);
        observed.enable_observer();
        let s_obs = observed.run(2, SimTime::MAX).unwrap();
        assert_eq!(s_obs, s_plain, "observer changed the simulated outcome");
        assert_eq!(fingerprint(&observed), f_plain);
    }

    #[test]
    fn into_components_preserves_global_order() {
        let mut k = build_ring(3, 8, 2);
        k.run(1, SimTime::MAX).unwrap();
        let peers: Vec<usize> = k.into_components().iter().map(|c| c.peer.index()).collect();
        let expect: Vec<usize> = (0..8).map(|i| i ^ 1).collect();
        assert_eq!(peers, expect);
    }
}
