//! Structured simulation tracing and a named-metrics registry.
//!
//! This module is the workspace's observability layer. It provides three
//! pieces, all allocation-free when tracing is disabled:
//!
//! * [`TraceEvent`] — a closed enum of timestamped simulation events
//!   (disk state transitions, power-policy decisions, request lifecycle
//!   spans, cache and prefetch activity). Every producer holds an
//!   `Option<TraceSink>`; the `None` arm is a branch on a niche-optimised
//!   option and performs no work, so the simulation hot path is unchanged
//!   when telemetry is off.
//! * [`TraceSink`] — an append-only event buffer that producers record
//!   into and the collector drains.
//! * [`MetricsRegistry`] — a deterministic (BTreeMap-backed) registry of
//!   named counters, gauges, [`OnlineStats`] summaries and
//!   [`BucketHistogram`]s, populated *pull-style* after a run from the
//!   statistics every layer already keeps. Names follow the
//!   `<crate>.<object>.<metric>` convention, e.g.
//!   `disk.n0.d3.spin_ups` or `runtime.buffer.hits`.
//!
//! Export paths: [`TraceEvent::to_json_line`] emits one JSON object per
//! event (JSONL), [`chrome_trace`] converts an event stream into the
//! Chrome `trace_event` format consumable by `chrome://tracing` (or
//! <https://ui.perfetto.dev>), and [`MetricsRegistry::to_json`] dumps the
//! registry as a single JSON document. All emitters are hand-rolled
//! string builders — the workspace has no serialization dependency — and
//! their output is deterministic for a deterministic event stream.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::stats::{BucketHistogram, OnlineStats};
use crate::time::SimTime;

/// One structured, sim-timestamped observability event.
///
/// Variants cover the full taxonomy of the simulator: the disk state
/// machine, the power-management policies, the per-request lifecycle,
/// the node storage cache, and the client-side prefetch buffer. All
/// payload fields are plain integers or `&'static str` labels so that
/// recording an event never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A disk moved from one state to another.
    DiskState {
        /// Simulated time of the transition.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// Disk index within the node.
        disk: u32,
        /// Label of the state being left (see `DiskState::label`).
        from: &'static str,
        /// Label of the state being entered.
        to: &'static str,
        /// Rotational speed of the new state in RPM, or 0 while in a
        /// transition state with no stable speed.
        rpm: u32,
    },
    /// A power policy acted on a disk (spin-up, spin-down or speed
    /// change), attributed to the hook that triggered it together with
    /// the learner-state snapshot that produced the decision.
    PolicyDecision {
        /// Simulated time of the decision.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// Disk index within the node.
        disk: u32,
        /// Policy name (`"simple"`, `"history-based"`, ...).
        policy: &'static str,
        /// Driver hook that invoked the policy: `"idle-start"`,
        /// `"timer"`, `"arrival"` or `"after-submit"`.
        trigger: &'static str,
        /// What the policy did: `"spin-down"`, `"spin-up"` or
        /// `"speed-change"`.
        action: &'static str,
        /// The policy's learned idle-gap estimate at decision time
        /// (microseconds), when it keeps one.
        predicted_idle_us: Option<u64>,
        /// The compile-time (or long-horizon) forecast consulted for the
        /// decision (microseconds), when the policy carries one.
        forecast_us: Option<u64>,
        /// Which internal regime made the decision (e.g. `"bootstrap"`,
        /// `"learned"`, `"online"`), when the policy distinguishes any.
        mode: Option<&'static str>,
    },
    /// A disk request completed; the span carries the full lifecycle
    /// (arrival, service start, completion) so queue wait and service
    /// latency can be derived, plus the exact energy the disk metered
    /// during the service window.
    Request {
        /// I/O node index.
        node: u32,
        /// Disk index within the node.
        disk: u32,
        /// Request id (unique per disk).
        id: u64,
        /// When the request entered the disk queue.
        arrival: SimTime,
        /// When the disk started serving it.
        start: SimTime,
        /// When it completed.
        end: SimTime,
        /// Whole-disk energy metered over `[start, end]`, in integer
        /// nanojoules (exactly one request is in service at a time, so
        /// this is the request's own service energy).
        energy_nj: u64,
    },
    /// A client access entered the engine: the root of its causal span
    /// tree, anchored at issue time.
    AccessStart {
        /// Simulated submission time.
        at: SimTime,
        /// Engine-wide access id (parent link for member requests).
        access: u64,
    },
    /// A client access completed and its waiters were released.
    AccessEnd {
        /// Simulated completion time.
        at: SimTime,
        /// Engine-wide access id.
        access: u64,
    },
    /// The storage layer issued (or re-issued) a member-disk request.
    /// Anchored at issue time — unlike [`TraceEvent::Request`], which is
    /// ordered by its completion — so the merged stream's sort order
    /// matches causal order.
    RequestIssued {
        /// Simulated issue time.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// Disk index within the node.
        disk: u32,
        /// Request id (unique per node).
        id: u64,
        /// Owning access id (parent span), or `None` for cache-initiated
        /// prefetch reads.
        access: Option<u64>,
        /// Retry attempt (0 = first issue).
        attempt: u32,
        /// True for recovery traffic (retries after remap, reconstruction
        /// reads).
        recovery: bool,
    },
    /// A node-level idle window closed (a request arrived), recording
    /// its exact length and the power action the policy spent it on —
    /// the ground truth for regret accounting against an offline oracle.
    NodeIdle {
        /// Arrival time that terminated the window.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// Exact length of the completed idle window in microseconds.
        idle_us: u64,
        /// First power action taken inside the window: `"spin-down"`,
        /// `"speed-change"` or `"none"`.
        action: &'static str,
    },
    /// The node storage cache served (or missed) an access.
    CacheAccess {
        /// Simulated time of the access.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// File id of the accessed block.
        file: u32,
        /// Node-local block index.
        block: u64,
        /// Outcome: `"read-hit"`, `"read-hit-prefetched"`,
        /// `"read-miss"` or `"write"`.
        kind: &'static str,
    },
    /// The node cache issued a sequential read-ahead for a block.
    PrefetchIssue {
        /// Simulated time of the triggering miss.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// File id of the prefetched block.
        file: u32,
        /// Node-local block index.
        block: u64,
    },
    /// The node cache evicted a block to make room.
    CacheEvict {
        /// Simulated time of the eviction.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// File id of the evicted block.
        file: u32,
        /// Node-local block index.
        block: u64,
    },
    /// The scheme runtime issued an asynchronous prefetch into the
    /// global buffer.
    BufferPrefetch {
        /// Simulated time on the issuing scheduler thread.
        at: SimTime,
        /// Index of the process the prefetch serves.
        proc: u32,
        /// File id of the prefetched range.
        file: u32,
        /// Byte offset of the range.
        offset: u64,
        /// Length of the range in bytes.
        len: u64,
    },
    /// A process consulted the global prefetch buffer for a read.
    BufferRead {
        /// Simulated local time of the reading process.
        at: SimTime,
        /// Index of the reading process.
        proc: u32,
        /// File id of the range.
        file: u32,
        /// Byte offset of the range.
        offset: u64,
        /// Length of the range in bytes.
        len: u64,
        /// Outcome: `"hit"` (buffered), `"in-flight"` (prefetch issued
        /// but not yet landed; the reader blocks on it) or `"miss"`
        /// (synchronous storage read).
        outcome: &'static str,
    },
    /// A scheduled prefetch was invalidated before issue.
    PrefetchInvalidate {
        /// Simulated time on the scheduler thread.
        at: SimTime,
        /// Index of the process the prefetch would have served.
        proc: u32,
        /// File id of the range.
        file: u32,
        /// Byte offset of the range.
        offset: u64,
        /// Length of the range in bytes.
        len: u64,
        /// Why it was dropped: `"became-sync"` (its consumer already
        /// reached the access) or `"timeout"` (the waiting reader fell
        /// back to a synchronous storage read).
        reason: &'static str,
    },
    /// The fault model failed a completing disk read.
    FaultInjected {
        /// Simulated completion time of the failed read.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// Disk index within the node.
        disk: u32,
        /// Request id (unique per disk).
        id: u64,
        /// Fault class: `"transient"` (retryable) or `"bad-sector"`
        /// (permanent until remapped).
        kind: &'static str,
    },
    /// The storage layer re-submitted a failed request to the same disk
    /// after a backoff delay.
    FaultRetry {
        /// Simulated time the retry was scheduled for.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// Disk index within the node.
        disk: u32,
        /// Request id of the retried member read.
        id: u64,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// The storage layer recovered a failed or unreachable member read
    /// by reading the surviving RAID members.
    FaultReconstruct {
        /// Simulated time the reconstruction reads were issued.
        at: SimTime,
        /// I/O node index.
        node: u32,
        /// Index of the failed member disk.
        disk: u32,
        /// Node-local block index being reconstructed.
        block: u64,
        /// Number of surviving members read.
        members: u32,
        /// Why: `"bad-sector"` (media failure after retries) or
        /// `"crash"` (the member was inside a crash window).
        reason: &'static str,
    },
    /// The rebuild engine copied one rate-limited chunk of a lost
    /// replica from a surviving member onto the hot spare.
    RebuildChunk {
        /// Simulated time the chunk copy was issued.
        at: SimTime,
        /// Disk the surviving replica was read from.
        source: u32,
        /// Hot-spare disk the chunk was written to.
        spare: u32,
        /// Chunk length in bytes.
        bytes: u64,
    },
    /// The client-side replica router chose a member for a read.
    ReplicaRoute {
        /// Simulated arrival time of the routed read.
        at: SimTime,
        /// Object identity.
        object: u64,
        /// Disk chosen to serve the read.
        chosen: u32,
        /// Candidate replicas passed over (crashed, failed or scored
        /// worse than the chosen member).
        skipped: u32,
    },
}

impl TraceEvent {
    /// The simulated timestamp used for ordering the merged event
    /// stream (for [`TraceEvent::Request`] this is the completion time).
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::DiskState { at, .. }
            | TraceEvent::PolicyDecision { at, .. }
            | TraceEvent::CacheAccess { at, .. }
            | TraceEvent::PrefetchIssue { at, .. }
            | TraceEvent::CacheEvict { at, .. }
            | TraceEvent::BufferPrefetch { at, .. }
            | TraceEvent::BufferRead { at, .. }
            | TraceEvent::PrefetchInvalidate { at, .. }
            | TraceEvent::FaultInjected { at, .. }
            | TraceEvent::FaultRetry { at, .. }
            | TraceEvent::FaultReconstruct { at, .. }
            | TraceEvent::AccessStart { at, .. }
            | TraceEvent::AccessEnd { at, .. }
            | TraceEvent::RequestIssued { at, .. }
            | TraceEvent::NodeIdle { at, .. }
            | TraceEvent::RebuildChunk { at, .. }
            | TraceEvent::ReplicaRoute { at, .. } => at,
            TraceEvent::Request { end, .. } => end,
        }
    }

    /// A short machine-readable tag naming the variant, equal to the
    /// `"type"` field of the JSONL encoding.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            TraceEvent::DiskState { .. } => "disk-state",
            TraceEvent::PolicyDecision { .. } => "policy",
            TraceEvent::Request { .. } => "request",
            TraceEvent::CacheAccess { .. } => "cache",
            TraceEvent::PrefetchIssue { .. } => "prefetch-issue",
            TraceEvent::CacheEvict { .. } => "cache-evict",
            TraceEvent::BufferPrefetch { .. } => "buffer-prefetch",
            TraceEvent::BufferRead { .. } => "buffer-read",
            TraceEvent::PrefetchInvalidate { .. } => "prefetch-invalidate",
            TraceEvent::FaultInjected { .. } => "fault",
            TraceEvent::FaultRetry { .. } => "fault-retry",
            TraceEvent::FaultReconstruct { .. } => "fault-reconstruct",
            TraceEvent::AccessStart { .. } => "access-start",
            TraceEvent::AccessEnd { .. } => "access-end",
            TraceEvent::RequestIssued { .. } => "request-issued",
            TraceEvent::NodeIdle { .. } => "node-idle",
            TraceEvent::RebuildChunk { .. } => "rebuild-chunk",
            TraceEvent::ReplicaRoute { .. } => "replica-route",
        }
    }

    /// Serializes the event as one JSON object (without a trailing
    /// newline). Timestamps are integer microseconds (`*_us` fields),
    /// so the encoding is exact and bit-for-bit reproducible.
    pub fn to_json_line(&self) -> String {
        match *self {
            TraceEvent::DiskState {
                at,
                node,
                disk,
                from,
                to,
                rpm,
            } => format!(
                "{{\"type\":\"disk-state\",\"t_us\":{},\"node\":{node},\"disk\":{disk},\
                 \"from\":\"{from}\",\"to\":\"{to}\",\"rpm\":{rpm}}}",
                at.as_micros()
            ),
            TraceEvent::PolicyDecision {
                at,
                node,
                disk,
                policy,
                trigger,
                action,
                predicted_idle_us,
                forecast_us,
                mode,
            } => format!(
                "{{\"type\":\"policy\",\"t_us\":{},\"node\":{node},\"disk\":{disk},\
                 \"policy\":\"{policy}\",\"trigger\":\"{trigger}\",\"action\":\"{action}\",\
                 \"predicted_idle_us\":{},\"forecast_us\":{},\"mode\":{}}}",
                at.as_micros(),
                json_opt_u64(predicted_idle_us),
                json_opt_u64(forecast_us),
                json_opt_label(mode)
            ),
            TraceEvent::Request {
                node,
                disk,
                id,
                arrival,
                start,
                end,
                energy_nj,
            } => format!(
                "{{\"type\":\"request\",\"t_us\":{},\"node\":{node},\"disk\":{disk},\"id\":{id},\
                 \"arrival_us\":{},\"start_us\":{},\"end_us\":{},\
                 \"queue_wait_us\":{},\"service_us\":{},\"energy_nj\":{energy_nj}}}",
                end.as_micros(),
                arrival.as_micros(),
                start.as_micros(),
                end.as_micros(),
                start.saturating_since(arrival).as_micros(),
                end.saturating_since(start).as_micros()
            ),
            TraceEvent::AccessStart { at, access } => format!(
                "{{\"type\":\"access-start\",\"t_us\":{},\"access\":{access}}}",
                at.as_micros()
            ),
            TraceEvent::AccessEnd { at, access } => format!(
                "{{\"type\":\"access-end\",\"t_us\":{},\"access\":{access}}}",
                at.as_micros()
            ),
            TraceEvent::RequestIssued {
                at,
                node,
                disk,
                id,
                access,
                attempt,
                recovery,
            } => format!(
                "{{\"type\":\"request-issued\",\"t_us\":{},\"node\":{node},\"disk\":{disk},\
                 \"id\":{id},\"access\":{},\"attempt\":{attempt},\"recovery\":{recovery}}}",
                at.as_micros(),
                json_opt_u64(access)
            ),
            TraceEvent::NodeIdle {
                at,
                node,
                idle_us,
                action,
            } => format!(
                "{{\"type\":\"node-idle\",\"t_us\":{},\"node\":{node},\"idle_us\":{idle_us},\
                 \"action\":\"{action}\"}}",
                at.as_micros()
            ),
            TraceEvent::CacheAccess {
                at,
                node,
                file,
                block,
                kind,
            } => format!(
                "{{\"type\":\"cache\",\"t_us\":{},\"node\":{node},\"file\":{file},\
                 \"block\":{block},\"kind\":\"{kind}\"}}",
                at.as_micros()
            ),
            TraceEvent::PrefetchIssue {
                at,
                node,
                file,
                block,
            } => format!(
                "{{\"type\":\"prefetch-issue\",\"t_us\":{},\"node\":{node},\"file\":{file},\
                 \"block\":{block}}}",
                at.as_micros()
            ),
            TraceEvent::CacheEvict {
                at,
                node,
                file,
                block,
            } => format!(
                "{{\"type\":\"cache-evict\",\"t_us\":{},\"node\":{node},\"file\":{file},\
                 \"block\":{block}}}",
                at.as_micros()
            ),
            TraceEvent::BufferPrefetch {
                at,
                proc,
                file,
                offset,
                len,
            } => format!(
                "{{\"type\":\"buffer-prefetch\",\"t_us\":{},\"proc\":{proc},\"file\":{file},\
                 \"offset\":{offset},\"len\":{len}}}",
                at.as_micros()
            ),
            TraceEvent::BufferRead {
                at,
                proc,
                file,
                offset,
                len,
                outcome,
            } => format!(
                "{{\"type\":\"buffer-read\",\"t_us\":{},\"proc\":{proc},\"file\":{file},\
                 \"offset\":{offset},\"len\":{len},\"outcome\":\"{outcome}\"}}",
                at.as_micros()
            ),
            TraceEvent::PrefetchInvalidate {
                at,
                proc,
                file,
                offset,
                len,
                reason,
            } => format!(
                "{{\"type\":\"prefetch-invalidate\",\"t_us\":{},\"proc\":{proc},\"file\":{file},\
                 \"offset\":{offset},\"len\":{len},\"reason\":\"{reason}\"}}",
                at.as_micros()
            ),
            TraceEvent::FaultInjected {
                at,
                node,
                disk,
                id,
                kind,
            } => format!(
                "{{\"type\":\"fault\",\"t_us\":{},\"node\":{node},\"disk\":{disk},\"id\":{id},\
                 \"kind\":\"{kind}\"}}",
                at.as_micros()
            ),
            TraceEvent::FaultRetry {
                at,
                node,
                disk,
                id,
                attempt,
            } => format!(
                "{{\"type\":\"fault-retry\",\"t_us\":{},\"node\":{node},\"disk\":{disk},\
                 \"id\":{id},\"attempt\":{attempt}}}",
                at.as_micros()
            ),
            TraceEvent::FaultReconstruct {
                at,
                node,
                disk,
                block,
                members,
                reason,
            } => format!(
                "{{\"type\":\"fault-reconstruct\",\"t_us\":{},\"node\":{node},\"disk\":{disk},\
                 \"block\":{block},\"members\":{members},\"reason\":\"{reason}\"}}",
                at.as_micros()
            ),
            TraceEvent::RebuildChunk {
                at,
                source,
                spare,
                bytes,
            } => format!(
                "{{\"type\":\"rebuild-chunk\",\"t_us\":{},\"source\":{source},\
                 \"spare\":{spare},\"bytes\":{bytes}}}",
                at.as_micros()
            ),
            TraceEvent::ReplicaRoute {
                at,
                object,
                chosen,
                skipped,
            } => format!(
                "{{\"type\":\"replica-route\",\"t_us\":{},\"object\":{object},\
                 \"chosen\":{chosen},\"skipped\":{skipped}}}",
                at.as_micros()
            ),
        }
    }
}

/// An append-only buffer of [`TraceEvent`]s.
///
/// Producers hold an `Option<TraceSink>` — `None` while telemetry is
/// disabled — and the collector drains every sink with
/// [`TraceSink::take_events`] at the end of a run.
#[derive(Debug, Default, Clone)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Appends one event.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The buffered events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Removes and returns all buffered events.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Merges per-layer event buffers into one stream ordered by simulated
/// time.
///
/// The sort is stable, so events with equal timestamps keep their
/// buffer-submission order — together with the deterministic simulation
/// this makes the merged stream bit-for-bit reproducible.
pub fn merge_events(buffers: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = buffers.into_iter().flatten().collect();
    all.sort_by_key(|e| e.at());
    all
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number, mapping non-finite values to
/// `null` (JSON has no NaN/Infinity literals).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

fn json_opt_f64(x: Option<f64>) -> String {
    match x {
        Some(v) => json_f64(v),
        None => "null".to_owned(),
    }
}

/// Formats an optional integer as a JSON number or `null`.
fn json_opt_u64(x: Option<u64>) -> String {
    match x {
        Some(v) => v.to_string(),
        None => "null".to_owned(),
    }
}

/// Formats an optional static label as a JSON string or `null`.
fn json_opt_label(x: Option<&'static str>) -> String {
    match x {
        Some(v) => format!("\"{v}\""),
        None => "null".to_owned(),
    }
}

/// Converts an event stream into Chrome `trace_event` JSON.
///
/// Open the output in `chrome://tracing` (or <https://ui.perfetto.dev>).
/// The layout:
///
/// * each I/O node becomes a process (`pid = node + 1`); the client
///   engine is `pid 0` with one thread row per process,
/// * each disk is a thread row (`tid = disk`) carrying its state
///   residencies as complete (`"ph":"X"`) spans reconstructed from the
///   [`TraceEvent::DiskState`] transitions, with request service spans
///   interleaved on the same row,
/// * node cache and policy activity appear as instant events on
///   dedicated `cache` (tid 1000) and `policy` (tid 1001) rows.
///
/// `end` is the simulation end time used to close the last state span
/// of every disk.
pub fn chrome_trace(events: &[TraceEvent], end: SimTime) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    // Metadata rows: name processes and threads that appear in the
    // stream. BTreeSet keeps the emission order deterministic.
    let mut lanes: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let mut procs: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut has_access = false;
    for e in events {
        match *e {
            TraceEvent::DiskState { node, disk, .. }
            | TraceEvent::PolicyDecision { node, disk, .. }
            | TraceEvent::Request { node, disk, .. }
            | TraceEvent::RequestIssued { node, disk, .. }
            | TraceEvent::FaultInjected { node, disk, .. }
            | TraceEvent::FaultRetry { node, disk, .. }
            | TraceEvent::FaultReconstruct { node, disk, .. } => {
                lanes.insert((node + 1, disk));
            }
            TraceEvent::CacheAccess { node, .. }
            | TraceEvent::PrefetchIssue { node, .. }
            | TraceEvent::CacheEvict { node, .. } => {
                lanes.insert((node + 1, 1000));
            }
            TraceEvent::NodeIdle { node, .. } => {
                lanes.insert((node + 1, 1001));
            }
            TraceEvent::BufferPrefetch { proc, .. }
            | TraceEvent::BufferRead { proc, .. }
            | TraceEvent::PrefetchInvalidate { proc, .. } => {
                procs.insert(proc);
            }
            TraceEvent::AccessStart { .. } | TraceEvent::AccessEnd { .. } => {
                has_access = true;
            }
            // The rebuild scenario runs a flat disk pool: its events
            // render on node 0's lanes.
            TraceEvent::RebuildChunk { spare, .. } => {
                lanes.insert((1, spare));
            }
            TraceEvent::ReplicaRoute { chosen, .. } => {
                lanes.insert((1, chosen));
            }
        }
    }
    let mut named_pids: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for &(pid, tid) in &lanes {
        if named_pids.insert(pid) {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"io-node {}\"}}}}",
                    pid - 1
                ),
            );
        }
        let tname = match tid {
            1000 => "cache".to_owned(),
            1001 => "policy".to_owned(),
            d => format!("disk {d}"),
        };
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{tname}\"}}}}"
            ),
        );
    }
    if !procs.is_empty() || has_access {
        push(
            &mut out,
            &mut first,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"client engine\"}}"
                .to_owned(),
        );
        for &p in &procs {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\
                     \"args\":{{\"name\":\"proc {p}\"}}}}"
                ),
            );
        }
    }

    // Reconstruct state-residency spans from the transition stream.
    let mut open: BTreeMap<(u32, u32), (SimTime, &'static str)> = BTreeMap::new();
    for e in events {
        match *e {
            TraceEvent::DiskState {
                at,
                node,
                disk,
                from,
                to,
                rpm,
            } => {
                let lane = (node + 1, disk);
                let (since, label) = open.remove(&lane).unwrap_or((SimTime::ZERO, from));
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{label}\",\"cat\":\"disk-state\",\"ph\":\"X\",\
                         \"pid\":{},\"tid\":{disk},\"ts\":{},\"dur\":{},\
                         \"args\":{{\"rpm\":{rpm}}}}}",
                        node + 1,
                        since.as_micros(),
                        at.saturating_since(since).as_micros()
                    ),
                );
                open.insert(lane, (at, to));
            }
            TraceEvent::Request {
                node,
                disk,
                id,
                arrival,
                start,
                end: done,
                energy_nj,
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"X\",\
                         \"pid\":{},\"tid\":{disk},\"ts\":{},\"dur\":{},\
                         \"args\":{{\"id\":{id},\"queue_wait_us\":{},\"energy_nj\":{energy_nj}}}}}",
                        node + 1,
                        start.as_micros(),
                        done.saturating_since(start).as_micros(),
                        start.saturating_since(arrival).as_micros()
                    ),
                );
            }
            TraceEvent::PolicyDecision {
                at,
                node,
                disk,
                policy,
                trigger,
                action,
                predicted_idle_us,
                forecast_us,
                ..
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{action}\",\"cat\":\"policy\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":1001,\"ts\":{},\
                         \"args\":{{\"policy\":\"{policy}\",\"trigger\":\"{trigger}\",\
                         \"disk\":{disk},\"predicted_idle_us\":{},\"forecast_us\":{}}}}}",
                        node + 1,
                        at.as_micros(),
                        json_opt_u64(predicted_idle_us),
                        json_opt_u64(forecast_us)
                    ),
                );
            }
            TraceEvent::AccessStart { at, access } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"access\",\"cat\":\"access\",\"ph\":\"b\",\"id\":{access},\
                         \"pid\":0,\"tid\":0,\"ts\":{}}}",
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::AccessEnd { at, access } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"access\",\"cat\":\"access\",\"ph\":\"e\",\"id\":{access},\
                         \"pid\":0,\"tid\":0,\"ts\":{}}}",
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::RequestIssued {
                at,
                node,
                disk,
                id,
                access,
                attempt,
                recovery,
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"issue\",\"cat\":\"request\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":{disk},\"ts\":{},\
                         \"args\":{{\"id\":{id},\"access\":{},\"attempt\":{attempt},\
                         \"recovery\":{recovery}}}}}",
                        node + 1,
                        at.as_micros(),
                        json_opt_u64(access)
                    ),
                );
            }
            TraceEvent::NodeIdle {
                at,
                node,
                idle_us,
                action,
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"idle-window\",\"cat\":\"policy\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":1001,\"ts\":{},\
                         \"args\":{{\"idle_us\":{idle_us},\"action\":\"{action}\"}}}}",
                        node + 1,
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::CacheAccess { at, node, kind, .. } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{kind}\",\"cat\":\"cache\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":1000,\"ts\":{}}}",
                        node + 1,
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::PrefetchIssue { at, node, .. } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"prefetch-issue\",\"cat\":\"cache\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":1000,\"ts\":{}}}",
                        node + 1,
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::CacheEvict { at, node, .. } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"evict\",\"cat\":\"cache\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":1000,\"ts\":{}}}",
                        node + 1,
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::BufferPrefetch { at, proc, .. } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"buffer-prefetch\",\"cat\":\"buffer\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":0,\"tid\":{proc},\"ts\":{}}}",
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::BufferRead {
                at, proc, outcome, ..
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"read-{outcome}\",\"cat\":\"buffer\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":0,\"tid\":{proc},\"ts\":{}}}",
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::PrefetchInvalidate {
                at, proc, reason, ..
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{reason}\",\"cat\":\"buffer\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":0,\"tid\":{proc},\"ts\":{}}}",
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::FaultInjected {
                at,
                node,
                disk,
                id,
                kind,
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"fault-{kind}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":{disk},\"ts\":{},\"args\":{{\"id\":{id}}}}}",
                        node + 1,
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::FaultRetry {
                at,
                node,
                disk,
                id,
                attempt,
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"retry\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":{disk},\"ts\":{},\
                         \"args\":{{\"id\":{id},\"attempt\":{attempt}}}}}",
                        node + 1,
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::FaultReconstruct {
                at,
                node,
                disk,
                block,
                members,
                reason,
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"reconstruct-{reason}\",\"cat\":\"fault\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":{},\"tid\":{disk},\"ts\":{},\
                         \"args\":{{\"block\":{block},\"members\":{members}}}}}",
                        node + 1,
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::RebuildChunk {
                at,
                source,
                spare,
                bytes,
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"rebuild-chunk\",\"cat\":\"rebuild\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":1,\"tid\":{spare},\"ts\":{},\
                         \"args\":{{\"source\":{source},\"bytes\":{bytes}}}}}",
                        at.as_micros()
                    ),
                );
            }
            TraceEvent::ReplicaRoute {
                at,
                object,
                chosen,
                skipped,
            } => {
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"replica-route\",\"cat\":\"route\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":1,\"tid\":{chosen},\"ts\":{},\
                         \"args\":{{\"object\":{object},\"skipped\":{skipped}}}}}",
                        at.as_micros()
                    ),
                );
            }
        }
    }
    // Close the final state span of each disk at the simulation end.
    for ((pid, tid), (since, label)) in open {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"{label}\",\"cat\":\"disk-state\",\"ph\":\"X\",\
                 \"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{}}}",
                since.as_micros(),
                end.saturating_since(since).as_micros()
            ),
        );
    }
    out.push_str("\n]}\n");
    out
}

/// A deterministic registry of named metrics.
///
/// Keys follow `<crate>.<object>.<metric>` (for example
/// `disk.n0.d2.energy_joules.standby` or `storage.n1.cache.read_hits`)
/// and iterate in sorted order, so [`MetricsRegistry::to_json`] output
/// is reproducible. The registry is populated after a run from the
/// statistics the simulation already maintains; it performs no work on
/// the simulation hot path.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    summaries: BTreeMap<String, OnlineStats>,
    histograms: BTreeMap<String, BucketHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Merges `stats` into the summary `name`.
    pub fn summary(&mut self, name: &str, stats: &OnlineStats) {
        self.summaries
            .entry(name.to_owned())
            .or_default()
            .merge(stats);
    }

    /// Merges `histogram` into the histogram `name`. The first call
    /// fixes the bucket edges; later calls must use identical edges
    /// (the underlying [`BucketHistogram::merge`] contract).
    pub fn histogram(&mut self, name: &str, histogram: &BucketHistogram) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| BucketHistogram::new(histogram.edges().to_vec()))
            .merge(histogram);
    }

    /// Reads a counter back, if present.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads a gauge back, if present.
    pub fn get_gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Total number of registered metrics across all four kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.summaries.len() + self.histograms.len()
    }

    /// Returns `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the registry as one JSON document (schema
    /// `sdds-metrics-v1`). Summaries expose count/mean/std-dev/min/max;
    /// empty summaries encode `min`/`max` as `null` (see
    /// [`OnlineStats::min`]). Histograms expose bucket edges in
    /// microseconds alongside their counts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"sdds-metrics-v1\",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", json_escape(k), json_f64(*v));
        }
        out.push_str("\n  },\n  \"summaries\": {");
        for (i, (k, s)) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"mean\": {}, \"std_dev\": {}, \
                 \"min\": {}, \"max\": {}}}",
                json_escape(k),
                s.count(),
                json_f64(s.mean()),
                json_f64(s.std_dev()),
                json_opt_f64(s.min()),
                json_opt_f64(s.max())
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let edges: Vec<String> = h
                .edges()
                .iter()
                .map(|e| e.as_micros().to_string())
                .collect();
            let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
            let _ = write!(
                out,
                "\n    \"{}\": {{\"edges_us\": [{}], \"counts\": [{}], \"total\": {}}}",
                json_escape(k),
                edges.join(", "),
                counts.join(", "),
                h.total()
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    // Golden tests: the JSONL schema of every event variant is pinned.
    // Changing any of these strings is a breaking change for trace
    // consumers and must be deliberate.
    #[test]
    fn jsonl_schema_disk_state() {
        let e = TraceEvent::DiskState {
            at: t(1_500),
            node: 0,
            disk: 3,
            from: "idle",
            to: "seek",
            rpm: 12_000,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"type\":\"disk-state\",\"t_us\":1500,\"node\":0,\"disk\":3,\
             \"from\":\"idle\",\"to\":\"seek\",\"rpm\":12000}"
        );
    }

    #[test]
    fn jsonl_schema_policy() {
        let e = TraceEvent::PolicyDecision {
            at: t(42),
            node: 1,
            disk: 0,
            policy: "simple",
            trigger: "timer",
            action: "spin-down",
            predicted_idle_us: None,
            forecast_us: None,
            mode: None,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"type\":\"policy\",\"t_us\":42,\"node\":1,\"disk\":0,\
             \"policy\":\"simple\",\"trigger\":\"timer\",\"action\":\"spin-down\",\
             \"predicted_idle_us\":null,\"forecast_us\":null,\"mode\":null}"
        );
        let snap = TraceEvent::PolicyDecision {
            at: t(42),
            node: 1,
            disk: 0,
            policy: "online",
            trigger: "timer",
            action: "spin-down",
            predicted_idle_us: Some(2_500_000),
            forecast_us: Some(60_000_000),
            mode: Some("learned"),
        };
        assert_eq!(
            snap.to_json_line(),
            "{\"type\":\"policy\",\"t_us\":42,\"node\":1,\"disk\":0,\
             \"policy\":\"online\",\"trigger\":\"timer\",\"action\":\"spin-down\",\
             \"predicted_idle_us\":2500000,\"forecast_us\":60000000,\"mode\":\"learned\"}"
        );
    }

    #[test]
    fn jsonl_schema_request() {
        let e = TraceEvent::Request {
            node: 0,
            disk: 1,
            id: 7,
            arrival: t(100),
            start: t(150),
            end: t(400),
            energy_nj: 4_275,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"type\":\"request\",\"t_us\":400,\"node\":0,\"disk\":1,\"id\":7,\
             \"arrival_us\":100,\"start_us\":150,\"end_us\":400,\
             \"queue_wait_us\":50,\"service_us\":250,\"energy_nj\":4275}"
        );
        assert_eq!(e.at(), t(400));
    }

    #[test]
    fn jsonl_schema_span_events() {
        let s = TraceEvent::AccessStart {
            at: t(10),
            access: 5,
        };
        assert_eq!(
            s.to_json_line(),
            "{\"type\":\"access-start\",\"t_us\":10,\"access\":5}"
        );
        let e = TraceEvent::AccessEnd {
            at: t(90),
            access: 5,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"type\":\"access-end\",\"t_us\":90,\"access\":5}"
        );
        let i = TraceEvent::RequestIssued {
            at: t(12),
            node: 0,
            disk: 2,
            id: 9,
            access: Some(5),
            attempt: 0,
            recovery: false,
        };
        assert_eq!(
            i.to_json_line(),
            "{\"type\":\"request-issued\",\"t_us\":12,\"node\":0,\"disk\":2,\
             \"id\":9,\"access\":5,\"attempt\":0,\"recovery\":false}"
        );
        let p = TraceEvent::RequestIssued {
            at: t(12),
            node: 0,
            disk: 2,
            id: 10,
            access: None,
            attempt: 1,
            recovery: true,
        };
        assert_eq!(
            p.to_json_line(),
            "{\"type\":\"request-issued\",\"t_us\":12,\"node\":0,\"disk\":2,\
             \"id\":10,\"access\":null,\"attempt\":1,\"recovery\":true}"
        );
        let w = TraceEvent::NodeIdle {
            at: t(500),
            node: 3,
            idle_us: 444,
            action: "none",
        };
        assert_eq!(
            w.to_json_line(),
            "{\"type\":\"node-idle\",\"t_us\":500,\"node\":3,\"idle_us\":444,\
             \"action\":\"none\"}"
        );
        assert_eq!(s.kind_tag(), "access-start");
        assert_eq!(e.kind_tag(), "access-end");
        assert_eq!(i.kind_tag(), "request-issued");
        assert_eq!(w.kind_tag(), "node-idle");
    }

    #[test]
    fn issue_anchored_events_sort_causally_before_completion() {
        // A request issued at t=100 completing at t=400, and an unrelated
        // cache event at t=200 that causally follows the issue. The
        // completion-anchored Request span sorts after the cache event,
        // but the issue-anchored RequestIssued event restores causal
        // order in the merged stream.
        let request = TraceEvent::Request {
            node: 0,
            disk: 0,
            id: 1,
            arrival: t(100),
            start: t(120),
            end: t(400),
            energy_nj: 0,
        };
        let issued = TraceEvent::RequestIssued {
            at: t(100),
            node: 0,
            disk: 0,
            id: 1,
            access: Some(0),
            attempt: 0,
            recovery: false,
        };
        let mid = TraceEvent::CacheEvict {
            at: t(200),
            node: 0,
            file: 0,
            block: 0,
        };
        let merged = merge_events(vec![
            vec![request.clone()],
            vec![issued.clone(), mid.clone()],
        ]);
        let tags: Vec<&str> = merged.iter().map(|e| e.kind_tag()).collect();
        assert_eq!(tags, vec!["request-issued", "cache-evict", "request"]);
        assert_eq!(merged[0], issued);
        assert_eq!(merged[2], request);
    }

    #[test]
    fn jsonl_schema_cache_events() {
        let a = TraceEvent::CacheAccess {
            at: t(9),
            node: 2,
            file: 4,
            block: 17,
            kind: "read-miss",
        };
        assert_eq!(
            a.to_json_line(),
            "{\"type\":\"cache\",\"t_us\":9,\"node\":2,\"file\":4,\"block\":17,\
             \"kind\":\"read-miss\"}"
        );
        let p = TraceEvent::PrefetchIssue {
            at: t(9),
            node: 2,
            file: 4,
            block: 18,
        };
        assert_eq!(
            p.to_json_line(),
            "{\"type\":\"prefetch-issue\",\"t_us\":9,\"node\":2,\"file\":4,\"block\":18}"
        );
        let ev = TraceEvent::CacheEvict {
            at: t(11),
            node: 2,
            file: 1,
            block: 3,
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"type\":\"cache-evict\",\"t_us\":11,\"node\":2,\"file\":1,\"block\":3}"
        );
    }

    #[test]
    fn jsonl_schema_buffer_events() {
        let b = TraceEvent::BufferPrefetch {
            at: t(5),
            proc: 3,
            file: 0,
            offset: 65_536,
            len: 4_096,
        };
        assert_eq!(
            b.to_json_line(),
            "{\"type\":\"buffer-prefetch\",\"t_us\":5,\"proc\":3,\"file\":0,\
             \"offset\":65536,\"len\":4096}"
        );
        let r = TraceEvent::BufferRead {
            at: t(6),
            proc: 3,
            file: 0,
            offset: 65_536,
            len: 4_096,
            outcome: "hit",
        };
        assert_eq!(
            r.to_json_line(),
            "{\"type\":\"buffer-read\",\"t_us\":6,\"proc\":3,\"file\":0,\
             \"offset\":65536,\"len\":4096,\"outcome\":\"hit\"}"
        );
        let i = TraceEvent::PrefetchInvalidate {
            at: t(7),
            proc: 3,
            file: 0,
            offset: 65_536,
            len: 4_096,
            reason: "became-sync",
        };
        assert_eq!(
            i.to_json_line(),
            "{\"type\":\"prefetch-invalidate\",\"t_us\":7,\"proc\":3,\"file\":0,\
             \"offset\":65536,\"len\":4096,\"reason\":\"became-sync\"}"
        );
    }

    #[test]
    fn jsonl_schema_fault_events() {
        let f = TraceEvent::FaultInjected {
            at: t(12),
            node: 1,
            disk: 2,
            id: 33,
            kind: "transient",
        };
        assert_eq!(
            f.to_json_line(),
            "{\"type\":\"fault\",\"t_us\":12,\"node\":1,\"disk\":2,\"id\":33,\
             \"kind\":\"transient\"}"
        );
        let r = TraceEvent::FaultRetry {
            at: t(13),
            node: 1,
            disk: 2,
            id: 33,
            attempt: 1,
        };
        assert_eq!(
            r.to_json_line(),
            "{\"type\":\"fault-retry\",\"t_us\":13,\"node\":1,\"disk\":2,\
             \"id\":33,\"attempt\":1}"
        );
        let c = TraceEvent::FaultReconstruct {
            at: t(14),
            node: 1,
            disk: 2,
            block: 5,
            members: 3,
            reason: "bad-sector",
        };
        assert_eq!(
            c.to_json_line(),
            "{\"type\":\"fault-reconstruct\",\"t_us\":14,\"node\":1,\"disk\":2,\
             \"block\":5,\"members\":3,\"reason\":\"bad-sector\"}"
        );
        assert_eq!(f.kind_tag(), "fault");
        assert_eq!(r.kind_tag(), "fault-retry");
        assert_eq!(c.kind_tag(), "fault-reconstruct");
        assert_eq!(c.at(), t(14));
    }

    #[test]
    fn chrome_trace_places_fault_events_on_the_disk_lane() {
        let events = vec![TraceEvent::FaultInjected {
            at: t(100),
            node: 0,
            disk: 3,
            id: 7,
            kind: "bad-sector",
        }];
        let json = chrome_trace(&events, t(500));
        assert!(json.contains("\"name\":\"fault-bad-sector\""));
        assert!(json.contains("\"cat\":\"fault\""));
        assert!(json.contains("\"pid\":1,\"tid\":3"));
        // The disk lane got named even though only a fault event touched it.
        assert!(json.contains("\"name\":\"disk 3\""));
    }

    #[test]
    fn sink_records_and_drains() {
        let mut sink = TraceSink::new();
        assert!(sink.is_empty());
        sink.record(TraceEvent::CacheEvict {
            at: t(1),
            node: 0,
            file: 0,
            block: 0,
        });
        assert_eq!(sink.len(), 1);
        let events = sink.take_events();
        assert_eq!(events.len(), 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn merge_orders_by_time_stable() {
        let a = vec![
            TraceEvent::CacheEvict {
                at: t(10),
                node: 0,
                file: 0,
                block: 1,
            },
            TraceEvent::CacheEvict {
                at: t(20),
                node: 0,
                file: 0,
                block: 2,
            },
        ];
        let b = vec![TraceEvent::CacheEvict {
            at: t(10),
            node: 1,
            file: 0,
            block: 3,
        }];
        let merged = merge_events(vec![a, b]);
        let blocks: Vec<u64> = merged
            .iter()
            .map(|e| match e {
                TraceEvent::CacheEvict { block, .. } => *block,
                _ => unreachable!(),
            })
            .collect();
        // Stable: buffer a's t=10 event precedes buffer b's t=10 event.
        assert_eq!(blocks, vec![1, 3, 2]);
    }

    #[test]
    fn chrome_trace_reconstructs_state_spans() {
        let events = vec![
            TraceEvent::DiskState {
                at: t(100),
                node: 0,
                disk: 0,
                from: "idle",
                to: "seek",
                rpm: 0,
            },
            TraceEvent::DiskState {
                at: t(150),
                node: 0,
                disk: 0,
                from: "seek",
                to: "transfer",
                rpm: 0,
            },
        ];
        let json = chrome_trace(&events, t(500));
        // The initial idle span [0, 100), the seek span [100, 150) and
        // the trailing transfer span closed at the end time.
        assert!(json.contains("\"name\":\"idle\""));
        assert!(json.contains("\"ts\":0,\"dur\":100"));
        assert!(json.contains("\"name\":\"seek\""));
        assert!(json.contains("\"ts\":100,\"dur\":50"));
        assert!(json.contains("\"name\":\"transfer\""));
        assert!(json.contains("\"ts\":150,\"dur\":350"));
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn registry_counters_accumulate_and_dump_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.counter("b.second", 2);
        reg.counter("a.first", 1);
        reg.counter("a.first", 3);
        reg.gauge("g.ratio", 0.5);
        assert_eq!(reg.get_counter("a.first"), Some(4));
        assert_eq!(reg.get_gauge("g.ratio"), Some(0.5));
        let json = reg.to_json();
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "counters must serialize in sorted key order");
        assert!(json.contains("\"sdds-metrics-v1\""));
    }

    #[test]
    fn registry_empty_summary_encodes_null_min_max() {
        let mut reg = MetricsRegistry::new();
        reg.summary("s.empty", &OnlineStats::new());
        let json = reg.to_json();
        assert!(json.contains("\"min\": null, \"max\": null"));
    }

    #[test]
    fn registry_histogram_merges() {
        let mut h = BucketHistogram::paper_idle_buckets();
        h.record(SimDuration::from_millis(7));
        let mut reg = MetricsRegistry::new();
        reg.histogram("h.idle", &h);
        reg.histogram("h.idle", &h);
        let json = reg.to_json();
        assert!(json.contains("\"total\": 2"));
    }

    #[test]
    fn non_finite_gauges_encode_as_null() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("g.bad", f64::NAN);
        assert!(reg.to_json().contains("\"g.bad\": null"));
    }
}
