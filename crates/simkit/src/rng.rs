//! Deterministic random number generation.
//!
//! The generator is a self-contained xoshiro256** (Blackman & Vigna)
//! seeded through SplitMix64, so the crate has no external dependencies
//! and the byte streams are identical on every platform and toolchain —
//! a prerequisite for the bitwise-reproducible experiment runs the
//! [`pool`](crate::pool) executor guarantees.
//!
//! # Stream splitting
//!
//! Subsystems that draw randomness must never share a generator (or a raw
//! seed): if the fault model and the workload generator both did
//! `DetRng::new(seed)`, they would consume *the same stream*, and adding a
//! draw in one would silently reshuffle the other. The workspace therefore
//! splits one user-facing seed into disjoint top-level streams, one per
//! [`StreamId`] domain, via [`DetRng::for_stream`]:
//!
//! ```
//! use simkit::{DetRng, StreamId};
//!
//! let seed = 42;
//! let mut workload = DetRng::for_stream(seed, StreamId::Workload);
//! let mut faults = DetRng::for_stream(seed, StreamId::Fault);
//! // The two streams never collide, no matter how many draws either takes.
//! assert_ne!(workload.next_u64(), faults.next_u64());
//! ```
//!
//! Within a domain, derive per-component children with [`DetRng::fork`]
//! in a fixed order; a child's stream depends only on the parent state at
//! the fork, not on later parent draws.

/// A top-level randomness domain, used to split one user-facing seed into
/// mutually independent streams (see the [module docs](self)).
///
/// Each variant carries a distinct 64-bit domain-separation tag that is
/// mixed into the seed by [`DetRng::for_stream`], so two domains started
/// from the same seed produce unrelated streams. The enum is closed on
/// purpose: adding a stream means adding a variant here, which keeps every
/// consumer honest about which domain it draws from and makes collisions a
/// type-level impossibility rather than a convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// Workload generation (application access patterns, arrival jitter).
    Workload,
    /// Executor scheduling in [`pool`](crate::pool).
    Pool,
    /// Fault-plan generation and online fault draws in
    /// [`fault`](crate::fault).
    Fault,
    /// Compile-phase randomness (scheduler tie-breaks).
    Compile,
    /// Online energy-policy randomness (predictor jitter, tie-breaks).
    Policy,
}

impl StreamId {
    /// Every stream domain, in declaration order.
    pub const ALL: [StreamId; 5] = [
        StreamId::Workload,
        StreamId::Pool,
        StreamId::Fault,
        StreamId::Compile,
        StreamId::Policy,
    ];

    /// The domain-separation tag mixed into the user seed. Tags are
    /// arbitrary odd constants; what matters is that they are pairwise
    /// distinct (checked by a debug assertion in [`DetRng::for_stream`]).
    fn tag(self) -> u64 {
        match self {
            StreamId::Workload => 0x574f_524b_4c4f_4144, // "WORKLOAD"
            StreamId::Pool => 0x504f_4f4c_5f45_5845,     // "POOL_EXE"
            StreamId::Fault => 0x4641_554c_545f_494e,    // "FAULT_IN"
            StreamId::Compile => 0x434f_4d50_494c_4552,  // "COMPILER"
            StreamId::Policy => 0x504f_4c49_4359_5f45,   // "POLICY_E"
        }
    }
}

/// Hashes a textual label into a 64-bit domain-separation tag (FNV-1a,
/// forced odd so it composes with the [`StreamId`] tag convention).
fn label_tag(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h | 1
}

/// Derives the sub-seed for `tag` from the user-facing `seed` by running
/// SplitMix64 over their combination. SplitMix64 is a bijection of the
/// 64-bit state for a fixed increment, so distinct tags map a given seed
/// to distinct sub-seeds.
fn derive_stream_seed(seed: u64, tag: u64) -> u64 {
    let mut s = seed ^ tag.rotate_left(17);
    let first = splitmix64(&mut s);
    // A second round decorrelates seeds that differ only in low bits.
    let mut s2 = first ^ tag;
    splitmix64(&mut s2)
}

/// A seeded random number generator with a small convenience API.
///
/// Every stochastic choice in the simulator draws from a `DetRng` created
/// from an explicit seed, so a given configuration always reproduces exactly
/// the same run. Components that need independent streams should derive
/// child generators with [`DetRng::fork`] rather than sharing one generator,
/// so that adding draws in one component does not perturb another.
///
/// # Example
///
/// ```
/// use simkit::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.index(10), b.index(10));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// SplitMix64 step, used only to expand the 64-bit seed into the
/// 256-bit xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
        // produce it from any seed, but guard anyway.
        if state == [0; 4] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { state }
    }

    /// Creates the generator for one top-level randomness domain.
    ///
    /// All subsystem streams for a run must be derived from the same
    /// user-facing `seed` through this constructor (never by calling
    /// [`DetRng::new`] on the raw seed from two places), so that the
    /// domains listed in [`StreamId`] are mutually independent: drawing
    /// more or fewer values in one domain cannot perturb another.
    pub fn for_stream(seed: u64, stream: StreamId) -> DetRng {
        #[cfg(debug_assertions)]
        {
            // Every domain must derive a distinct sub-seed from this seed;
            // a collision would silently alias two streams.
            let derived: [u64; StreamId::ALL.len()] =
                StreamId::ALL.map(|s| derive_stream_seed(seed, s.tag()));
            for i in 0..derived.len() {
                for j in (i + 1)..derived.len() {
                    debug_assert_ne!(
                        derived[i], derived[j],
                        "RNG stream collision: {:?} and {:?} derive the same sub-seed from seed {seed}",
                        StreamId::ALL[i], StreamId::ALL[j],
                    );
                }
            }
        }
        DetRng::new(derive_stream_seed(seed, stream.tag()))
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is a pure function of the parent's state at the
    /// time of the fork, so sibling forks taken in a fixed order are
    /// mutually independent and reproducible.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// Derives an independent child generator named by `label`, without
    /// advancing the parent.
    ///
    /// Unlike [`DetRng::fork`], which consumes a draw from the parent (so
    /// sibling forks must be taken in a fixed order), `substream` is a pure
    /// function of the parent's *current state* and the label: any set of
    /// distinctly-labelled substreams taken from the same parent state is
    /// mutually independent regardless of the order they are created in,
    /// and re-deriving the same label yields the same stream. This is the
    /// workspace-standard way to hand one seeded domain out to many named
    /// components (per-disk fault profiles, per-node online policies).
    pub fn substream(&self, label: &str) -> DetRng {
        let tag = label_tag(label);
        // Mix the four state words with the label tag through SplitMix64
        // so substreams inherit the full 256-bit parent state, not just
        // one word of it.
        let mut acc = tag;
        for (i, word) in self.state.iter().enumerate() {
            let mut s = word ^ acc.rotate_left(11 + i as u32);
            acc = splitmix64(&mut s) ^ acc.rotate_left(29);
        }
        DetRng::new(derive_stream_seed(acc, tag))
    }

    /// Returns the next 64 random bits (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits (the high half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Returns a uniformly random value in `0..bound` via Lemire's
    /// widening-multiply reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty bound");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Returns a uniformly random index in `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick an index from an empty range");
        self.bounded(len as u64) as usize
    }

    /// Returns a uniformly random integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range {lo}..={hi}");
        match hi.checked_sub(lo).and_then(|span| span.checked_add(1)) {
            Some(span) => lo + self.bounded(span),
            // lo..=hi covers the whole u64 domain.
            None => self.next_u64(),
        }
    }

    /// Returns a uniform float in `[0, 1)` (53 random mantissa bits).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Chooses a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.index(items.len());
            Some(&items[i])
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn forks_are_independent_of_parent_usage_order() {
        let mut parent1 = DetRng::new(1);
        let mut parent2 = DetRng::new(1);
        let mut child1 = parent1.fork();
        let mut child2 = parent2.fork();
        // Draw from parent1 between child creations; the children still agree.
        let _ = parent1.next_u64();
        assert_eq!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn index_within_bounds() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            assert!(rng.index(5) < 5);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = DetRng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = rng.range_u64(2, 4);
            assert!((2..=4).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 4;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn range_covers_full_domain() {
        let mut rng = DetRng::new(17);
        for _ in 0..16 {
            // Must not overflow or panic.
            let _ = rng.range_u64(0, u64::MAX);
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = DetRng::new(23);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = DetRng::new(5);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::new(29);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Deterministic: a second generator with the same seed agrees.
        let mut buf2 = [0u8; 13];
        DetRng::new(29).fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_zero_panics() {
        DetRng::new(1).index(0);
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = DetRng::for_stream(99, StreamId::Fault);
        let mut b = DetRng::for_stream(99, StreamId::Fault);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn streams_do_not_collide_for_any_domain_pair() {
        // For a spread of seeds, every pair of domains must yield streams
        // that differ — both in their derived sub-seed and in their first
        // few output words (a collision would alias e.g. fault draws with
        // workload draws and break cross-domain independence).
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let prefixes: Vec<Vec<u64>> = StreamId::ALL
                .iter()
                .map(|&s| {
                    let mut rng = DetRng::for_stream(seed, s);
                    (0..8).map(|_| rng.next_u64()).collect()
                })
                .collect();
            for i in 0..prefixes.len() {
                for j in (i + 1)..prefixes.len() {
                    assert_ne!(
                        prefixes[i],
                        prefixes[j],
                        "streams {:?} and {:?} collide for seed {seed}",
                        StreamId::ALL[i],
                        StreamId::ALL[j]
                    );
                }
            }
        }
    }

    #[test]
    fn stream_draws_do_not_perturb_sibling_streams() {
        // Exhausting one domain's generator leaves a sibling domain's
        // stream bit-for-bit unchanged (they are separate generators
        // derived from disjoint sub-seeds, not offsets into one stream).
        let mut fault1 = DetRng::for_stream(7, StreamId::Fault);
        let expected: Vec<u64> = (0..8).map(|_| fault1.next_u64()).collect();

        let mut workload = DetRng::for_stream(7, StreamId::Workload);
        for _ in 0..10_000 {
            let _ = workload.next_u64();
        }
        let mut fault2 = DetRng::for_stream(7, StreamId::Fault);
        let got: Vec<u64> = (0..8).map(|_| fault2.next_u64()).collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn substreams_do_not_advance_parent() {
        let mut parent = DetRng::new(4);
        let mut untouched = DetRng::new(4);
        let _ = parent.substream("a");
        let _ = parent.substream("b");
        assert_eq!(parent.next_u64(), untouched.next_u64());
    }

    #[test]
    fn substreams_are_order_independent_and_reproducible() {
        let parent = DetRng::new(21);
        let mut a1 = parent.substream("alpha");
        let _ = parent.substream("beta");
        let mut a2 = parent.substream("alpha");
        let xs: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn substream_labels_separate_streams() {
        let parent = DetRng::new(33);
        let labels = ["disk-0-0", "disk-0-1", "disk-1-0", "node-0", "node-1"];
        let prefixes: Vec<Vec<u64>> = labels
            .iter()
            .map(|l| {
                let mut rng = parent.substream(l);
                (0..8).map(|_| rng.next_u64()).collect()
            })
            .collect();
        for i in 0..prefixes.len() {
            for j in (i + 1)..prefixes.len() {
                assert_ne!(
                    prefixes[i], prefixes[j],
                    "substreams {:?} and {:?} collide",
                    labels[i], labels[j]
                );
            }
        }
    }

    #[test]
    fn substream_depends_on_parent_state() {
        let mut p1 = DetRng::new(8);
        let p2 = DetRng::new(8);
        let _ = p1.next_u64();
        let mut from_advanced = p1.substream("x");
        let mut from_fresh = p2.substream("x");
        assert_ne!(from_advanced.next_u64(), from_fresh.next_u64());
    }

    #[test]
    fn stream_differs_from_raw_seed_stream() {
        // `for_stream` must not degenerate to `new(seed)` for any domain;
        // otherwise that domain would collide with legacy raw-seed users.
        for &s in &StreamId::ALL {
            let mut stream = DetRng::for_stream(5, s);
            let mut raw = DetRng::new(5);
            let a: Vec<u64> = (0..4).map(|_| stream.next_u64()).collect();
            let b: Vec<u64> = (0..4).map(|_| raw.next_u64()).collect();
            assert_ne!(a, b, "{s:?} stream aliases the raw seed stream");
        }
    }
}
