//! Deterministic random number generation.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random number generator with a small convenience API.
///
/// Every stochastic choice in the simulator draws from a `DetRng` created
/// from an explicit seed, so a given configuration always reproduces exactly
/// the same run. Components that need independent streams should derive
/// child generators with [`DetRng::fork`] rather than sharing one generator,
/// so that adding draws in one component does not perturb another.
///
/// # Example
///
/// ```
/// use simkit::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.index(10), b.index(10));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is a pure function of the parent's state at the
    /// time of the fork, so sibling forks taken in a fixed order are
    /// mutually independent and reproducible.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.inner.next_u64())
    }

    /// Returns a uniformly random index in `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick an index from an empty range");
        self.inner.gen_range(0..len)
    }

    /// Returns a uniformly random integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range {lo}..={hi}");
        self.inner.gen_range(lo..=hi)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Chooses a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.index(items.len());
            Some(&items[i])
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn forks_are_independent_of_parent_usage_order() {
        let mut parent1 = DetRng::new(1);
        let mut parent2 = DetRng::new(1);
        let mut child1 = parent1.fork();
        let mut child2 = parent2.fork();
        // Draw from parent1 between child creations; the children still agree.
        let _ = parent1.next_u64();
        assert_eq!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn index_within_bounds() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            assert!(rng.index(5) < 5);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = DetRng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = rng.range_u64(2, 4);
            assert!((2..=4).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 4;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = DetRng::new(5);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_zero_panics() {
        DetRng::new(1).index(0);
    }
}
