//! A fast, deterministic hasher for hot-path maps.
//!
//! The standard library's default hasher (SipHash-1-3) is seeded per
//! `HashMap` from process randomness and pays a per-key setup cost that
//! dominates small keys. Simulation hot paths key maps by small integers
//! and tuples, look them up millions of times per run, and must stay
//! deterministic — so this module provides a self-contained FxHash-style
//! multiply-rotate hasher (the polynomial used by the Firefox and rustc
//! interners) with a **fixed** seed:
//!
//! * identical input → identical hash, on every platform and in every
//!   process (the determinism tests below pin exact output values);
//! * no per-map or per-process seeding;
//! * a handful of arithmetic instructions per word of key.
//!
//! Iteration order of an [`FxHashMap`] is still arbitrary; callers must
//! never let results depend on it (the same rule as for the std hasher).
//!
//! # Example
//!
//! ```
//! use simkit::hash::FxHashMap;
//!
//! let mut m: FxHashMap<(usize, u64), &str> = FxHashMap::default();
//! m.insert((3, 17), "op");
//! assert_eq!(m.get(&(3, 17)), Some(&"op"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Builds [`FxHasher`]s; zero-sized and stateless.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic [`FxHasher`].
///
/// Construct with `FxHashMap::default()` (`new()` is only available for
/// the std hasher).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// The multiplier: 2^64 / φ rounded to odd, the classic Fibonacci-hashing
/// constant used by FxHash.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Rotation applied before each mix so earlier words keep influencing
/// high bits after later multiplications.
const ROTATE: u32 = 5;

/// The word-at-a-time multiply-rotate hasher.
///
/// All writes fold into a single `u64` via
/// `hash = (hash.rotl(5) ^ word) * K`, always in 64-bit arithmetic so the
/// result does not depend on the platform's pointer width.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        // Widen to 64 bits so 32-bit targets hash identically.
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    /// Every `Hash` input must map to one fixed output, independent of the
    /// process, the map instance, and the platform — these constants were
    /// produced once by this implementation and must never change.
    #[test]
    fn fixed_inputs_have_pinned_hashes() {
        assert_eq!(hash_of(&0u64), 0);
        assert_eq!(hash_of(&1u64), 0x517c_c1b7_2722_0a95);
        assert_eq!(hash_of(&0xdead_beefu64), 0x67f3_c037_2953_771b);
        assert_eq!(hash_of(&(3usize, 17u64)), 0x6180_e40f_8c7c_a41b);
        assert_eq!(hash_of(&"hello"), 0x9a0e_560a_4d51_302e);
    }

    #[test]
    fn same_input_same_hash_across_builders() {
        let a = FxBuildHasher::default().hash_one((7u32, 9u64, 11usize));
        let b = FxBuildHasher::default().hash_one((7u32, 9u64, 11usize));
        assert_eq!(a, b);
    }

    #[test]
    fn usize_and_u64_hash_identically() {
        // The widening rule that makes 32- and 64-bit targets agree.
        let mut h1 = FxHasher::default();
        h1.write_usize(0x0123_4567);
        let mut h2 = FxHasher::default();
        h2.write_u64(0x0123_4567);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn byte_stream_tail_is_padded_not_dropped() {
        let mut full = FxHasher::default();
        full.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut split = FxHasher::default();
        split.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        split.write_u64(9);
        assert_eq!(full.finish(), split.finish());
        // A trailing byte must still change the hash.
        let mut short = FxHasher::default();
        short.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(full.finish(), short.finish());
    }

    #[test]
    fn distributes_small_keys() {
        // Sanity: sequential small keys should not collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash_of(&i)), "collision at {i}");
        }
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(usize, u64), u32> = FxHashMap::default();
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            m.insert((i as usize, i * 3), i as u32);
            s.insert(i * 7);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&(i as usize, i * 3)), Some(&(i as u32)));
            assert!(s.contains(&(i * 7)));
        }
    }
}
