//! Simulated time: instants and durations at microsecond resolution.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in microseconds since the start of
/// the simulation.
///
/// `SimTime` is a monotone clock value: it can be compared, advanced by a
/// [`SimDuration`], and differenced into a [`SimDuration`], but two instants
/// cannot be added together.
///
/// # Example
///
/// ```
/// use simkit::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(50);
/// assert_eq!(t1 - t0, SimDuration::from_millis(50));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Example
///
/// ```
/// use simkit::SimDuration;
///
/// let d = SimDuration::from_millis(16_000);
/// assert_eq!(d.as_secs_f64(), 16.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any reachable simulation instant; useful as an
    /// "infinity" sentinel for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the simulation start.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Returns the number of whole microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time since simulation start as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`, or [`SimDuration::ZERO`]
    /// if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of `self` and `other`.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of `self` and `other`.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the number of whole microseconds in this duration.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the number of whole milliseconds in this duration.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns this duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns this duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns `true` if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the difference `self - other`, or zero when `other > self`.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// Advances the instant by a duration.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the sum overflows `u64` microseconds;
    /// release builds saturate to [`SimTime::MAX`] (the "infinity"
    /// sentinel), which orders after every reachable instant.
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "simulated time overflowed u64 microseconds"
        );
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Returns the duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= rhs.0,
            "attempted to subtract a later SimTime ({rhs:?}) from an earlier one ({self:?})"
        );
        SimDuration(self.0.wrapping_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    /// Rewinds the instant by a duration.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the result would precede the simulation
    /// start; release builds saturate to [`SimTime::ZERO`].
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        debug_assert!(
            self.0.checked_sub(rhs.0).is_some(),
            "simulated time went negative"
        );
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    /// Adds two durations.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the sum overflows `u64` microseconds;
    /// release builds saturate to [`SimDuration::MAX`].
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "simulated duration overflowed u64 microseconds"
        );
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Subtracts two durations.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative; release
    /// builds saturate to [`SimDuration::ZERO`]. Use
    /// [`SimDuration::saturating_sub`] when clamping is the intent.
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(
            self.0.checked_sub(rhs.0).is_some(),
            "simulated duration went negative"
        );
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    /// Scales the duration by an integer factor.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the product overflows `u64` microseconds;
    /// release builds saturate to [`SimDuration::MAX`].
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        debug_assert!(
            self.0.checked_mul(rhs).is_some(),
            "simulated duration overflowed u64 microseconds"
        );
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", format_micros(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_micros(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", format_micros(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_micros(self.0))
    }
}

/// Formats a microsecond count using the most natural unit.
fn format_micros(micros: u64) -> String {
    if micros == u64::MAX {
        "inf".to_owned()
    } else if micros >= 1_000_000 {
        format!("{:.3}s", micros as f64 / 1e6)
    } else if micros >= 1_000 {
        format!("{:.3}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_micros(1_500);
        let d = SimDuration::from_millis(2);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimDuration::from_micros(1_234).as_millis(), 1);
        assert!((SimDuration::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(30);
        assert_eq!(late.saturating_since(early).as_micros(), 20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_micros(5).saturating_sub(SimDuration::from_micros(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(1.26).as_micros(), 13);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_factor_panics() {
        let _ = SimDuration::from_micros(1).mul_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "went negative")]
    fn underflow_panics() {
        let _ = SimTime::from_micros(1) - SimDuration::from_micros(2);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_micros(17).to_string(), "17us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(16).to_string(), "16.000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_micros(4);
        let b = SimTime::from_micros(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_micros(4);
        let db = SimDuration::from_micros(9);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }
}
