//! The unified event kernel: one calendar queue for every event source.
//!
//! Historically each layer of the simulator kept its own heap (the power
//! driver's lazy disk calendar, the engine's ready-heap, the storage
//! system's cached next-event scan). This module replaces all of them
//! with a single abstraction:
//!
//! * [`Calendar`] — a slot-based calendar queue. Every event source
//!   registers once and receives a [`SlotId`]; thereafter it only
//!   *retargets* its next due time. The calendar orders due slots by
//!   `(time, arbitration key)`: a retarget is an `O(1)` store and
//!   peek/pop scan the slot table. Slots are *components*, not events —
//!   a simulation has a handful of them (the payload queues behind each
//!   slot hold the many events) — so the branch-predictable scan over a
//!   contiguous array beats a binary heap with lazy deletion, which
//!   pays a push plus a deferred stale-pop for every retarget.
//! * [`ArbitrationPolicy`] — how slots due at the *same* instant are
//!   ordered: [`ArbitrationPolicy::Deterministic`] (registration order,
//!   the default and the basis of the bitwise-reproducibility contract),
//!   [`ArbitrationPolicy::SeededShuffle`] (a seeded hash permutes
//!   same-time slots — determinism fuzzing), and
//!   [`ArbitrationPolicy::Priority`] (explicit slot priorities, ties by
//!   registration order).
//! * [`Component`] / [`Emitter`] / [`Kernel`] — a trait-object driver for
//!   composing independent event sources without writing a hand-rolled
//!   loop. The hot simulation layers use [`Calendar`] directly (their
//!   components need mutable access to shared state), but tests,
//!   microbenchmarks and future sharded time domains compose through
//!   [`Kernel`].
//!
//! # Determinism contract
//!
//! Under [`ArbitrationPolicy::Deterministic`] a calendar pops due slots in
//! `(time, registration index)` order — a stable total order for any
//! multiset of due times, with no dependence on insertion history. Every
//! simulated metric produced by a `Deterministic` run is reproducible
//! bit-for-bit. Under [`ArbitrationPolicy::SeededShuffle`] same-time
//! ordering varies with the seed while *invariant* metrics (bytes moved,
//! request counts) must not — a divergence across seeds is an ordering
//! bug in the layer above, which is exactly what the arbitration-fuzz CI
//! job hunts for.
//!
//! # Example
//!
//! ```
//! use simkit::kernel::{ArbitrationPolicy, Calendar};
//! use simkit::SimTime;
//!
//! let mut cal = Calendar::new(ArbitrationPolicy::Deterministic);
//! let a = cal.register();
//! let b = cal.register();
//! cal.retarget(b, Some(SimTime::from_micros(5)));
//! cal.retarget(a, Some(SimTime::from_micros(5)));
//! // Same instant: registration order wins, regardless of insert order.
//! assert_eq!(cal.pop(), Some((SimTime::from_micros(5), a)));
//! assert_eq!(cal.pop(), Some((SimTime::from_micros(5), b)));
//! assert_eq!(cal.pop(), None);
//! ```

use crate::SimTime;

/// How slots due at the same instant are ordered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ArbitrationPolicy {
    /// Registration order (first registered fires first). The default;
    /// the bitwise determinism contract holds under this policy.
    #[default]
    Deterministic,
    /// Same-time order is a seed-keyed pseudo-random permutation of the
    /// due slots, stable for a given `(seed, time, slot)` triple. Used by
    /// determinism fuzzing: invariant metrics must not depend on the
    /// seed.
    SeededShuffle(u64),
    /// Slots fire in ascending priority value (0 first); ties within a
    /// priority fall back to registration order.
    Priority,
}

/// Handle to a registered event source within a [`Calendar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(u32);

impl SlotId {
    /// The slot's registration index (0 for the first registration).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// SplitMix64 finalizer: decorrelates `(seed, slot, time)` into a tie key.
fn shuffle_key(seed: u64, slot: u32, time: SimTime) -> u64 {
    let mut z = seed
        .wrapping_add(u64::from(slot).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(time.as_micros().wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    due: Option<SimTime>,
    priority: u32,
}

/// A slot-based calendar queue with pluggable same-time arbitration.
///
/// Each event source holds one slot whose due time it retargets as its
/// schedule changes; peek and pop scan the slot table for the minimum
/// `(time, arbitration key)`. Retargeting is a plain store, so sources
/// may refresh their due time every iteration for free.
#[derive(Debug, Default)]
pub struct Calendar {
    policy: ArbitrationPolicy,
    slots: Vec<Slot>,
}

impl Calendar {
    /// An empty calendar under the given arbitration policy.
    pub fn new(policy: ArbitrationPolicy) -> Self {
        Calendar {
            policy,
            slots: Vec::new(),
        }
    }

    /// The active arbitration policy.
    pub fn policy(&self) -> ArbitrationPolicy {
        self.policy
    }

    /// Replaces the arbitration policy. Switch only while no slot is due
    /// (typically right after construction), so one policy never orders
    /// events scheduled under another.
    pub fn set_policy(&mut self, policy: ArbitrationPolicy) {
        debug_assert!(
            self.slots.iter().all(|s| s.due.is_none()),
            "arbitration policy changed with pending entries"
        );
        self.policy = policy;
    }

    /// Registers a new event source (priority 0) and returns its slot.
    pub fn register(&mut self) -> SlotId {
        self.register_with_priority(0)
    }

    /// Registers a new event source with an explicit priority (only
    /// meaningful under [`ArbitrationPolicy::Priority`]; lower values
    /// fire first at equal times).
    pub fn register_with_priority(&mut self, priority: u32) -> SlotId {
        let id = SlotId(self.slots.len() as u32);
        self.slots.push(Slot {
            due: None,
            priority,
        });
        id
    }

    /// Number of registered slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The slot's current due time.
    pub fn due(&self, slot: SlotId) -> Option<SimTime> {
        self.slots.get(slot.index()).and_then(|s| s.due)
    }

    /// The arbitration tie key for `slot` firing at `time`.
    fn tie_key(&self, slot: u32, priority: u32, time: SimTime) -> u64 {
        match self.policy {
            ArbitrationPolicy::Deterministic => u64::from(slot),
            ArbitrationPolicy::SeededShuffle(seed) => shuffle_key(seed, slot, time),
            ArbitrationPolicy::Priority => (u64::from(priority) << 32) | u64::from(slot),
        }
    }

    /// Points `slot` at a new due time (or parks it with `None`). `O(1)`.
    pub fn retarget(&mut self, slot: SlotId, due: Option<SimTime>) {
        let i = slot.index();
        debug_assert!(i < self.slots.len(), "retarget of an unregistered slot");
        if let Some(s) = self.slots.get_mut(i) {
            s.due = due;
        }
    }

    /// The earliest due `(time, slot)` without popping it: the minimum
    /// `(time, arbitration key)` over the slot table. Tie keys are only
    /// computed for candidates that match the running minimum time, so
    /// the common distinct-time scan costs one comparison per slot.
    pub fn peek(&mut self) -> Option<(SimTime, SlotId)> {
        if matches!(self.policy, ArbitrationPolicy::Deterministic) {
            // Scanning in registration order with strict `<`, the first
            // slot at the minimum time wins — exactly the Deterministic
            // tie rule — for one comparison per slot.
            let mut best: Option<(SimTime, u32)> = None;
            for (i, s) in self.slots.iter().enumerate() {
                let Some(at) = s.due else { continue };
                if best.is_none_or(|(bt, _)| at < bt) {
                    best = Some((at, i as u32));
                }
            }
            return best.map(|(at, slot)| (at, SlotId(slot)));
        }
        let mut best: Option<(SimTime, u64, u32)> = None;
        for (i, s) in self.slots.iter().enumerate() {
            let Some(at) = s.due else { continue };
            if let Some((bt, bk, _)) = best {
                if at > bt {
                    continue;
                }
                let key = self.tie_key(i as u32, s.priority, at);
                if at < bt || key < bk {
                    best = Some((at, key, i as u32));
                }
            } else {
                best = Some((at, self.tie_key(i as u32, s.priority, at), i as u32));
            }
        }
        best.map(|(at, _, slot)| (at, SlotId(slot)))
    }

    /// The earliest due time across all slots.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek().map(|(at, _)| at)
    }

    /// Pops the earliest due slot, clearing its due time. The popped
    /// source is expected to handle the event and retarget itself.
    pub fn pop(&mut self) -> Option<(SimTime, SlotId)> {
        let (at, slot) = self.peek()?;
        self.slots[slot.index()].due = None;
        Some((at, slot))
    }

    /// Pops the earliest due slot only if it is due at or before `t`.
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, SlotId)> {
        let (at, slot) = self.peek()?;
        if at > t {
            return None;
        }
        self.slots[slot.index()].due = None;
        Some((at, slot))
    }

    /// True when no slot is due.
    pub fn is_empty(&mut self) -> bool {
        self.slots.iter().all(|s| s.due.is_none())
    }
}

/// Scheduling requests a [`Component`] makes while handling a tick.
///
/// A component's *own* next wake-up comes from [`Component::next_tick`],
/// re-queried after every tick; the emitter exists for cross-component
/// wake-ups (and for waking oneself earlier than `next_tick` reports).
#[derive(Debug, Default)]
pub struct Emitter {
    wakes: Vec<(SlotId, SimTime)>,
}

impl Emitter {
    /// Requests that `slot` be ticked no later than `at` (combined by
    /// minimum with the slot's own `next_tick`).
    pub fn wake(&mut self, slot: SlotId, at: SimTime) {
        self.wakes.push((slot, at));
    }
}

/// An event source drivable by a [`Kernel`].
pub trait Component {
    /// The next instant this component needs to run, if any.
    fn next_tick(&self) -> Option<SimTime>;
    /// Handles the tick at `now`; may request wake-ups through `emitter`.
    fn tick(&mut self, now: SimTime, emitter: &mut Emitter);
}

/// Drives a set of boxed [`Component`]s against one shared [`Calendar`].
///
/// # Example
///
/// ```
/// use simkit::kernel::{ArbitrationPolicy, Component, Emitter, Kernel};
/// use simkit::{SimDuration, SimTime};
///
/// struct Metronome {
///     next: Option<SimTime>,
///     period: SimDuration,
///     ticks: u64,
/// }
/// impl Component for Metronome {
///     fn next_tick(&self) -> Option<SimTime> {
///         self.next
///     }
///     fn tick(&mut self, now: SimTime, _emitter: &mut Emitter) {
///         self.ticks += 1;
///         self.next = (self.ticks < 3).then(|| now + self.period);
///     }
/// }
///
/// let mut kernel = Kernel::new(ArbitrationPolicy::Deterministic);
/// kernel.add(Box::new(Metronome {
///     next: Some(SimTime::ZERO),
///     period: SimDuration::from_micros(10),
///     ticks: 0,
/// }));
/// let processed = kernel.run_until(SimTime::from_micros(1_000));
/// assert_eq!(processed, 3);
/// ```
pub struct Kernel {
    components: Vec<Box<dyn Component>>,
    calendar: Calendar,
    now: SimTime,
    emitter: Emitter,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("components", &self.components.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Kernel {
    /// An empty kernel under the given arbitration policy.
    pub fn new(policy: ArbitrationPolicy) -> Self {
        Kernel {
            components: Vec::new(),
            calendar: Calendar::new(policy),
            now: SimTime::ZERO,
            emitter: Emitter::default(),
        }
    }

    /// Adds a component (priority 0) and schedules its first tick.
    pub fn add(&mut self, component: Box<dyn Component>) -> SlotId {
        self.add_with_priority(component, 0)
    }

    /// Adds a component with an explicit arbitration priority.
    pub fn add_with_priority(&mut self, component: Box<dyn Component>, priority: u32) -> SlotId {
        let slot = self.calendar.register_with_priority(priority);
        self.calendar.retarget(slot, component.next_tick());
        self.components.push(component);
        slot
    }

    /// The current simulated time (the last processed tick).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The next pending tick, if any.
    pub fn next_tick(&mut self) -> Option<SimTime> {
        self.calendar.peek_time()
    }

    /// Runs ticks in `(time, arbitration)` order until no component is
    /// due at or before `horizon`; returns the number of ticks processed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut processed = 0;
        while let Some((at, slot)) = self.calendar.pop_due(horizon) {
            debug_assert!(at >= self.now, "calendar time went backwards");
            self.now = self.now.max(at);
            let c = &mut self.components[slot.index()];
            c.tick(at, &mut self.emitter);
            self.calendar.retarget(slot, c.next_tick());
            for (target, wake_at) in self.emitter.wakes.drain(..) {
                let own = self.components[target.index()].next_tick();
                let due = match own {
                    Some(t) => Some(t.min(wake_at)),
                    None => Some(wake_at),
                };
                self.calendar.retarget(target, due);
            }
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn deterministic_orders_by_registration_at_ties() {
        let mut cal = Calendar::new(ArbitrationPolicy::Deterministic);
        let slots: Vec<SlotId> = (0..5).map(|_| cal.register()).collect();
        // Insert in reverse registration order at one instant.
        for s in slots.iter().rev() {
            cal.retarget(*s, Some(t(7)));
        }
        let popped: Vec<SlotId> = std::iter::from_fn(|| cal.pop().map(|(_, s)| s)).collect();
        assert_eq!(popped, slots);
    }

    #[test]
    fn retarget_supersedes_lazily() {
        let mut cal = Calendar::new(ArbitrationPolicy::Deterministic);
        let a = cal.register();
        cal.retarget(a, Some(t(10)));
        cal.retarget(a, Some(t(3)));
        assert_eq!(cal.pop(), Some((t(3), a)));
        // The stale t=10 entry is discarded, not replayed.
        assert_eq!(cal.pop(), None);
        // Parking clears the pending entry too.
        cal.retarget(a, Some(t(20)));
        cal.retarget(a, None);
        assert_eq!(cal.peek_time(), None);
    }

    #[test]
    fn pop_clears_due_and_pop_due_respects_bound() {
        let mut cal = Calendar::new(ArbitrationPolicy::Deterministic);
        let a = cal.register();
        cal.retarget(a, Some(t(5)));
        assert_eq!(cal.pop_due(t(4)), None);
        assert_eq!(cal.pop_due(t(5)), Some((t(5), a)));
        assert_eq!(cal.due(a), None);
    }

    #[test]
    fn priority_orders_before_registration() {
        let mut cal = Calendar::new(ArbitrationPolicy::Priority);
        let low = cal.register_with_priority(9);
        let high = cal.register_with_priority(1);
        cal.retarget(low, Some(t(2)));
        cal.retarget(high, Some(t(2)));
        assert_eq!(cal.pop(), Some((t(2), high)));
        assert_eq!(cal.pop(), Some((t(2), low)));
        // Time still dominates priority.
        cal.retarget(low, Some(t(1)));
        cal.retarget(high, Some(t(3)));
        assert_eq!(cal.pop(), Some((t(1), low)));
    }

    #[test]
    fn shuffle_is_seed_deterministic_and_varies() {
        let order = |seed: u64| {
            let mut cal = Calendar::new(ArbitrationPolicy::SeededShuffle(seed));
            let slots: Vec<SlotId> = (0..16).map(|_| cal.register()).collect();
            for s in &slots {
                cal.retarget(*s, Some(t(42)));
            }
            std::iter::from_fn(|| cal.pop().map(|(_, s)| s.index())).collect::<Vec<_>>()
        };
        assert_eq!(order(1), order(1));
        // 16 slots: two seeds agreeing on the full permutation is
        // astronomically unlikely with a working hash.
        assert_ne!(order(1), order(2));
        let mut sorted = order(3);
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn time_order_holds_under_every_policy() {
        for policy in [
            ArbitrationPolicy::Deterministic,
            ArbitrationPolicy::SeededShuffle(99),
            ArbitrationPolicy::Priority,
        ] {
            let mut cal = Calendar::new(policy);
            let slots: Vec<SlotId> = (0..8).map(|i| cal.register_with_priority(8 - i)).collect();
            for (i, s) in slots.iter().enumerate() {
                cal.retarget(*s, Some(t(((i as u64) * 13) % 5)));
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = cal.pop() {
                assert!(at >= last, "{policy:?} violated time order");
                last = at;
            }
        }
    }

    struct Pinger {
        peer: Option<SlotId>,
        next: Option<SimTime>,
        seen: u64,
    }

    impl Component for Pinger {
        fn next_tick(&self) -> Option<SimTime> {
            self.next
        }
        fn tick(&mut self, now: SimTime, emitter: &mut Emitter) {
            self.seen += 1;
            self.next = None;
            if let Some(peer) = self.peer {
                if self.seen < 3 {
                    emitter.wake(peer, now + SimDuration::from_micros(5));
                }
            }
        }
    }

    #[test]
    fn kernel_delivers_cross_component_wakes() {
        // a pings b, b pings a, until each has seen 3 ticks. Slots are
        // registered first so each pinger can name its peer.
        let mut kernel = Kernel::new(ArbitrationPolicy::Deterministic);
        let a = kernel.calendar.register();
        let b = kernel.calendar.register();
        kernel.components.push(Box::new(Pinger {
            peer: Some(b),
            next: Some(t(0)),
            seen: 0,
        }));
        kernel.components.push(Box::new(Pinger {
            peer: Some(a),
            next: None,
            seen: 0,
        }));
        kernel
            .calendar
            .retarget(a, kernel.components[0].next_tick());
        kernel
            .calendar
            .retarget(b, kernel.components[1].next_tick());
        let processed = kernel.run_until(t(1_000));
        assert_eq!(processed, 5, "ping-pong: a,b,a,b,a");
        assert_eq!(kernel.now(), t(20));
    }

    #[test]
    fn kernel_counts_and_stops_at_horizon() {
        struct Every10 {
            next: Option<SimTime>,
        }
        impl Component for Every10 {
            fn next_tick(&self) -> Option<SimTime> {
                self.next
            }
            fn tick(&mut self, now: SimTime, _e: &mut Emitter) {
                self.next = Some(now + SimDuration::from_micros(10));
            }
        }
        let mut kernel = Kernel::new(ArbitrationPolicy::Deterministic);
        kernel.add(Box::new(Every10 { next: Some(t(0)) }));
        assert_eq!(kernel.run_until(t(55)), 6); // 0,10,20,30,40,50
        assert_eq!(kernel.next_tick(), Some(t(60)));
    }
}
