//! A deterministic, timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of events ordered by simulated time.
///
/// Events scheduled for the same instant are returned in FIFO order of their
/// insertion, which keeps simulations fully deterministic regardless of how
/// the underlying heap rebalances.
///
/// # Example
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), 'b');
/// q.schedule(SimTime::from_micros(10), 'c');
/// q.schedule(SimTime::from_micros(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) surfaces first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "x");
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ties_survive_interleaved_pops_and_heap_rebalance() {
        // Schedule a batch of ties, pop a few (forcing sift-down
        // rebalances), schedule more ties at the same instant, and check
        // that the global FIFO order among equal timestamps is preserved.
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(50), i);
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some((t(50), i)));
        }
        for i in 10..20 {
            q.schedule(t(50), i);
        }
        // Earlier-scheduled survivors drain before the late arrivals.
        for i in 4..20 {
            assert_eq!(q.pop(), Some((t(50), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_survive_rebalance_with_earlier_and_later_events_mixed_in() {
        let mut q = EventQueue::new();
        // Interleave three timestamps so tied entries move around inside
        // the heap as earlier events are popped out from under them.
        for i in 0..5 {
            q.schedule(t(100), ('m', i));
            q.schedule(t(200), ('l', i));
            q.schedule(t(10), ('e', i));
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some((t(10), ('e', i))));
        }
        // More ties at t=100 scheduled *after* pops started.
        for i in 5..8 {
            q.schedule(t(100), ('m', i));
        }
        for i in 0..8 {
            assert_eq!(q.pop(), Some((t(100), ('m', i))));
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some((t(200), ('l', i))));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 'a');
        q.schedule(t(5), 'b');
        assert_eq!(q.pop(), Some((t(5), 'b')));
        q.schedule(t(1), 'c');
        q.schedule(t(10), 'd');
        assert_eq!(q.pop(), Some((t(1), 'c')));
        assert_eq!(q.pop(), Some((t(10), 'a')));
        assert_eq!(q.pop(), Some((t(10), 'd')));
    }
}
