//! The discrete-event execution engine.
//!
//! Drives the client processes (compute phases and original-point I/O)
//! and the per-client scheduler threads (table-driven prefetching) against
//! the storage array. All storage interactions flow through a pending-
//! submission event queue, so every disk sees its requests in global
//! timestamp order even though client local clocks drift apart.

use sdds_compiler::ir::IoDirection;
use sdds_compiler::{SchedulableAccess, ScheduleTable};
use sdds_storage::{AccessCompletion, AccessId, FileAccess, StorageConfig, StorageSystem};
use simkit::hash::FxHashMap;
use simkit::kernel::{ArbitrationPolicy, Calendar, SlotId};
use simkit::stats::BucketHistogram;
use simkit::telemetry::{merge_events, MetricsRegistry, TraceEvent, TraceSink};
use simkit::{EventQueue, SimDuration, SimTime};

use crate::buffer::{BufferStats, EntryState, GlobalBuffer, RangeKey};
use crate::error::EngineError;
use crate::telemetry::{request_latency_edges, DiskSummary, TelemetryReport};

/// Engine configuration (the client-side half of the simulated platform).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// One-way network latency between a client and the I/O nodes.
    pub network_latency: SimDuration,
    /// Capacity of the global prefetch buffer shared by the scheduler
    /// threads.
    pub buffer_capacity: u64,
    /// Client-side cost of consuming a buffered range (memory copy).
    pub buffer_hit_cost: SimDuration,
    /// Minimum advance (original slot − scheduled slot) for the scheduler
    /// thread to prefetch an access; smaller advances are performed
    /// synchronously by the application ("the scheduler only performs data
    /// accesses scheduled at much earlier iterations", §III).
    pub min_prefetch_advance: u32,
    /// If set, an application read that finds its prefetch still in
    /// flight after this much time (measured from the prefetch's issue)
    /// gives up waiting and performs a synchronous read instead. A
    /// storage-level fault (straggler disk, crash window) can stall a
    /// prefetch almost arbitrarily long; the timeout bounds the
    /// application-visible damage. `None` (the default) waits forever,
    /// which is deadlock-free because the storage layer always completes
    /// deferred work.
    pub prefetch_timeout: Option<SimDuration>,
    /// Same-time arbitration policy for the engine's unified event
    /// calendar (and, plumbed through the system configuration, the
    /// storage-side calendars). [`ArbitrationPolicy::Deterministic`] —
    /// the default — fires same-time events in registration order
    /// (submissions, storage, timeouts, then processes by index), which
    /// keeps every simulated metric bit-for-bit reproducible.
    pub arbitration: ArbitrationPolicy,
}

impl EngineConfig {
    /// Defaults consistent with the paper's platform: gigabit-class
    /// network latency, a 128 MB collective client buffer, and prefetching
    /// of any access moved at least one slot earlier.
    pub fn paper_defaults() -> Self {
        EngineConfig {
            network_latency: SimDuration::from_micros(100),
            buffer_capacity: 128 * 1024 * 1024,
            buffer_hit_cost: SimDuration::from_micros(20),
            min_prefetch_advance: 12,
            prefetch_timeout: None,
            arbitration: ArbitrationPolicy::Deterministic,
        }
    }
}

/// A compiled schedule paired with the access list it indexes — the
/// software-directed scheme's plan for one run.
///
/// Passing `Some(plan)` to [`Engine::run`] activates the per-client
/// scheduler threads (table-driven prefetching); `None` executes every
/// access at its original program point (the paper's configurations
/// *without* the software approach).
#[derive(Debug, Clone, Copy)]
pub struct CompiledPlan<'a> {
    /// Accesses in compiler order; each table entry's `access_index`
    /// points into this slice.
    pub accesses: &'a [SchedulableAccess],
    /// The slot-indexed schedule the scheduler threads replay.
    pub table: &'a ScheduleTable,
}

impl<'a> CompiledPlan<'a> {
    /// Pairs a schedule table with the access list it was built from.
    #[must_use]
    pub fn new(accesses: &'a [SchedulableAccess], table: &'a ScheduleTable) -> Self {
        CompiledPlan { accesses, table }
    }
}

/// Scheduler-thread counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetches issued to the storage system.
    pub issued: u64,
    /// Prefetch attempts deferred because the producer had not reached the
    /// producing write yet.
    pub deferred_producer: u64,
    /// Prefetch attempts deferred because the buffer was full.
    pub deferred_full: u64,
    /// Prefetches abandoned (their original point arrived first); the
    /// application performed them synchronously.
    pub became_sync: u64,
    /// In-flight prefetches the application stopped waiting for (the
    /// [`EngineConfig::prefetch_timeout`] elapsed) and replaced with a
    /// synchronous read. Always zero without a timeout configured.
    pub timed_out: u64,
}

/// The outcome of one end-to-end run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock execution time (the slowest process's finish).
    pub exec_time: SimDuration,
    /// Total disk energy in joules.
    pub energy_joules: f64,
    /// Per-state energy breakdown.
    pub energy: sdds_disk::EnergyAccount,
    /// Idle-period histogram over every disk (Fig. 12's population).
    pub idle_histogram: simkit::stats::BucketHistogram,
    /// Time-weighted idle histogram: where the idle time (the energy
    /// opportunity) lives.
    pub idle_time_histogram: simkit::stats::DurationHistogram,
    /// Global-buffer counters.
    pub buffer: BufferStats,
    /// Scheduler-thread counters.
    pub prefetch: PrefetchStats,
    /// Per-process finish times.
    pub per_proc_finish: Vec<SimDuration>,
    /// Bytes (read, written) handled by the storage system.
    pub bytes_moved: (u64, u64),
    /// Mean blocking-I/O stall time in seconds (application-visible).
    pub mean_read_response: f64,
    /// Engine events processed: process steps plus storage dispatches
    /// (submissions and phase boundaries). The throughput denominator for
    /// events-per-second reporting.
    pub events: u64,
    /// Telemetry report; `Some` only when [`Engine::enable_telemetry`]
    /// was called before the run.
    pub telemetry: Option<TelemetryReport>,
    /// Fault-injection and recovery counters from the storage layer.
    /// All-zero when the run had no fault plan.
    pub faults: simkit::fault::FaultCounters,
}

/// A queued (future) storage submission.
#[derive(Debug, Clone, Copy)]
struct Submission {
    ticket: u64,
    access: FileAccess,
}

/// What a ticket's completion should trigger.
#[derive(Debug, Clone, Default)]
struct TicketState {
    /// Buffer range to mark ready (scheduler-thread prefetch).
    fill: Option<RangeKey>,
    /// Processes to wake, each optionally consuming a buffer entry.
    waiters: Vec<(usize, Option<RangeKey>)>,
}

/// Per-process execution state.
#[derive(Debug)]
struct ProcExec {
    local_time: SimTime,
    slot: u32,
    slots: u32,
    /// Cursor into the process's original-order I/O list.
    io_cursor: usize,
    /// Cursor into the process's scheduling-table entries.
    table_cursor: usize,
    /// Prefetches awaiting producer progress or buffer space
    /// (access indices).
    deferred: Vec<usize>,
    phase: Phase,
    state: State,
    /// Last fully completed slot (for producer local-time checks).
    completed_slot: Option<u32>,
    finish: Option<SimTime>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Issue this slot's prefetches and perform its compute.
    SlotStart,
    /// Work through the slot's original-point I/O operations.
    SlotIo,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Ready,
    Blocked,
    Done,
}

/// The end-to-end simulator: storage array + client processes + scheduler
/// threads.
///
/// Create one engine per run; [`Engine::run`] consumes it.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    storage: StorageSystem,
    buffer: GlobalBuffer,
    submissions: EventQueue<Submission>,
    tickets: FxHashMap<u64, TicketState>,
    next_ticket: u64,
    access_to_ticket: FxHashMap<AccessId, u64>,
    /// In-flight prefetch per buffered range: `(ticket, issued_at)`.
    prefetch_tickets: FxHashMap<RangeKey, (u64, SimTime)>,
    prefetch_stats: PrefetchStats,
    read_response: simkit::stats::OnlineStats,
    /// The unified event calendar: one slot per event source (pending
    /// submissions, the storage array, prefetch timeouts, and one slot
    /// per client process). Same-time ordering follows the configured
    /// [`ArbitrationPolicy`].
    cal: Calendar,
    submission_slot: SlotId,
    storage_slot: SlotId,
    timeout_slot: SlotId,
    /// One slot per process, registered by [`Engine::run`]; due exactly
    /// at the process's local time while it is `Ready`.
    proc_slots: Vec<SlotId>,
    /// Scheduled prefetch deadlines as `(ticket, range)`; an entry whose
    /// ticket has already completed is stale and ignored when it fires.
    /// Always empty without [`EngineConfig::prefetch_timeout`].
    timeouts: EventQueue<(u64, RangeKey)>,
    /// Reused between completion deliveries so the steady state allocates
    /// nothing.
    completion_scratch: Vec<AccessCompletion>,
    /// Trace sink for scheduler-thread and buffer events. `None` (the
    /// default) keeps the hot path free of telemetry work.
    trace: Option<TraceSink>,
}

impl Engine {
    /// Builds an engine over a fresh storage array.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ZeroBuffer`] when the configured prefetch
    /// buffer has no capacity, and [`EngineError::Storage`] when the
    /// storage configuration is rejected.
    pub fn new(config: EngineConfig, storage: StorageConfig) -> Result<Self, EngineError> {
        if config.buffer_capacity == 0 {
            return Err(EngineError::ZeroBuffer);
        }
        let buffer = GlobalBuffer::new(config.buffer_capacity);
        // Registration order is the Deterministic tie order: a submission
        // dispatch beats a storage phase boundary beats a prefetch
        // timeout beats a process step at the same instant.
        let mut cal = Calendar::new(config.arbitration);
        let submission_slot = cal.register();
        let storage_slot = cal.register();
        let timeout_slot = cal.register();
        Ok(Engine {
            config,
            storage: StorageSystem::new(storage)?,
            buffer,
            submissions: EventQueue::new(),
            tickets: FxHashMap::default(),
            next_ticket: 0,
            access_to_ticket: FxHashMap::default(),
            prefetch_tickets: FxHashMap::default(),
            prefetch_stats: PrefetchStats::default(),
            read_response: simkit::stats::OnlineStats::new(),
            cal,
            submission_slot,
            storage_slot,
            timeout_slot,
            proc_slots: Vec::new(),
            timeouts: EventQueue::new(),
            completion_scratch: Vec::new(),
            trace: None,
        })
    }

    /// Turns on structured tracing and metrics collection for this run,
    /// here and in every storage layer below.
    ///
    /// Off by default. Enabling changes no simulated outcome — it only
    /// records events as they happen and attaches a [`TelemetryReport`]
    /// to the [`RunResult`].
    pub fn enable_telemetry(&mut self) {
        self.trace = Some(TraceSink::new());
        self.storage.enable_trace();
    }

    /// Runs `trace` to completion.
    ///
    /// With `plan = None` every access executes at its original program
    /// point (the paper's configurations *without* the software approach);
    /// with a [`CompiledPlan`], reads moved earlier are prefetched by the
    /// scheduler threads.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ScheduleMismatch`] when the schedule belongs
    /// to a different trace (process or access count mismatch), and
    /// [`EngineError::Deadlock`] or one of the bookkeeping variants when an
    /// internal invariant is violated mid-run (a bug, not a configuration
    /// problem).
    pub fn run(
        mut self,
        trace: &sdds_compiler::ProgramTrace,
        plan: Option<CompiledPlan<'_>>,
    ) -> Result<RunResult, EngineError> {
        if let Some(plan) = plan {
            if plan.table.nprocs() != trace.processes.len() {
                return Err(EngineError::ScheduleMismatch {
                    what: "process count",
                    schedule: plan.table.nprocs(),
                    trace: trace.processes.len(),
                });
            }
            if plan.accesses.len() != plan.table.scheduled_count() {
                return Err(EngineError::ScheduleMismatch {
                    what: "scheduled access count",
                    schedule: plan.table.scheduled_count(),
                    trace: plan.accesses.len(),
                });
            }
        }

        let mut procs: Vec<ProcExec> = trace
            .processes
            .iter()
            .map(|p| ProcExec {
                local_time: SimTime::ZERO,
                slot: 0,
                slots: p.slots,
                io_cursor: 0,
                table_cursor: 0,
                deferred: Vec::new(),
                phase: Phase::SlotStart,
                state: State::Ready,
                completed_slot: None,
                finish: None,
            })
            .collect();

        self.proc_slots = procs.iter().map(|_| self.cal.register()).collect();
        for (i, p) in procs.iter().enumerate() {
            self.cal.retarget(self.proc_slots[i], Some(p.local_time));
        }
        let mut events: u64 = 0;

        loop {
            // The shared event sources are retargeted from their live
            // queues every round — any dispatch can reschedule any of
            // them, and retargeting an unchanged due time is a no-op.
            // Process slots are kept up to date at their wake/step sites.
            self.cal
                .retarget(self.submission_slot, self.submissions.peek_time());
            self.cal
                .retarget(self.storage_slot, self.storage.next_event_time());
            self.cal
                .retarget(self.timeout_slot, self.timeouts.peek_time());

            let Some((te, slot)) = self.cal.pop() else {
                let blocked = procs.iter().filter(|p| p.state != State::Done).count();
                if blocked > 0 {
                    return Err(EngineError::Deadlock { blocked });
                }
                break;
            };
            if let Some(p) = self.proc_of(slot) {
                events += 1;
                self.step(&mut procs, p, trace, plan)?;
                let pr = &procs[p];
                self.cal
                    .retarget(slot, (pr.state == State::Ready).then_some(pr.local_time));
            } else {
                // Leftover storage work (e.g. prefetches nobody waits
                // for) is irrelevant once every process has finished.
                if procs.iter().all(|p| p.state == State::Done) {
                    break;
                }
                events += 1;
                self.dispatch_event(te, slot, &mut procs)?;
            }
        }

        let mut finish_times = Vec::with_capacity(procs.len());
        for (i, p) in procs.iter().enumerate() {
            finish_times.push(p.finish.ok_or(EngineError::Unfinished { proc: i })?);
        }
        let exec_time = finish_times.iter().copied().max().unwrap_or(SimTime::ZERO);
        self.storage.finish(exec_time);
        let telemetry = self
            .trace
            .take()
            .map(|sink| self.build_telemetry(sink, exec_time));

        Ok(RunResult {
            exec_time: exec_time - SimTime::ZERO,
            energy_joules: self.storage.total_joules(),
            energy: self.storage.energy(),
            idle_histogram: self.storage.idle_histogram(),
            idle_time_histogram: self.storage.idle_time_histogram(),
            buffer: self.buffer.stats(),
            prefetch: self.prefetch_stats,
            per_proc_finish: finish_times.iter().map(|&f| f - SimTime::ZERO).collect(),
            bytes_moved: self.storage.bytes_moved(),
            mean_read_response: self.read_response.mean(),
            events,
            telemetry,
            faults: self.storage.fault_counters(),
        })
    }

    /// Assembles the run's [`TelemetryReport`]: merges the per-layer
    /// event buffers into one time-ordered stream, populates the metrics
    /// registry from every layer, and snapshots each disk's
    /// residency/energy breakdown.
    fn build_telemetry(&mut self, mut sink: TraceSink, end: SimTime) -> TelemetryReport {
        let engine_events = sink.take_events();
        let storage_events = self.storage.take_trace_events();
        let events = merge_events(vec![engine_events, storage_events]);

        let mut metrics = MetricsRegistry::new();
        self.storage.record_metrics(&mut metrics);
        let b = self.buffer.stats();
        metrics.counter("runtime.buffer.admitted", b.admitted);
        metrics.counter("runtime.buffer.rejected_full", b.rejected_full);
        metrics.counter("runtime.buffer.hits", b.hits);
        metrics.counter("runtime.buffer.hits_in_flight", b.hits_in_flight);
        metrics.counter("runtime.buffer.misses", b.misses);
        metrics.gauge("runtime.buffer.peak_used_bytes", b.peak_used as f64);
        let consulted = b.hits + b.hits_in_flight + b.misses;
        if consulted > 0 {
            metrics.gauge("runtime.buffer.hit_ratio", b.hits as f64 / consulted as f64);
        }
        let pf = self.prefetch_stats;
        metrics.counter("runtime.scheduler.issued", pf.issued);
        metrics.counter("runtime.scheduler.deferred_producer", pf.deferred_producer);
        metrics.counter("runtime.scheduler.deferred_full", pf.deferred_full);
        metrics.counter("runtime.scheduler.became_sync", pf.became_sync);
        // Gated on the configuration so the metrics snapshot of a
        // timeout-free run is unchanged from earlier builds.
        if self.config.prefetch_timeout.is_some() {
            metrics.counter("runtime.scheduler.timed_out", pf.timed_out);
        }
        metrics.summary("runtime.read_response_s", &self.read_response);

        let mut latency = BucketHistogram::new(request_latency_edges());
        for e in &events {
            if let TraceEvent::Request { arrival, end, .. } = e {
                latency.record(end.saturating_since(*arrival));
            }
        }
        metrics.histogram("disk.request_latency", &latency);

        let mut disks = Vec::new();
        for (n, node) in self.storage.nodes().iter().enumerate() {
            for (d, disk) in node.disks().iter().enumerate() {
                disks.push(DiskSummary {
                    node: n,
                    disk: d,
                    states: disk
                        .energy()
                        .iter()
                        .map(|(s, e)| (s, e.residency.as_secs_f64(), e.joules))
                        .collect(),
                    counters: disk.counters(),
                    total_joules: disk.energy().total_joules(),
                });
            }
        }

        TelemetryReport {
            events,
            metrics,
            disks,
            end,
        }
    }

    /// Creates a ticket and queues the submission at `server_time`.
    fn enqueue(&mut self, access: FileAccess, server_time: SimTime, state: TicketState) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.tickets.insert(ticket, state);
        self.submissions
            .schedule(server_time, Submission { ticket, access });
        ticket
    }

    /// Which process (if any) a calendar slot belongs to. The three
    /// shared slots are registered first, so process slots start right
    /// after them.
    fn proc_of(&self, slot: SlotId) -> Option<usize> {
        let base = self.timeout_slot.index() + 1;
        slot.index().checked_sub(base)
    }

    /// Handles the engine event the calendar popped at time `te` — a
    /// submission dispatch, a storage phase boundary, or a prefetch
    /// deadline — then delivers any completions.
    fn dispatch_event(
        &mut self,
        te: SimTime,
        slot: SlotId,
        procs: &mut [ProcExec],
    ) -> Result<(), EngineError> {
        if slot == self.submission_slot {
            let Some((t, sub)) = self.submissions.pop() else {
                return Err(EngineError::Internal {
                    what: "submission queue empty after a successful peek",
                });
            };
            let id = self.storage.submit(sub.access, t);
            if let Some(sink) = self.trace.as_mut() {
                // Root span of the access's causal tree; member-disk
                // requests parent-link to it via `RequestIssued.access`.
                sink.record(TraceEvent::AccessStart {
                    at: t,
                    access: id.0,
                });
            }
            self.access_to_ticket.insert(id, sub.ticket);
        } else if slot == self.storage_slot {
            self.storage.advance_to(te);
        } else {
            debug_assert_eq!(slot, self.timeout_slot);
            self.fire_prefetch_timeout(te, procs)?;
        }
        self.deliver_completions(procs)
    }

    /// Fires a due prefetch deadline: every process still blocked on
    /// that (still in-flight) prefetch gives up waiting and falls back
    /// to a synchronous read, exactly as if it had caught the timeout on
    /// arrival. A deadline whose prefetch already completed is stale and
    /// does nothing.
    fn fire_prefetch_timeout(
        &mut self,
        te: SimTime,
        procs: &mut [ProcExec],
    ) -> Result<(), EngineError> {
        let Some((_, (ticket, key))) = self.timeouts.pop() else {
            return Err(EngineError::Internal {
                what: "timeout queue empty after a successful peek",
            });
        };
        if self
            .prefetch_tickets
            .get(&key)
            .is_none_or(|&(live, _)| live != ticket)
        {
            return Ok(());
        }
        let Some(state) = self.tickets.get_mut(&ticket) else {
            return Err(EngineError::TicketOutOfSync { ticket });
        };
        let mut gave_up = Vec::new();
        state.waiters.retain(|&(proc, consume)| {
            if consume == Some(key) {
                gave_up.push(proc);
                false
            } else {
                true
            }
        });
        for proc in gave_up {
            debug_assert_eq!(procs[proc].state, State::Blocked);
            self.prefetch_stats.timed_out += 1;
            if let Some(sink) = self.trace.as_mut() {
                sink.record(TraceEvent::PrefetchInvalidate {
                    at: te,
                    proc: proc as u32,
                    file: key.0 .0,
                    offset: key.1,
                    len: key.2,
                    reason: "timeout",
                });
            }
            self.enqueue(
                FileAccess::read(key.0, key.1, key.2),
                te + self.config.network_latency,
                TicketState {
                    fill: None,
                    waiters: vec![(proc, None)],
                },
            );
        }
        Ok(())
    }

    fn deliver_completions(&mut self, procs: &mut [ProcExec]) -> Result<(), EngineError> {
        // Swap the scratch buffer in so the storage system can drain into
        // it: no allocation once the buffer has grown to steady-state size.
        let mut done_buf = std::mem::take(&mut self.completion_scratch);
        self.storage.drain_completions_into(&mut done_buf);
        for done in done_buf.drain(..) {
            if let Some(sink) = self.trace.as_mut() {
                sink.record(TraceEvent::AccessEnd {
                    at: done.time,
                    access: done.access.0,
                });
            }
            let Some(ticket) = self.access_to_ticket.remove(&done.access) else {
                return Err(EngineError::UntrackedCompletion {
                    access: done.access,
                });
            };
            let Some(state) = self.tickets.remove(&ticket) else {
                return Err(EngineError::TicketOutOfSync { ticket });
            };
            if let Some(key) = state.fill {
                self.buffer.fill(&key);
                self.prefetch_tickets.remove(&key);
            }
            for (proc, consume) in state.waiters {
                let wake_at = done.time + self.config.network_latency;
                if let Some(key) = consume {
                    if !self.buffer.consume(&key) {
                        // Another process consumed the entry first: fall
                        // back to a synchronous read for this waiter.
                        let access = FileAccess::read(key.0, key.1, key.2);
                        self.enqueue(
                            access,
                            wake_at + self.config.network_latency,
                            TicketState {
                                fill: None,
                                waiters: vec![(proc, None)],
                            },
                        );
                        continue;
                    }
                }
                let p = &mut procs[proc];
                debug_assert_eq!(p.state, State::Blocked);
                self.read_response
                    .push(wake_at.saturating_since(p.local_time).as_secs_f64());
                p.local_time = p.local_time.max(wake_at);
                p.state = State::Ready;
                self.cal.retarget(self.proc_slots[proc], Some(p.local_time));
            }
        }
        self.completion_scratch = done_buf;
        Ok(())
    }

    /// Executes one action of process `p` at its current local time.
    fn step(
        &mut self,
        procs: &mut [ProcExec],
        p: usize,
        trace: &sdds_compiler::ProgramTrace,
        plan: Option<CompiledPlan<'_>>,
    ) -> Result<(), EngineError> {
        if procs[p].slot >= procs[p].slots {
            procs[p].state = State::Done;
            procs[p].finish = Some(procs[p].local_time);
            return Ok(());
        }
        match procs[p].phase {
            Phase::SlotStart => {
                if let Some(plan) = plan {
                    self.run_scheduler_thread(procs, p, plan.accesses, plan.table);
                }
                let compute = trace.processes[p].compute[procs[p].slot as usize];
                procs[p].local_time += compute;
                procs[p].phase = Phase::SlotIo;
            }
            Phase::SlotIo => {
                let slot = procs[p].slot;
                let cursor = procs[p].io_cursor;
                match trace.processes[p].ios.get(cursor) {
                    Some(io) if io.slot == slot => {
                        procs[p].io_cursor += 1;
                        self.perform_original_io(procs, p, cursor, trace, plan)?;
                    }
                    _ => {
                        // Slot finished.
                        procs[p].completed_slot = Some(slot);
                        procs[p].slot += 1;
                        procs[p].phase = Phase::SlotStart;
                        if procs[p].slot >= procs[p].slots {
                            procs[p].state = State::Done;
                            procs[p].finish = Some(procs[p].local_time);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The scheduler thread of client `p`: issue the prefetches whose
    /// scheduled slot has arrived, plus any deferred ones that became
    /// feasible.
    fn run_scheduler_thread(
        &mut self,
        procs: &mut [ProcExec],
        p: usize,
        accesses: &[SchedulableAccess],
        table: &ScheduleTable,
    ) {
        let slot = procs[p].slot;
        let now = procs[p].local_time;
        // Append the table entries due at this slot after the already
        // deferred prefetches, so retries (older requests) still go first.
        let entries = table.for_process(p);
        while procs[p].table_cursor < entries.len() {
            let e = &entries[procs[p].table_cursor];
            if e.slot > slot {
                break;
            }
            procs[p].table_cursor += 1;
            let a = &accesses[e.access_index];
            let is_prefetch = a.is_read()
                && e.slot < a.io.slot
                && a.io.slot - e.slot >= self.config.min_prefetch_advance;
            if is_prefetch {
                procs[p].deferred.push(e.access_index);
            }
        }
        // Walk the combined list, compacting in place: entries that must
        // keep waiting slide to the front, everything else is consumed.
        let mut cursor = 0;
        let mut kept = 0;
        while cursor < procs[p].deferred.len() {
            let idx = procs[p].deferred[cursor];
            cursor += 1;
            let a = &accesses[idx];
            // The original point has arrived (or passed): the application
            // will perform this access synchronously.
            if a.io.slot <= slot {
                self.prefetch_stats.became_sync += 1;
                if let Some(sink) = self.trace.as_mut() {
                    sink.record(TraceEvent::PrefetchInvalidate {
                        at: now,
                        proc: p as u32,
                        file: a.io.file.0,
                        offset: a.io.offset,
                        len: a.io.len,
                        reason: "became-sync",
                    });
                }
                continue;
            }
            // Correctness rule: data written by a remote process may only
            // be fetched once the producer's local time has passed the
            // producing write (§III).
            if let Some((q, w)) = a.producer {
                let produced = procs[q].completed_slot.is_some_and(|c| c >= w);
                if !produced {
                    self.prefetch_stats.deferred_producer += 1;
                    procs[p].deferred[kept] = idx;
                    kept += 1;
                    continue;
                }
            }
            let key: RangeKey = (a.io.file, a.io.offset, a.io.len);
            if self.buffer.contains(&key) {
                continue; // another scheduler thread already fetched it
            }
            if !self.buffer.has_room(a.io.len) {
                self.prefetch_stats.deferred_full += 1;
                procs[p].deferred[kept] = idx;
                kept += 1;
                continue;
            }
            let admitted = self.buffer.reserve(key);
            debug_assert!(admitted, "room was checked above");
            let ticket = self.enqueue(
                FileAccess::read(a.io.file, a.io.offset, a.io.len),
                now + self.config.network_latency,
                TicketState {
                    fill: Some(key),
                    waiters: Vec::new(),
                },
            );
            self.prefetch_tickets.insert(key, (ticket, now));
            self.prefetch_stats.issued += 1;
            if let Some(sink) = self.trace.as_mut() {
                sink.record(TraceEvent::BufferPrefetch {
                    at: now,
                    proc: p as u32,
                    file: a.io.file.0,
                    offset: a.io.offset,
                    len: a.io.len,
                });
            }
        }
        procs[p].deferred.truncate(kept);
    }

    /// Performs the application's original-point I/O operation `cursor` of
    /// process `p`.
    fn perform_original_io(
        &mut self,
        procs: &mut [ProcExec],
        p: usize,
        cursor: usize,
        trace: &sdds_compiler::ProgramTrace,
        plan: Option<CompiledPlan<'_>>,
    ) -> Result<(), EngineError> {
        let io = trace.processes[p].ios[cursor];
        let now = procs[p].local_time;
        match io.direction {
            IoDirection::Write => {
                self.enqueue(
                    FileAccess::write(io.file, io.offset, io.len),
                    now + self.config.network_latency,
                    TicketState {
                        fill: None,
                        waiters: vec![(p, None)],
                    },
                );
                procs[p].state = State::Blocked;
            }
            IoDirection::Read => {
                if plan.is_some() {
                    let key: RangeKey = (io.file, io.offset, io.len);
                    let lookup = self.buffer.lookup(&key);
                    if let Some(sink) = self.trace.as_mut() {
                        sink.record(TraceEvent::BufferRead {
                            at: now,
                            proc: p as u32,
                            file: io.file.0,
                            offset: io.offset,
                            len: io.len,
                            outcome: match lookup {
                                Some(EntryState::Ready) => "hit",
                                Some(EntryState::InFlight) => "in-flight",
                                None => "miss",
                            },
                        });
                    }
                    match lookup {
                        Some(EntryState::Ready) => {
                            // Ready in the buffer: consume and move on.
                            let consumed = self.buffer.consume(&key);
                            debug_assert!(consumed);
                            procs[p].local_time += self.config.buffer_hit_cost;
                            return Ok(());
                        }
                        Some(EntryState::InFlight) => {
                            let Some(&(ticket, issued_at)) = self.prefetch_tickets.get(&key) else {
                                return Err(EngineError::Internal {
                                    what: "in-flight buffer entry has no prefetch ticket",
                                });
                            };
                            // A prefetch stuck past the timeout (e.g. on
                            // a crashed or straggling disk) is abandoned:
                            // the application falls back to a synchronous
                            // read instead of waiting indefinitely. The
                            // prefetch still completes and fills the
                            // buffer for any later consumer.
                            let stuck = self
                                .config
                                .prefetch_timeout
                                .is_some_and(|limit| now.saturating_since(issued_at) > limit);
                            if stuck {
                                self.prefetch_stats.timed_out += 1;
                                if let Some(sink) = self.trace.as_mut() {
                                    sink.record(TraceEvent::PrefetchInvalidate {
                                        at: now,
                                        proc: p as u32,
                                        file: io.file.0,
                                        offset: io.offset,
                                        len: io.len,
                                        reason: "timeout",
                                    });
                                }
                            } else {
                                // Still in flight: block on the prefetch.
                                // With a timeout configured, the wait is
                                // bounded by a deadline event on the
                                // unified calendar, so a storage-stalled
                                // prefetch wakes this waiter at the
                                // deadline rather than never.
                                if let Some(limit) = self.config.prefetch_timeout {
                                    self.timeouts
                                        .schedule((issued_at + limit).max(now), (ticket, key));
                                }
                                let Some(state) = self.tickets.get_mut(&ticket) else {
                                    return Err(EngineError::TicketOutOfSync { ticket });
                                };
                                state.waiters.push((p, Some(key)));
                                procs[p].state = State::Blocked;
                                return Ok(());
                            }
                        }
                        None => {}
                    }
                }
                // Synchronous read.
                self.enqueue(
                    FileAccess::read(io.file, io.offset, io.len),
                    now + self.config.network_latency,
                    TicketState {
                        fill: None,
                        waiters: vec![(p, None)],
                    },
                );
                procs[p].state = State::Blocked;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_compiler::ir::{IoDirection, Program};
    use sdds_compiler::{analyze_slacks, SchedulerConfig, SlotGranularity};
    use sdds_power::PolicyKind;
    use sdds_storage::FileId;

    const STRIPE: u64 = 64 * 1024;

    fn scan(nprocs: usize, blocks: i64, compute_ms: u64) -> Program {
        let mut p = Program::new("scan", nprocs);
        let f = p.add_file(FileId(0), STRIPE * nprocs as u64 * blocks as u64);
        let span = blocks * STRIPE as i64;
        p.push_loop("i", 0, blocks - 1, move |b| {
            b.io(
                IoDirection::Read,
                f,
                |e| e.term("i", STRIPE as i64).term("p", span),
                STRIPE,
            );
            b.compute(SimDuration::from_millis(compute_ms));
        });
        p
    }

    fn run_program(p: &Program, with_scheme: bool) -> RunResult {
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
        let engine = Engine::new(EngineConfig::paper_defaults(), storage.clone()).unwrap();
        if with_scheme {
            let accesses = analyze_slacks(&trace, &storage.layout).unwrap();
            let table = SchedulerConfig::paper_defaults()
                .schedule(&accesses, &trace)
                .unwrap();
            engine
                .run(&trace, Some(CompiledPlan::new(&accesses, &table)))
                .unwrap()
        } else {
            engine.run(&trace, None).unwrap()
        }
    }

    #[test]
    fn baseline_run_completes() {
        let r = run_program(&scan(2, 8, 20), false);
        assert!(r.exec_time >= SimDuration::from_millis(160)); // 8 slots × 20 ms
        assert!(r.energy_joules > 0.0);
        assert_eq!(r.per_proc_finish.len(), 2);
        assert_eq!(r.buffer.hits, 0);
        assert_eq!(r.prefetch.issued, 0);
        // All 16 reads reach the storage system.
        assert_eq!(r.bytes_moved.0, 16 * STRIPE);
    }

    #[test]
    fn scheme_run_prefetches_into_gap() {
        let mut p = Program::new("scan-gap", 2);
        let f = p.add_file(FileId(0), STRIPE * 16);
        p.push_skip(16, SimDuration::from_millis(20)); // I/O-free warm-up phase
        p.push_loop("i", 0, 7, move |b| {
            b.io(
                IoDirection::Read,
                f,
                |e| e.term("i", STRIPE as i64).term("p", 8 * STRIPE as i64),
                STRIPE,
            );
            b.compute(SimDuration::from_millis(20));
        });
        let r = run_program(&p, true);
        assert!(r.prefetch.issued > 0, "prefetches should be issued");
        assert!(r.buffer.hits > 0, "application reads should hit the buffer");
    }

    #[test]
    fn results_identical_across_runs() {
        let p = scan(3, 6, 10);
        let a = run_program(&p, true);
        let b = run_program(&p, true);
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.energy_joules, b.energy_joules);
        assert_eq!(a.prefetch, b.prefetch);
    }

    #[test]
    fn scheme_preserves_bytes_read() {
        // Prefetching moves reads in time but must not lose or duplicate
        // application data.
        let p = scan(2, 8, 20);
        let without = run_program(&p, false);
        let with = run_program(&p, true);
        assert_eq!(without.bytes_moved.0, with.bytes_moved.0);
    }

    #[test]
    fn producer_consumer_correctness() {
        // Each process writes blocks, then reads the *other* process's
        // blocks after a gap. The prefetcher must wait for the producer.
        let mut p = Program::new("pc", 2);
        let f = p.add_file(FileId(0), 8 * STRIPE);
        p.push_loop("i", 0, 3, move |b| {
            b.io(
                IoDirection::Write,
                f,
                |e| e.term("i", STRIPE as i64).term("p", 4 * STRIPE as i64),
                STRIPE,
            );
            b.compute(SimDuration::from_millis(5));
        });
        p.push_skip(4, SimDuration::from_millis(5));
        p.push_loop("j", 0, 3, move |b| {
            b.io(
                IoDirection::Read,
                f,
                |e| {
                    e.term("j", STRIPE as i64)
                        .term("p", -(4 * STRIPE as i64))
                        .plus(4 * STRIPE as i64)
                },
                STRIPE,
            );
            b.compute(SimDuration::from_millis(5));
        });
        let r = run_program(&p, true);
        // All reads completed (no deadlock).
        assert_eq!(r.bytes_moved.0, 8 * STRIPE);
        assert!(r.exec_time > SimDuration::ZERO);
    }

    #[test]
    fn tiny_buffer_limits_prefetching() {
        let mut p = Program::new("gap", 1);
        let f = p.add_file(FileId(0), STRIPE * 16);
        p.push_skip(16, SimDuration::from_millis(5));
        p.push_loop("i", 0, 7, move |b| {
            b.io(IoDirection::Read, f, |e| e.term("i", STRIPE as i64), STRIPE);
            b.compute(SimDuration::from_millis(5));
        });
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
        let accesses = analyze_slacks(&trace, &storage.layout).unwrap();
        let table = SchedulerConfig::paper_defaults()
            .schedule(&accesses, &trace)
            .unwrap();
        let mut cfg = EngineConfig::paper_defaults();
        cfg.buffer_capacity = STRIPE; // room for exactly one block
        let r = Engine::new(cfg, storage)
            .unwrap()
            .run(&trace, Some(CompiledPlan::new(&accesses, &table)))
            .unwrap();
        assert!(r.prefetch.deferred_full > 0 || r.prefetch.became_sync > 0);
        // Execution still completes correctly.
        assert_eq!(r.bytes_moved.0, 8 * STRIPE);
    }

    #[test]
    fn exec_time_includes_blocking_io() {
        // With zero compute the run time is pure I/O.
        let r = run_program(&scan(1, 4, 0), false);
        assert!(r.exec_time > SimDuration::ZERO);
        assert!(r.mean_read_response > 0.0);
    }

    #[test]
    fn writes_block_until_durable() {
        let mut p = Program::new("writer", 1);
        let f = p.add_file(FileId(0), 4 * STRIPE);
        p.push_loop("i", 0, 3, move |b| {
            b.io(
                IoDirection::Write,
                f,
                |e| e.term("i", STRIPE as i64),
                STRIPE,
            );
        });
        let r = run_program(&p, false);
        assert_eq!(r.bytes_moved.1, 4 * STRIPE);
        // Four RAID-5 full-stripe writes take real time.
        assert!(r.exec_time > SimDuration::from_millis(10));
    }

    #[test]
    fn zero_buffer_is_rejected() {
        let mut cfg = EngineConfig::paper_defaults();
        cfg.buffer_capacity = 0;
        let err = Engine::new(cfg, StorageConfig::paper_defaults(PolicyKind::NoPm)).unwrap_err();
        assert!(matches!(err, crate::EngineError::ZeroBuffer));
        assert_eq!(err.to_string(), "engine buffer capacity must be positive");
    }

    #[test]
    fn mismatched_schedule_is_rejected() {
        // Compile a schedule for a 2-process trace, run it against a
        // 3-process trace: the engine must refuse, not corrupt the run.
        let two = scan(2, 4, 5);
        let three = scan(3, 4, 5);
        let trace2 = two.trace(SlotGranularity::unit()).unwrap();
        let trace3 = three.trace(SlotGranularity::unit()).unwrap();
        let storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
        let accesses = analyze_slacks(&trace2, &storage.layout).unwrap();
        let table = SchedulerConfig::paper_defaults()
            .schedule(&accesses, &trace2)
            .unwrap();
        let engine = Engine::new(EngineConfig::paper_defaults(), storage).unwrap();
        let err = engine
            .run(&trace3, Some(CompiledPlan::new(&accesses, &table)))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::EngineError::ScheduleMismatch {
                what: "process count",
                ..
            }
        ));
    }

    #[test]
    fn telemetry_absent_by_default() {
        let r = run_program(&scan(2, 4, 5), true);
        assert!(r.telemetry.is_none());
    }

    /// Like `run_program` but with the telemetry layer switched on.
    fn run_traced(p: &Program, with_scheme: bool) -> RunResult {
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
        let mut engine = Engine::new(EngineConfig::paper_defaults(), storage.clone()).unwrap();
        engine.enable_telemetry();
        if with_scheme {
            let accesses = analyze_slacks(&trace, &storage.layout).unwrap();
            let table = SchedulerConfig::paper_defaults()
                .schedule(&accesses, &trace)
                .unwrap();
            engine
                .run(&trace, Some(CompiledPlan::new(&accesses, &table)))
                .unwrap()
        } else {
            engine.run(&trace, None).unwrap()
        }
    }

    #[test]
    fn telemetry_does_not_change_simulated_outcome() {
        let p = scan(2, 8, 20);
        let plain = run_program(&p, true);
        let traced = run_traced(&p, true);
        assert_eq!(plain.exec_time, traced.exec_time);
        assert_eq!(
            plain.energy_joules.to_bits(),
            traced.energy_joules.to_bits()
        );
        assert_eq!(plain.buffer, traced.buffer);
        assert_eq!(plain.prefetch, traced.prefetch);
        assert_eq!(plain.per_proc_finish, traced.per_proc_finish);
        assert_eq!(plain.bytes_moved, traced.bytes_moved);
    }

    #[test]
    fn telemetry_report_is_consistent_with_the_run() {
        let p = scan(2, 8, 20);
        let r = run_traced(&p, true);
        let t = r.telemetry.as_ref().expect("telemetry was enabled");
        assert!(!t.events.is_empty());
        // The per-disk energy table sums to the run's headline energy.
        assert!((t.summary_joules() - r.energy_joules).abs() < 1e-9);
        // Runtime counters mirror the run's stats.
        assert_eq!(
            t.metrics.get_counter("runtime.scheduler.issued"),
            Some(r.prefetch.issued)
        );
        assert_eq!(
            t.metrics.get_counter("runtime.buffer.hits"),
            Some(r.buffer.hits)
        );
        // Every event line is well-formed JSON-ish (starts a JSON object).
        for line in t.jsonl().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn telemetry_trace_is_deterministic() {
        let p = scan(3, 6, 10);
        let a = run_traced(&p, true);
        let b = run_traced(&p, true);
        let (ta, tb) = (a.telemetry.unwrap(), b.telemetry.unwrap());
        assert_eq!(ta.jsonl(), tb.jsonl());
        assert_eq!(ta.metrics.to_json(), tb.metrics.to_json());
        assert_eq!(ta.chrome_trace(), tb.chrome_trace());
    }

    #[test]
    fn fault_plan_preserves_bytes_and_terminates() {
        use simkit::fault::{FaultPlan, FaultSpec};
        let p = scan(2, 8, 20);
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let clean = run_program(&p, false);

        let mut storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
        let spec = FaultSpec::heavy(42);
        storage.node.faults = Some(FaultPlan::generate(
            &spec,
            storage.layout.io_nodes(),
            storage.node.raid.disks(),
            storage.node.disk.total_sectors(),
        ));
        let run = || {
            Engine::new(EngineConfig::paper_defaults(), storage.clone())
                .unwrap()
                .run(&trace, None)
                .unwrap()
        };
        let faulty = run();
        // Retries and reconstructions happen below the byte-accounting
        // boundary: the application moved exactly the same data.
        assert_eq!(faulty.bytes_moved, clean.bytes_moved);
        assert!(
            faulty.faults.total_injected() >= 1,
            "a heavy plan injects: {:?}",
            faulty.faults
        );
        assert!(clean.faults.is_zero());
        // And the whole faulty run is reproducible per seed.
        let again = run();
        assert_eq!(faulty.exec_time, again.exec_time);
        assert_eq!(
            faulty.energy_joules.to_bits(),
            again.energy_joules.to_bits()
        );
        assert_eq!(faulty.faults, again.faults);
    }

    #[test]
    fn prefetch_timeout_falls_back_to_sync() {
        // Tiny compute keeps original points hot on the prefetchers'
        // heels, so applications routinely catch their prefetch still in
        // flight; a (deliberately absurd) zero timeout turns every such
        // wait into a synchronous fallback.
        let mut p = Program::new("impatient", 1);
        let f = p.add_file(FileId(0), STRIPE * 16);
        p.push_skip(16, SimDuration::from_micros(10));
        p.push_loop("i", 0, 7, move |b| {
            b.io(IoDirection::Read, f, |e| e.term("i", STRIPE as i64), STRIPE);
            b.compute(SimDuration::from_micros(10));
        });
        let trace = p.trace(SlotGranularity::unit()).unwrap();
        let storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
        let accesses = analyze_slacks(&trace, &storage.layout).unwrap();
        let table = SchedulerConfig::paper_defaults()
            .schedule(&accesses, &trace)
            .unwrap();
        let mut cfg = EngineConfig::paper_defaults();
        cfg.prefetch_timeout = Some(SimDuration::ZERO);
        // Prefetch even one slot ahead: the issue lands microseconds
        // before the original point, guaranteeing an in-flight catch.
        cfg.min_prefetch_advance = 1;
        let r = Engine::new(cfg, storage)
            .unwrap()
            .run(&trace, Some(CompiledPlan::new(&accesses, &table)))
            .unwrap();
        assert!(r.prefetch.issued > 0, "prefetches were issued: {r:?}");
        assert!(
            r.prefetch.timed_out > 0,
            "in-flight waits should have timed out: {:?}",
            r.prefetch
        );
        // No read was lost: the fallback reads fetch everything the
        // application asked for.
        assert!(r.bytes_moved.0 >= 8 * STRIPE);
    }

    #[test]
    fn scheme_shifts_idle_distribution_right() {
        // The headline mechanism: with the scheme, long idle periods grow.
        let mut p = Program::new("phased", 4);
        let f = p.add_file(FileId(0), 64 * STRIPE);
        p.push_skip(16, SimDuration::from_millis(50));
        p.push_loop("i", 0, 15, move |b| {
            b.io(
                IoDirection::Read,
                f,
                |e| e.term("i", STRIPE as i64).term("p", 16 * STRIPE as i64),
                STRIPE,
            );
            b.compute(SimDuration::from_millis(50));
        });
        let without = run_program(&p, false);
        let with = run_program(&p, true);
        // Compare the total completed idle time fraction at long horizons:
        // clustering reads frees contiguous stretches.
        let f_without = without
            .idle_histogram
            .fraction_at_or_below(SimDuration::from_millis(100));
        let f_with = with
            .idle_histogram
            .fraction_at_or_below(SimDuration::from_millis(100));
        // With the scheme, a *smaller* fraction of idle periods should be
        // short (more long periods), or at worst equal.
        assert!(
            f_with <= f_without + 1e-9,
            "short-idle fraction should not grow: {f_with} vs {f_without}"
        );
    }
}
