//! Datacenter-scale scene execution on the sharded kernel.
//!
//! Turns a [`SceneSpec`] (from `sdds-workloads`) into shard components —
//! [`ClientProc`]s behind `sdds-storage`'s shared links and burst-buffer
//! groups, plus one [`GlobalScheduler`] arbitrating the periodic global
//! I/O schedule — and drives them on a [`ShardedKernel`]. The result is
//! bitwise identical for any worker count; [`SceneResult::digest`]
//! renders the jobs-invariant metrics as a canonical JSON line so tests
//! and CI can `cmp` runs at different `--jobs`.
//!
//! Every send uses the scene's hop latency, and the kernel's epoch
//! window must not exceed it — [`build_scene`] enforces that lookahead
//! contract up front instead of failing mid-run.

use std::fmt;
use std::sync::Arc;

use sdds_power::scene::{SceneEnergy, ScenePower, ScenePowerParams};
use sdds_storage::scene::{BurstBufferGroup, GroupParams, SceneMsg, SceneRequest, SharedLink};
use sdds_workloads::{SceneClientSpec, SceneSpec};
use simkit::shard::{
    GlobalSlot, ShardComponent, ShardCtx, ShardError, ShardObs, ShardRunStats, ShardedKernel,
};
use simkit::{SimDuration, SimTime};

/// How many shards a scene runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// One shard per ~32 components (clamped to `1..=4096`).
    Auto,
    /// Exactly this many shards.
    Fixed(usize),
}

impl ShardPolicy {
    /// Resolves the policy for a scene with `components` components.
    #[must_use]
    pub fn resolve(self, components: usize) -> usize {
        match self {
            ShardPolicy::Auto => components.div_ceil(32).clamp(1, 4096),
            ShardPolicy::Fixed(n) => n.max(1),
        }
    }
}

/// Errors from building or running a scene.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SceneError {
    /// The epoch window is zero or exceeds the scene's hop latency, so
    /// the conservative lookahead contract cannot hold.
    BadEpoch {
        /// Requested epoch window in microseconds.
        window_us: u64,
        /// The scene's hop latency in microseconds.
        hop_us: u64,
    },
    /// The spec is internally inconsistent.
    BadSpec {
        /// What was wrong.
        what: &'static str,
    },
    /// The sharded kernel failed.
    Kernel(ShardError),
    /// Clients were still unfinished when the scene went quiescent.
    Stalled {
        /// Number of clients without a finish time.
        unfinished: usize,
    },
}

impl fmt::Display for SceneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SceneError::BadEpoch { window_us, hop_us } => write!(
                f,
                "epoch window {window_us}us must be positive and no longer than \
                 the scene hop latency {hop_us}us"
            ),
            SceneError::BadSpec { what } => write!(f, "invalid scene spec: {what}"),
            SceneError::Kernel(e) => write!(f, "sharded kernel failed: {e}"),
            SceneError::Stalled { unfinished } => {
                write!(
                    f,
                    "scene went quiescent with {unfinished} unfinished clients"
                )
            }
        }
    }
}

impl std::error::Error for SceneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SceneError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

/// A client process: alternating compute phases and I/O bursts, gated by
/// the global I/O schedule when the scene has one.
#[derive(Debug, Clone)]
pub struct ClientProc {
    spec: SceneClientSpec,
    hop: SimDuration,
    link: GlobalSlot,
    groups: Arc<[GlobalSlot]>,
    scheduler: Option<GlobalSlot>,
    /// Next tick time (end of the current compute phase).
    next: Option<SimTime>,
    iter: u32,
    outstanding: u32,
    window_until: SimTime,
    req_seq: u64,
    /// Completion time of the last iteration.
    pub finished: Option<SimTime>,
    /// Requests issued.
    pub issued: u64,
    /// Replies received.
    pub replies: u64,
}

impl ClientProc {
    fn new(
        spec: SceneClientSpec,
        hop: SimDuration,
        link: GlobalSlot,
        groups: Arc<[GlobalSlot]>,
        scheduler: Option<GlobalSlot>,
    ) -> Self {
        let first = SimTime::ZERO + spec.start_offset + spec.compute;
        ClientProc {
            spec,
            hop,
            link,
            groups,
            scheduler,
            next: Some(first),
            iter: 0,
            outstanding: 0,
            window_until: SimTime::ZERO,
            req_seq: 0,
            finished: None,
            issued: 0,
            replies: 0,
        }
    }

    /// Fires the current iteration's burst of requests at the link.
    fn issue_burst(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, SceneMsg>) {
        let n = self.groups.len().max(1);
        for k in 0..self.spec.burst {
            let idx = (self.spec.group_base + (self.iter * self.spec.burst + k) as usize) % n;
            let write = self.spec.write_period > 0
                && self
                    .req_seq
                    .is_multiple_of(u64::from(self.spec.write_period));
            let req = SceneRequest {
                id: self.req_seq,
                client: ctx.self_slot(),
                group: self.groups[idx],
                bytes: self.spec.req_bytes,
                write,
            };
            self.req_seq += 1;
            ctx.send(self.link, now + self.hop, SceneMsg::Request(req));
        }
        self.outstanding = self.spec.burst;
        self.issued += u64::from(self.spec.burst);
    }
}

impl ShardComponent<SceneMsg> for ClientProc {
    fn next_tick(&self) -> Option<SimTime> {
        self.next
    }

    fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, SceneMsg>) {
        // Compute phase over; burst if the window allows, else ask the
        // global scheduler when this class may do I/O.
        self.next = None;
        match self.scheduler {
            Some(sched) if now >= self.window_until => {
                ctx.send(
                    sched,
                    now + self.hop,
                    SceneMsg::WindowRequest {
                        client: ctx.self_slot(),
                        class: self.spec.class,
                    },
                );
            }
            _ => self.issue_burst(now, ctx),
        }
    }

    fn on_message(&mut self, now: SimTime, msg: SceneMsg, ctx: &mut ShardCtx<'_, SceneMsg>) {
        match msg {
            SceneMsg::Grant { until } => {
                self.window_until = until;
                if self.outstanding == 0 && self.finished.is_none() {
                    self.issue_burst(now, ctx);
                }
            }
            SceneMsg::Reply { .. } => {
                self.replies += 1;
                self.outstanding = self.outstanding.saturating_sub(1);
                if self.outstanding == 0 {
                    self.iter += 1;
                    if self.iter >= self.spec.iters {
                        self.finished = Some(now);
                    } else {
                        self.next = Some(now + self.spec.compute);
                    }
                }
            }
            _ => {}
        }
    }
}

/// The periodic global I/O scheduler: purely reactive window arithmetic.
///
/// Time is divided into repeating cycles of `classes` slices; a
/// [`SceneMsg::WindowRequest`] is answered with a [`SceneMsg::Grant`]
/// delivered exactly when the asking class's slice next opens (or
/// immediately, if it is already open), carrying the slice's end time.
#[derive(Debug, Clone)]
pub struct GlobalScheduler {
    classes: u64,
    slice_us: u64,
    hop: SimDuration,
    /// Grants issued.
    pub grants: u64,
}

impl GlobalScheduler {
    /// A scheduler with `classes` slices of `slice` each per cycle.
    #[must_use]
    pub fn new(classes: u32, slice: SimDuration, hop: SimDuration) -> Self {
        GlobalScheduler {
            classes: u64::from(classes.max(1)),
            slice_us: slice.as_micros().max(1),
            hop,
            grants: 0,
        }
    }
}

impl ShardComponent<SceneMsg> for GlobalScheduler {
    fn next_tick(&self) -> Option<SimTime> {
        None
    }

    fn tick(&mut self, _now: SimTime, _ctx: &mut ShardCtx<'_, SceneMsg>) {}

    fn on_message(&mut self, now: SimTime, msg: SceneMsg, ctx: &mut ShardCtx<'_, SceneMsg>) {
        let SceneMsg::WindowRequest { client, class } = msg else {
            return;
        };
        let cycle = self.slice_us * self.classes;
        let c = u64::from(class) % self.classes;
        // Earliest instant the grant could reach the client.
        let t = (now + self.hop).as_micros();
        let k = t / cycle;
        let open = k * cycle + c * self.slice_us;
        let (grant_at, until) = if t < open {
            (open, open + self.slice_us)
        } else if t < open + self.slice_us {
            (t, open + self.slice_us)
        } else {
            let open = (k + 1) * cycle + c * self.slice_us;
            (open, open + self.slice_us)
        };
        self.grants += 1;
        ctx.send(
            client,
            SimTime::from_micros(grant_at),
            SceneMsg::Grant {
                until: SimTime::from_micros(until),
            },
        );
    }
}

/// The concrete component type scenes run on the sharded kernel.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum SceneComponent {
    /// A burst-buffer I/O group.
    Group(BurstBufferGroup),
    /// A congestion-limited shared link.
    Link(SharedLink),
    /// A client process.
    Client(ClientProc),
    /// The global I/O schedule arbiter.
    Scheduler(GlobalScheduler),
}

impl ShardComponent<SceneMsg> for SceneComponent {
    fn next_tick(&self) -> Option<SimTime> {
        match self {
            SceneComponent::Group(c) => c.next_tick(),
            SceneComponent::Link(c) => c.next_tick(),
            SceneComponent::Client(c) => c.next_tick(),
            SceneComponent::Scheduler(c) => c.next_tick(),
        }
    }

    fn tick(&mut self, now: SimTime, ctx: &mut ShardCtx<'_, SceneMsg>) {
        match self {
            SceneComponent::Group(c) => c.tick(now, ctx),
            SceneComponent::Link(c) => c.tick(now, ctx),
            SceneComponent::Client(c) => c.tick(now, ctx),
            SceneComponent::Scheduler(c) => c.tick(now, ctx),
        }
    }

    fn on_message(&mut self, now: SimTime, msg: SceneMsg, ctx: &mut ShardCtx<'_, SceneMsg>) {
        match self {
            SceneComponent::Group(c) => c.on_message(now, msg, ctx),
            SceneComponent::Link(c) => c.on_message(now, msg, ctx),
            SceneComponent::Client(c) => c.on_message(now, msg, ctx),
            SceneComponent::Scheduler(c) => c.on_message(now, msg, ctx),
        }
    }
}

/// Builds the sharded kernel for `spec`: groups first, then links, then
/// clients, then the scheduler, all assigned to shards round-robin.
///
/// `window` is the epoch length; it must be positive and no longer than
/// `spec.hop_latency` (the scene's lookahead).
pub fn build_scene(
    spec: &SceneSpec,
    shards: usize,
    window: SimDuration,
) -> Result<ShardedKernel<SceneMsg, SceneComponent>, SceneError> {
    if window.is_zero() || window > spec.hop_latency {
        return Err(SceneError::BadEpoch {
            window_us: window.as_micros(),
            hop_us: spec.hop_latency.as_micros(),
        });
    }
    if spec.groups == 0 {
        return Err(SceneError::BadSpec {
            what: "zero I/O groups",
        });
    }
    if spec.links == 0 {
        return Err(SceneError::BadSpec {
            what: "zero shared links",
        });
    }
    for c in &spec.clients {
        if c.link >= spec.links {
            return Err(SceneError::BadSpec {
                what: "client references unknown link",
            });
        }
        if c.group_base >= spec.groups {
            return Err(SceneError::BadSpec {
                what: "client references unknown group",
            });
        }
        if c.burst == 0 || c.iters == 0 {
            return Err(SceneError::BadSpec {
                what: "client with empty burst or zero iters",
            });
        }
    }

    let mut kernel = ShardedKernel::new(shards, window).map_err(SceneError::Kernel)?;

    // Slots are handed out in registration order, so the layout is known
    // up front: groups, links, clients, scheduler.
    let group_slots: Arc<[GlobalSlot]> = (0..spec.groups).map(GlobalSlot::from_index).collect();
    let link_base = spec.groups;
    let client_base = link_base + spec.links;
    let scheduler_slot = spec
        .schedule
        .map(|_| GlobalSlot::from_index(client_base + spec.clients.len()));

    let mut at = 0usize;
    let mut place = |kernel: &mut ShardedKernel<SceneMsg, SceneComponent>,
                     c: SceneComponent|
     -> Result<GlobalSlot, SceneError> {
        let slot = kernel.add(at % shards, c).map_err(SceneError::Kernel)?;
        at += 1;
        Ok(slot)
    };

    let group_params = GroupParams {
        disks: spec.disks_per_group,
        disk_overhead: spec.disk_overhead,
        disk_bytes_per_sec: spec.disk_bytes_per_sec,
        bb_capacity: spec.bb_capacity,
        bb_bytes_per_sec: spec.bb_bytes_per_sec,
        bb_drain_chunk: spec.bb_drain_chunk,
        bb_drain_period: spec.bb_drain_period,
        hop: spec.hop_latency,
    };
    let power_params = ScenePowerParams::paper_scene(spec.idle_timeout);
    for _ in 0..spec.groups {
        let power = ScenePower::new(power_params, spec.disks_per_group);
        place(
            &mut kernel,
            SceneComponent::Group(BurstBufferGroup::new(group_params, power)),
        )?;
    }
    for _ in 0..spec.links {
        place(
            &mut kernel,
            SceneComponent::Link(SharedLink::new(spec.link_bytes_per_sec, spec.hop_latency)),
        )?;
    }
    for c in &spec.clients {
        let link = GlobalSlot::from_index(link_base + c.link);
        place(
            &mut kernel,
            SceneComponent::Client(ClientProc::new(
                *c,
                spec.hop_latency,
                link,
                Arc::clone(&group_slots),
                scheduler_slot,
            )),
        )?;
    }
    if let Some(sched) = spec.schedule {
        place(
            &mut kernel,
            SceneComponent::Scheduler(GlobalScheduler::new(
                sched.classes,
                sched.slice,
                spec.hop_latency,
            )),
        )?;
    }
    Ok(kernel)
}

/// Jobs-invariant metrics of one scene run.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneResult {
    /// Scale factor of the spec.
    pub scale: f64,
    /// Component count.
    pub components: usize,
    /// Shard count the run used.
    pub shards: usize,
    /// Epoch window in microseconds.
    pub epoch_us: u64,
    /// Total kernel events (ticks + message deliveries).
    pub events: u64,
    /// Message deliveries.
    pub messages: u64,
    /// Non-empty epochs executed.
    pub epochs: u64,
    /// Timestamp of the last event.
    pub end: SimTime,
    /// Latest client completion time.
    pub makespan: SimTime,
    /// Number of clients (all finished, or the run errors).
    pub clients: usize,
    /// Client requests issued.
    pub requests: u64,
    /// Grants issued by the global scheduler.
    pub grants: u64,
    /// Reads served from disk banks.
    pub reads: u64,
    /// Writes absorbed by burst buffers.
    pub buffered_writes: u64,
    /// Writes that bypassed a full buffer.
    pub direct_writes: u64,
    /// Bytes read from disks.
    pub bytes_read: u64,
    /// Bytes written (buffered + direct).
    pub bytes_written: u64,
    /// Bytes drained from burst buffers to disks.
    pub bb_drained: u64,
    /// Requests forwarded by shared links.
    pub link_forwarded: u64,
    /// Total link busy time in microseconds.
    pub link_busy_us: u64,
    /// Worst queueing backlog seen at any link, in microseconds.
    pub link_peak_backlog_us: u64,
    /// Disk energy split by residency.
    pub energy: SceneEnergy,
    /// Disk spin-ups across all banks.
    pub spin_ups: u64,
    /// Disk spin-downs across all banks.
    pub spin_downs: u64,
    /// Requests served by disk banks (incl. drain chunks).
    pub disk_requests: u64,
    /// Order-sensitive event digest (worker-count invariant; depends on
    /// the shard partition).
    pub trace_hash: u64,
}

impl SceneResult {
    /// Canonical one-line JSON digest (`sdds-scale-digest-v1`) of every
    /// jobs-invariant field; byte-identical across worker counts.
    #[must_use]
    pub fn digest(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"sdds-scale-digest-v1\",\"scale\":{:.3},",
                "\"components\":{},\"shards\":{},\"epoch_us\":{},",
                "\"events\":{},\"messages\":{},\"epochs\":{},\"end_us\":{},",
                "\"makespan_us\":{},\"clients\":{},\"requests\":{},",
                "\"grants\":{},\"reads\":{},\"buffered_writes\":{},",
                "\"direct_writes\":{},\"bytes_read\":{},\"bytes_written\":{},",
                "\"bb_drained\":{},\"link_forwarded\":{},\"link_busy_us\":{},",
                "\"link_peak_backlog_us\":{},\"energy_j\":{:.6},",
                "\"active_j\":{:.6},\"idle_j\":{:.6},\"standby_j\":{:.6},",
                "\"spin_up_j\":{:.6},\"spin_ups\":{},\"spin_downs\":{},",
                "\"disk_requests\":{},\"trace_hash\":\"{:016x}\"}}"
            ),
            self.scale,
            self.components,
            self.shards,
            self.epoch_us,
            self.events,
            self.messages,
            self.epochs,
            self.end.as_micros(),
            self.makespan.as_micros(),
            self.clients,
            self.requests,
            self.grants,
            self.reads,
            self.buffered_writes,
            self.direct_writes,
            self.bytes_read,
            self.bytes_written,
            self.bb_drained,
            self.link_forwarded,
            self.link_busy_us,
            self.link_peak_backlog_us,
            self.energy.total(),
            self.energy.active_j,
            self.energy.idle_j,
            self.energy.standby_j,
            self.energy.spin_up_j,
            self.spin_ups,
            self.spin_downs,
            self.disk_requests,
            self.trace_hash,
        )
    }
}

/// Builds and runs `spec` on `shards` shards with `jobs` workers,
/// collecting the jobs-invariant [`SceneResult`].
pub fn run_scene(
    spec: &SceneSpec,
    policy: ShardPolicy,
    window: SimDuration,
    jobs: usize,
) -> Result<SceneResult, SceneError> {
    let shards = policy.resolve(spec.component_count());
    let mut kernel = build_scene(spec, shards, window)?;
    let stats = kernel.run(jobs, SimTime::MAX).map_err(SceneError::Kernel)?;
    collect_scene_result(kernel, spec, shards, window, stats)
}

/// Like [`run_scene`], but with the kernel's per-shard observer enabled:
/// additionally returns one [`ShardObs`] per shard (event logs in the
/// canonical partition-invariant key space plus aligned per-epoch
/// deltas) for barrier-stall and load-imbalance accounting. The
/// [`SceneResult`] is bitwise identical to the unobserved run.
pub fn run_scene_observed(
    spec: &SceneSpec,
    policy: ShardPolicy,
    window: SimDuration,
    jobs: usize,
) -> Result<(SceneResult, Vec<ShardObs>), SceneError> {
    let shards = policy.resolve(spec.component_count());
    let mut kernel = build_scene(spec, shards, window)?;
    kernel.enable_observer();
    let stats = kernel.run(jobs, SimTime::MAX).map_err(SceneError::Kernel)?;
    let obs = kernel.take_observations();
    let result = collect_scene_result(kernel, spec, shards, window, stats)?;
    Ok((result, obs))
}

/// Folds a finished kernel into the jobs-invariant [`SceneResult`].
fn collect_scene_result(
    kernel: ShardedKernel<SceneMsg, SceneComponent>,
    spec: &SceneSpec,
    shards: usize,
    window: SimDuration,
    stats: ShardRunStats,
) -> Result<SceneResult, SceneError> {
    let mut r = SceneResult {
        scale: spec.scale,
        components: kernel.component_count(),
        shards,
        epoch_us: window.as_micros(),
        events: stats.events,
        messages: stats.messages,
        epochs: stats.epochs,
        end: stats.end,
        makespan: SimTime::ZERO,
        clients: 0,
        requests: 0,
        grants: 0,
        reads: 0,
        buffered_writes: 0,
        direct_writes: 0,
        bytes_read: 0,
        bytes_written: 0,
        bb_drained: 0,
        link_forwarded: 0,
        link_busy_us: 0,
        link_peak_backlog_us: 0,
        energy: SceneEnergy::default(),
        spin_ups: 0,
        spin_downs: 0,
        disk_requests: 0,
        trace_hash: stats.trace_hash,
    };

    let mut unfinished = 0usize;
    // Global registration order keeps every floating-point accumulation
    // sequence fixed, independent of shard partition and worker count.
    for comp in kernel.into_components() {
        match comp {
            SceneComponent::Group(mut g) => {
                g.finish(stats.end);
                let e = g.power().energy();
                r.energy.active_j += e.active_j;
                r.energy.idle_j += e.idle_j;
                r.energy.standby_j += e.standby_j;
                r.energy.spin_up_j += e.spin_up_j;
                r.spin_ups += g.power().spin_ups;
                r.spin_downs += g.power().spin_downs;
                r.disk_requests += g.power().requests;
                r.reads += g.stats.reads;
                r.buffered_writes += g.stats.buffered_writes;
                r.direct_writes += g.stats.direct_writes;
                r.bytes_read += g.stats.bytes_read;
                r.bytes_written += g.stats.bytes_written;
                r.bb_drained += g.stats.bb_drained;
            }
            SceneComponent::Link(l) => {
                r.link_forwarded += l.stats.forwarded;
                r.link_busy_us += l.stats.busy_us;
                r.link_peak_backlog_us = r.link_peak_backlog_us.max(l.stats.peak_backlog_us);
            }
            SceneComponent::Client(c) => {
                r.clients += 1;
                r.requests += c.issued;
                match c.finished {
                    Some(t) => r.makespan = r.makespan.max(t),
                    None => unfinished += 1,
                }
            }
            SceneComponent::Scheduler(s) => {
                r.grants += s.grants;
            }
        }
    }
    if unfinished > 0 {
        return Err(SceneError::Stalled { unfinished });
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_workloads::scaled_scene;

    fn small_spec() -> SceneSpec {
        scaled_scene(0.25)
    }

    #[test]
    fn small_scene_runs_to_completion() {
        let spec = small_spec();
        let r = run_scene(&spec, ShardPolicy::Auto, spec.hop_latency, 1).unwrap();
        assert_eq!(r.clients, spec.clients.len());
        assert!(r.makespan > SimTime::ZERO);
        assert_eq!(r.requests, r.reads + r.buffered_writes + r.direct_writes);
        assert!(
            r.grants >= spec.clients.len() as u64,
            "schedule not exercised"
        );
        assert!(r.link_peak_backlog_us > 0, "no congestion at the links");
        assert!(r.bb_drained > 0, "burst buffer never drained");
        assert!(r.energy.total() > 0.0);
    }

    #[test]
    fn digests_are_jobs_invariant() {
        let spec = small_spec();
        let base = run_scene(&spec, ShardPolicy::Auto, spec.hop_latency, 1).unwrap();
        for jobs in [2usize, 4] {
            let r = run_scene(&spec, ShardPolicy::Auto, spec.hop_latency, jobs).unwrap();
            assert_eq!(r.digest(), base.digest(), "digest diverged at jobs={jobs}");
        }
    }

    #[test]
    fn metrics_are_partition_invariant() {
        let spec = small_spec();
        let one = run_scene(&spec, ShardPolicy::Fixed(1), spec.hop_latency, 1).unwrap();
        let many = run_scene(&spec, ShardPolicy::Fixed(7), spec.hop_latency, 2).unwrap();
        // Everything except the shard count and the partition-sensitive
        // trace hash must agree with the single-shard run.
        assert_eq!(one.events, many.events);
        assert_eq!(one.makespan, many.makespan);
        assert_eq!(one.end, many.end);
        assert_eq!(one.requests, many.requests);
        assert_eq!(one.grants, many.grants);
        assert_eq!(one.bytes_read, many.bytes_read);
        assert_eq!(one.bytes_written, many.bytes_written);
        assert_eq!(one.energy, many.energy);
    }

    #[test]
    fn observed_run_matches_unobserved_and_reconciles() {
        let spec = small_spec();
        let plain = run_scene(&spec, ShardPolicy::Fixed(5), spec.hop_latency, 2).unwrap();
        let (observed, obs) =
            run_scene_observed(&spec, ShardPolicy::Fixed(5), spec.hop_latency, 2).unwrap();
        assert_eq!(
            observed.digest(),
            plain.digest(),
            "observer perturbed the run"
        );
        assert_eq!(obs.len(), 5);
        let events: u64 = obs.iter().map(|o| o.events.len() as u64).sum();
        assert_eq!(events, observed.events);
        let epoch_events: u64 = obs.iter().flat_map(|o| &o.epochs).map(|d| d.events).sum();
        assert_eq!(epoch_events, observed.events);
        // The merged stream is partition-invariant: a 1-shard run yields
        // the identical canonical event sequence.
        let (_, obs_one) =
            run_scene_observed(&spec, ShardPolicy::Fixed(1), spec.hop_latency, 1).unwrap();
        assert_eq!(
            simkit::shard::merge_events(&obs),
            simkit::shard::merge_events(&obs_one)
        );
    }

    #[test]
    fn epoch_longer_than_hop_is_rejected() {
        let spec = small_spec();
        let window = spec.hop_latency + SimDuration::from_micros(1);
        match build_scene(&spec, 2, window) {
            Err(SceneError::BadEpoch { .. }) => {}
            other => panic!("expected BadEpoch, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn schedule_gates_bursts_into_slices() {
        // With the schedule on, grants equal client iterations; without
        // it, no grants exist and the makespan shrinks.
        let spec = small_spec();
        let gated = run_scene(&spec, ShardPolicy::Auto, spec.hop_latency, 1).unwrap();
        let mut free = spec.clone();
        free.schedule = None;
        let open = run_scene(&free, ShardPolicy::Auto, free.hop_latency, 1).unwrap();
        assert_eq!(open.grants, 0);
        assert!(gated.grants > 0);
        assert!(
            gated.makespan >= open.makespan,
            "schedule cannot speed clients up"
        );
    }
}
