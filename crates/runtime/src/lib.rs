//! The runtime data access scheduler (§III of the paper).
//!
//! The second half of the framework: a per-client "scheduler thread" that
//! performs data accesses according to the compiler's scheduling tables,
//! prefetching into a global buffer that all scheduler threads manage
//! collectively. Application reads first check the buffer; a hit returns
//! the data immediately and invalidates the entry; a miss issues a
//! blocking read. The scheduler only prefetches accesses scheduled
//! *earlier* than their original program points, stops fetching when the
//! buffer is full, and — for data produced by a remote process — checks
//! the producer's local time before touching the disk, so prefetched data
//! are always correct.
//!
//! [`Engine`] is the discrete-event execution engine that drives the
//! client processes (compute phases, original-point I/O) and scheduler
//! threads against the storage array from `sdds-storage`, producing the
//! end-to-end execution time and disk energy the paper's figures report.
//!
//! # Example
//!
//! ```
//! use sdds_compiler::ir::{IoDirection, Program};
//! use sdds_compiler::{analyze_slacks, SchedulerConfig, SlotGranularity};
//! use sdds_power::PolicyKind;
//! use sdds_runtime::{CompiledPlan, Engine, EngineConfig};
//! use sdds_storage::{FileId, StorageConfig};
//! use simkit::SimDuration;
//!
//! let mut p = Program::new("demo", 2);
//! let f = p.add_file(FileId(0), 2 * 1024 * 1024);
//! p.push_loop("i", 0, 7, |b| {
//!     b.io(IoDirection::Read, f, |e| e.term("i", 65_536).term("p", 8 * 65_536), 65_536);
//!     b.compute(SimDuration::from_millis(20));
//! });
//! let trace = p.trace(SlotGranularity::unit()).unwrap();
//! let storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
//! let accesses = analyze_slacks(&trace, &storage.layout).expect("consistent trace");
//! let table = SchedulerConfig::paper_defaults()
//!     .schedule(&accesses, &trace)
//!     .expect("valid scheduler configuration");
//!
//! // Run with the software scheme enabled.
//! let result = Engine::new(EngineConfig::paper_defaults(), storage)
//!     .expect("valid engine configuration")
//!     .run(&trace, Some(CompiledPlan::new(&accesses, &table)))
//!     .expect("consistent schedule");
//! assert!(result.exec_time.as_secs_f64() > 0.0);
//! assert!(result.energy_joules > 0.0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_debug_implementations)]

mod buffer;
mod engine;
mod error;
mod rebuild;
pub mod scene;
mod telemetry;

pub use buffer::{BufferStats, GlobalBuffer};
pub use engine::{CompiledPlan, Engine, EngineConfig, PrefetchStats, RunResult};
pub use error::EngineError;
pub use rebuild::{run_rebuild, RebuildError, RebuildParams, RebuildResult};
pub use scene::{
    build_scene, run_scene, run_scene_observed, ClientProc, GlobalScheduler, SceneComponent,
    SceneError, SceneResult, ShardPolicy,
};
pub use telemetry::{DiskSummary, TelemetryReport};
