//! Typed errors for the execution engine.

use std::error::Error;
use std::fmt;

use sdds_storage::{AccessId, StorageError};

/// Errors surfaced by [`Engine`](crate::Engine) construction and runs.
///
/// Configuration problems ([`EngineError::Storage`],
/// [`EngineError::ZeroBuffer`], [`EngineError::ScheduleMismatch`]) are
/// reported before the simulation starts; the remaining variants turn
/// internal bookkeeping invariants — previously debug assertions — into
/// hard errors so a corrupted run can never silently produce numbers.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The storage configuration was rejected while building the array.
    Storage(StorageError),
    /// The engine's global prefetch buffer has zero capacity.
    ZeroBuffer,
    /// The schedule passed to [`Engine::run`](crate::Engine::run) was
    /// compiled for a different trace.
    ScheduleMismatch {
        /// Which quantity disagrees (`"process count"` or
        /// `"scheduled access count"`).
        what: &'static str,
        /// The value on the schedule side.
        schedule: usize,
        /// The value on the trace side.
        trace: usize,
    },
    /// The storage system reported a completion for an access the engine
    /// never submitted.
    UntrackedCompletion {
        /// The unknown access handle.
        access: AccessId,
    },
    /// Ticket bookkeeping lost track of an in-flight submission.
    TicketOutOfSync {
        /// The ticket with no recorded state.
        ticket: u64,
    },
    /// The run stalled: processes are still blocked but neither the
    /// submission queue nor the storage system has a pending event.
    Deadlock {
        /// How many processes were blocked at the stall.
        blocked: usize,
    },
    /// A process reached the end of the run without a finish time.
    Unfinished {
        /// The offending process rank.
        proc: usize,
    },
    /// An internal engine invariant was violated.
    Internal {
        /// A short description of the broken invariant.
        what: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage configuration rejected: {e}"),
            EngineError::ZeroBuffer => {
                write!(f, "engine buffer capacity must be positive")
            }
            EngineError::ScheduleMismatch {
                what,
                schedule,
                trace,
            } => write!(
                f,
                "schedule and trace disagree on {what}: schedule has {schedule}, trace has {trace}"
            ),
            EngineError::UntrackedCompletion { access } => {
                write!(f, "storage completion for untracked access {}", access.0)
            }
            EngineError::TicketOutOfSync { ticket } => {
                write!(f, "ticket {ticket} bookkeeping is out of sync")
            }
            EngineError::Deadlock { blocked } => write!(
                f,
                "engine deadlock: {blocked} process(es) blocked with no pending storage events"
            ),
            EngineError::Unfinished { proc } => {
                write!(f, "process {proc} never reached its finish point")
            }
            EngineError::Internal { what } => write!(f, "engine invariant violated: {what}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::Deadlock { blocked: 3 }.to_string(),
            "engine deadlock: 3 process(es) blocked with no pending storage events"
        );
        assert_eq!(
            EngineError::ScheduleMismatch {
                what: "process count",
                schedule: 4,
                trace: 2
            }
            .to_string(),
            "schedule and trace disagree on process count: schedule has 4, trace has 2"
        );
        assert_eq!(
            EngineError::UntrackedCompletion {
                access: AccessId(7)
            }
            .to_string(),
            "storage completion for untracked access 7"
        );
    }

    #[test]
    fn storage_source_is_chained() {
        let err = EngineError::from(StorageError::ZeroStripe);
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("storage configuration rejected"));
    }
}
