//! The global client-side buffer collectively managed by the scheduler
//! threads.
//!
//! Prefetched data live here between the scheduler thread's early fetch
//! and the application's original read point. Per §III:
//!
//! * a hit returns the data and *invalidates* the entry, making room for
//!   subsequent prefetches;
//! * when the buffer is full the scheduler threads stop fetching.
//!
//! Capacity is reserved at issue time (an in-flight fetch occupies its
//! bytes) so the threads cannot collectively oversubscribe the buffer.

use sdds_storage::FileId;
use simkit::hash::FxHashMap;

/// A buffered byte range: the unit the scheduler prefetches and the
/// application consumes.
pub type RangeKey = (FileId, u64, u64);

/// State of one buffered range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// The fetch is in flight.
    InFlight,
    /// Data present and ready to be consumed.
    Ready,
}

/// Buffer occupancy and traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Prefetches admitted into the buffer.
    pub admitted: u64,
    /// Prefetches rejected because the buffer was full.
    pub rejected_full: u64,
    /// Application reads served from the buffer (ready data).
    pub hits: u64,
    /// Application reads that found their fetch still in flight.
    pub hits_in_flight: u64,
    /// Application reads that found nothing buffered.
    pub misses: u64,
    /// High-water mark of used bytes.
    pub peak_used: u64,
}

/// The collectively-managed prefetch buffer.
///
/// # Example
///
/// ```
/// use sdds_runtime::GlobalBuffer;
/// use sdds_storage::FileId;
///
/// let mut buf = GlobalBuffer::new(1 << 20);
/// let key = (FileId(0), 0, 65_536);
/// assert!(buf.reserve(key));
/// buf.fill(&key);
/// assert!(buf.consume(&key));
/// assert_eq!(buf.used(), 0); // consume invalidates
/// ```
#[derive(Debug)]
pub struct GlobalBuffer {
    capacity: u64,
    used: u64,
    entries: FxHashMap<RangeKey, EntryState>,
    stats: BufferStats,
}

impl GlobalBuffer {
    /// Creates a buffer of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        GlobalBuffer {
            capacity,
            used: 0,
            entries: FxHashMap::default(),
            stats: BufferStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved or filled.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Returns `true` if `len` more bytes would fit.
    pub fn has_room(&self, len: u64) -> bool {
        self.used + len <= self.capacity
    }

    /// Reserves room for a prefetch of `key`. Returns `false` (and counts
    /// a rejection when due to capacity) if the buffer is full or the
    /// range is already buffered.
    pub fn reserve(&mut self, key: RangeKey) -> bool {
        let len = key.2;
        if self.entries.contains_key(&key) {
            // Already buffered or in flight; no second fetch needed.
            return false;
        }
        if !self.has_room(len) {
            self.stats.rejected_full += 1;
            return false;
        }
        self.used += len;
        self.stats.peak_used = self.stats.peak_used.max(self.used);
        self.entries.insert(key, EntryState::InFlight);
        self.stats.admitted += 1;
        true
    }

    /// Marks an in-flight range as ready. Returns `false` if the range is
    /// not tracked (e.g. it was cancelled).
    pub fn fill(&mut self, key: &RangeKey) -> bool {
        match self.entries.get_mut(key) {
            Some(state) => {
                *state = EntryState::Ready;
                true
            }
            None => false,
        }
    }

    /// Returns `true` if `key` is buffered (ready or in flight).
    pub fn contains(&self, key: &RangeKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Looks up `key` for an application read *without* consuming it,
    /// counting hit/miss statistics.
    pub fn lookup(&mut self, key: &RangeKey) -> Option<EntryState> {
        match self.entries.get(key) {
            Some(EntryState::Ready) => {
                self.stats.hits += 1;
                Some(EntryState::Ready)
            }
            Some(EntryState::InFlight) => {
                self.stats.hits_in_flight += 1;
                Some(EntryState::InFlight)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Consumes (and invalidates) a ready entry, freeing its bytes.
    /// Returns `false` if the entry was absent or still in flight.
    pub fn consume(&mut self, key: &RangeKey) -> bool {
        match self.entries.get(key) {
            Some(EntryState::Ready) => {
                self.entries.remove(key);
                self.used -= key.2;
                true
            }
            _ => false,
        }
    }

    /// Drops an in-flight reservation (fetch abandoned).
    pub fn cancel(&mut self, key: &RangeKey) {
        if let Some(EntryState::InFlight) = self.entries.get(key) {
            self.entries.remove(key);
            self.used -= key.2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64, len: u64) -> RangeKey {
        (FileId(0), i * len, len)
    }

    #[test]
    fn reserve_fill_consume_cycle() {
        let mut b = GlobalBuffer::new(1000);
        let k = key(0, 400);
        assert!(b.reserve(k));
        assert_eq!(b.used(), 400);
        assert_eq!(b.lookup(&k), Some(EntryState::InFlight));
        assert!(b.fill(&k));
        assert_eq!(b.lookup(&k), Some(EntryState::Ready));
        assert!(b.consume(&k));
        assert_eq!(b.used(), 0);
        assert_eq!(b.lookup(&k), None);
        let s = b.stats();
        assert_eq!(s.admitted, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.hits_in_flight, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn full_buffer_rejects() {
        let mut b = GlobalBuffer::new(1000);
        assert!(b.reserve(key(0, 600)));
        assert!(!b.reserve(key(1, 600)));
        assert_eq!(b.stats().rejected_full, 1);
        // Consuming frees room again.
        b.fill(&key(0, 600));
        assert!(b.consume(&key(0, 600)));
        assert!(b.reserve(key(1, 600)));
    }

    #[test]
    fn duplicate_reservation_refused_without_counting_full() {
        let mut b = GlobalBuffer::new(1000);
        assert!(b.reserve(key(0, 100)));
        assert!(!b.reserve(key(0, 100)));
        assert_eq!(b.stats().rejected_full, 0);
        assert_eq!(b.used(), 100);
    }

    #[test]
    fn consume_requires_ready() {
        let mut b = GlobalBuffer::new(1000);
        let k = key(0, 100);
        b.reserve(k);
        assert!(!b.consume(&k)); // still in flight
        b.fill(&k);
        assert!(b.consume(&k));
        assert!(!b.consume(&k)); // already gone
    }

    #[test]
    fn cancel_frees_reservation_but_not_ready_data() {
        let mut b = GlobalBuffer::new(500);
        b.reserve(key(0, 500));
        b.cancel(&key(0, 500));
        assert_eq!(b.used(), 0);
        assert!(b.reserve(key(1, 500)));
        b.fill(&key(1, 500));
        b.cancel(&key(1, 500)); // ready data is not cancelled
        assert!(b.consume(&key(1, 500)));
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut b = GlobalBuffer::new(1000);
        b.reserve(key(0, 300));
        b.reserve(key(1, 500));
        b.fill(&key(0, 300));
        b.consume(&key(0, 300));
        assert_eq!(b.stats().peak_used, 800);
        assert_eq!(b.used(), 500);
    }

    #[test]
    fn fill_unknown_key_is_false() {
        let mut b = GlobalBuffer::new(100);
        assert!(!b.fill(&key(0, 50)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = GlobalBuffer::new(0);
    }
}
