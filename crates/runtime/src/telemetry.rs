//! Per-run telemetry: the merged trace-event stream, the populated
//! metrics registry, and per-disk energy/residency summaries.
//!
//! A [`TelemetryReport`] is attached to
//! [`RunResult`](crate::RunResult) only when
//! [`Engine::enable_telemetry`](crate::Engine::enable_telemetry) was
//! called before the run; the default path carries `None` and records
//! nothing.

use sdds_disk::DiskCounters;
use simkit::telemetry::{MetricsRegistry, TraceEvent};
use simkit::{SimDuration, SimTime};

/// Time-in-state and energy-by-state breakdown for one disk, plus its
/// lifetime power-event counters.
#[derive(Debug, Clone)]
pub struct DiskSummary {
    /// I/O node index.
    pub node: usize,
    /// Disk index within the node's array.
    pub disk: usize,
    /// Per-state rows `(state label, residency seconds, joules)` in
    /// deterministic (sorted-by-label) order.
    pub states: Vec<(&'static str, f64, f64)>,
    /// Lifetime counters of power-relevant events.
    pub counters: DiskCounters,
    /// Total energy across all states, in joules.
    pub total_joules: f64,
}

/// Everything the telemetry layer observed during one run.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// All trace events, merged across layers and sorted by simulated
    /// time (stable: same-time events keep their per-layer order).
    pub events: Vec<TraceEvent>,
    /// Named counters, gauges, summaries and histograms from every
    /// instrumented layer (`<crate>.<object>.<metric>` naming).
    pub metrics: MetricsRegistry,
    /// One summary per disk, in `(node, disk)` order.
    pub disks: Vec<DiskSummary>,
    /// Simulated end time of the run; closes open residency spans in
    /// the Chrome export.
    pub end: SimTime,
}

impl TelemetryReport {
    /// Serializes the event stream as JSON Lines, one event per line.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Renders the event stream in Chrome `trace_event` format, viewable
    /// in `chrome://tracing` or Perfetto.
    pub fn chrome_trace(&self) -> String {
        simkit::telemetry::chrome_trace(&self.events, self.end)
    }

    /// Sum of every disk's total energy, in joules. Matches the run's
    /// `energy_joules` to floating-point accumulation order.
    pub fn summary_joules(&self) -> f64 {
        self.disks.iter().map(|d| d.total_joules).sum()
    }
}

/// Bucket edges for the per-request latency histogram: sub-millisecond
/// cache service up through multi-second spin-up stalls.
pub(crate) fn request_latency_edges() -> Vec<SimDuration> {
    [
        1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000,
    ]
    .into_iter()
    .map(SimDuration::from_millis)
    .collect()
}
