//! Replicated object-store scenario: straggler/bad-sector-aware replica
//! routing and background rebuild of a failed member onto a hot spare.
//!
//! The compiled-pipeline engine of [`crate::Engine`] models the paper's
//! single-application loop nests; this module models the *datacenter*
//! shape the paper's §VI sizing argument extrapolates to — a replicated
//! object store where the decision layer must weigh disk energy against
//! tail latency while a reconstruction competes for the same spindles.
//!
//! Three pieces ride the shared [`simkit::kernel::Calendar`]:
//!
//! * a client-side **replica router** that scores the members of each
//!   object's replica set by an observed response-time EWMA plus a
//!   remap penalty for disks with bad sectors, skips members inside
//!   crash windows, and steers reads away from stragglers
//!   ([`RebuildParams::routing`] off = always read the primary);
//! * a **rebuild engine** that, after a whole-disk failure, promotes the
//!   hot spare and copies the lost replicas chunk-by-chunk as
//!   rate-limited calendar events, pinning its source and target
//!   spinning via [`ScenePower::hold`] so the spin-down policy never
//!   powers a disk off mid-reconstruction;
//! * the **energy accounting** of [`ScenePower`], with active joules
//!   split between foreground and rebuild traffic by
//!   [`sdds_power::scene::ActiveTag`], so the report's split reconciles
//!   against the headline exactly.
//!
//! Everything is a pure function of [`RebuildParams`]: the same params
//! produce bitwise-identical [`RebuildResult`]s (pinned by the
//! `route_digest` over every routing decision), independent of the
//! worker-pool size.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::hash::Hasher;

use sdds_power::scene::{ActiveTag, SceneEnergy, ScenePower, ScenePowerParams};
use sdds_storage::{Placement, PlacementParams, StorageError};
use sdds_workloads::ObjectStoreSpec;
use simkit::fault::{DiskFaultProfile, FaultPlan, FaultSpec, FaultSpecError};
use simkit::hash::FxHasher;
use simkit::kernel::{ArbitrationPolicy, Calendar};
use simkit::telemetry::{TraceEvent, TraceSink};
use simkit::{DetRng, SimDuration, SimTime};

/// Fixed per-request positioning overhead (seek + rotation), microseconds.
const SEEK_OVERHEAD_US: u64 = 2_000;
/// Nominal sequential bandwidth used to turn bytes into service time.
const BYTES_PER_SEC: u64 = 100 * 1024 * 1024;
/// Extra service microseconds per known-bad sector on the disk — the
/// expected cost of the firmware remap indirection every request risks.
const REMAP_PENALTY_US: u64 = 150;
/// EWMA weight: `ewma' = (7 * ewma + observation) / 8`.
const EWMA_OLD_WEIGHT: u64 = 7;

/// Everything the scenario depends on. Two runs with equal params are
/// bitwise identical.
#[derive(Debug, Clone, PartialEq)]
pub struct RebuildParams {
    /// The GET/PUT request stream and object table.
    pub workload: ObjectStoreSpec,
    /// Replica placement geometry (data disks, spares, replica count).
    pub placement: PlacementParams,
    /// Fault shaping (stragglers, bad sectors, crash windows); `None`
    /// runs a fault-free array.
    pub scenario: Option<FaultSpec>,
    /// Whether one data disk fails at [`RebuildParams::fail_at`] and is
    /// rebuilt onto the spare. The fault-free twin turns this off.
    pub inject_failure: bool,
    /// When the failed member dies (ignored unless `inject_failure`).
    pub fail_at: SimTime,
    /// Bytes copied per rebuild calendar tick.
    pub chunk_kib: u64,
    /// Gap between rebuild ticks — the rate limit that keeps
    /// reconstruction from starving foreground traffic.
    pub rebuild_period: SimDuration,
    /// `true` scores replicas by observed latency; `false` always reads
    /// the primary (the unrouted twin).
    pub routing: bool,
    /// Power model of every disk in the array.
    pub power: ScenePowerParams,
}

impl RebuildParams {
    /// The datacenter-shaped default the `repro rebuild` experiment
    /// runs: 12 data disks + 1 spare, 3-way replication, a read-heavy
    /// zipfian store, failure at 30 s, 1 MiB chunks every 200 ms.
    pub fn paper_default(seed: u64, scenario: Option<FaultSpec>) -> Self {
        RebuildParams {
            workload: ObjectStoreSpec::paper_default(seed),
            placement: PlacementParams {
                data_disks: 12,
                spares: 1,
                replicas: 3,
                disk_capacity: 256 * 1024 * 1024,
                seed,
            },
            scenario,
            inject_failure: true,
            fail_at: SimTime::from_micros(30_000_000),
            chunk_kib: 1024,
            rebuild_period: SimDuration::from_millis(200),
            routing: true,
            power: ScenePowerParams::paper_scene(SimDuration::from_secs(5)),
        }
    }

    /// A small, fast preset for tests.
    pub fn small(seed: u64, scenario: Option<FaultSpec>) -> Self {
        RebuildParams {
            workload: ObjectStoreSpec::small(seed),
            placement: PlacementParams {
                data_disks: 6,
                spares: 1,
                replicas: 2,
                disk_capacity: 64 * 1024 * 1024,
                seed,
            },
            scenario,
            inject_failure: true,
            fail_at: SimTime::from_micros(4_000_000),
            chunk_kib: 256,
            rebuild_period: SimDuration::from_millis(100),
            routing: true,
            power: ScenePowerParams::paper_scene(SimDuration::from_secs(2)),
        }
    }
}

/// Errors rejected before the scenario starts.
#[derive(Debug)]
#[non_exhaustive]
pub enum RebuildError {
    /// A scenario field is out of range.
    Config {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The placement geometry was rejected or could not fit the objects.
    Placement(StorageError),
    /// The fault spec was rejected.
    Fault(FaultSpecError),
}

impl fmt::Display for RebuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebuildError::Config { field, reason } => {
                write!(f, "rebuild scenario: {field} {reason}")
            }
            RebuildError::Placement(e) => write!(f, "rebuild scenario: {e}"),
            RebuildError::Fault(e) => write!(f, "rebuild scenario: {e}"),
        }
    }
}

impl Error for RebuildError {}

impl From<StorageError> for RebuildError {
    fn from(e: StorageError) -> Self {
        RebuildError::Placement(e)
    }
}

/// Headline numbers of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct RebuildResult {
    /// GET requests served.
    pub reads: u64,
    /// PUT requests served (each writes every replica).
    pub writes: u64,
    /// Foreground bytes read (one replica per GET).
    pub bytes_read: u64,
    /// Foreground bytes written (every replica of every PUT).
    pub bytes_written: u64,
    /// Median GET response time, microseconds.
    pub read_p50_us: u64,
    /// 99th-percentile GET response time, microseconds.
    pub read_p99_us: u64,
    /// 99.9th-percentile GET response time, microseconds.
    pub read_p999_us: u64,
    /// Total GET microseconds spent queued behind earlier work.
    pub queue_us: u64,
    /// Total GET microseconds spent waiting on spin-ups.
    pub spin_up_wait_us: u64,
    /// Total GET microseconds of pure service.
    pub service_us: u64,
    /// Total GET microseconds deferred behind crash windows.
    pub crash_wait_us: u64,
    /// Total GET response microseconds. Identity:
    /// `response == queue + spin_up_wait + service + crash_wait`.
    pub response_us: u64,
    /// Reads that hit a transient error and paid one in-place retry.
    pub transient_retries: u64,
    /// Requests deferred because every candidate replica was crashed.
    pub deferred: u64,
    /// Replica-set members passed over by read routing decisions.
    pub routed_skips: u64,
    /// The member that failed (when a failure was injected).
    pub failed_disk: Option<u32>,
    /// The spare it was rebuilt onto.
    pub spare_disk: Option<u32>,
    /// Bytes copied by the rebuild engine.
    pub rebuild_bytes: u64,
    /// Rebuild chunks copied.
    pub rebuild_chunks: u64,
    /// Rebuild ticks skipped because source or spare was crashed.
    pub rebuild_skipped_ticks: u64,
    /// When redundancy was fully restored, microseconds since start.
    pub rebuild_done_us: Option<u64>,
    /// Energy totals; `energy.active_j` is exactly
    /// `foreground_active_j + rebuild_active_j`.
    pub energy: SceneEnergy,
    /// Active joules attributed to foreground traffic.
    pub foreground_active_j: f64,
    /// Active joules attributed to rebuild traffic.
    pub rebuild_active_j: f64,
    /// Spin-down events across the array.
    pub spin_downs: u64,
    /// Spin-up events across the array.
    pub spin_ups: u64,
    /// FxHash fold over every read's `(index, chosen disk)` — pins the
    /// exact routing sequence for byte-determinism checks.
    pub route_digest: u64,
    /// Scenario end (last completion), microseconds since start.
    pub end_us: u64,
}

/// Client-side replica scorer. Scores are integer microseconds so the
/// comparison is exact and platform-independent.
struct Router {
    /// Observed response-time EWMA per disk, seeded with the nominal
    /// service time of a mid-sized object.
    ewma_us: Vec<u64>,
    /// Static remap penalty per disk (bad-sector count based).
    penalty_us: Vec<u64>,
    routing: bool,
}

impl Router {
    fn observe(&mut self, disk: usize, resp_us: u64) {
        let e = self.ewma_us[disk];
        self.ewma_us[disk] = (e * EWMA_OLD_WEIGHT + resp_us) / (EWMA_OLD_WEIGHT + 1);
    }

    fn score(&self, disk: usize) -> u64 {
        self.ewma_us[disk].saturating_add(self.penalty_us[disk])
    }

    /// Picks from non-empty `candidates` (replica order, primary first):
    /// lowest score when routing, the primary otherwise. `extra_us`
    /// charges per-candidate situational cost — the spin-up a request
    /// would pay on a powered-down member. Ties keep the earliest
    /// candidate, so the choice is deterministic.
    fn choose(&self, candidates: &[usize], extra_us: impl Fn(usize) -> u64) -> usize {
        let mut best = candidates[0];
        if self.routing {
            let mut best_score = self.score(best).saturating_add(extra_us(best));
            for &c in &candidates[1..] {
                let score = self.score(c).saturating_add(extra_us(c));
                if score < best_score {
                    best = c;
                    best_score = score;
                }
            }
        }
        best
    }
}

/// Service time for `bytes` on a disk with the given fault profile:
/// seek + transfer + remap penalty, stretched by the straggler factor.
fn work_us(bytes: u64, profile: &DiskFaultProfile) -> u64 {
    let nominal = SEEK_OVERHEAD_US
        + bytes * 1_000_000 / BYTES_PER_SEC
        + REMAP_PENALTY_US * profile.bad_sectors.len() as u64;
    if profile.slow_factor > 1.0 {
        (nominal as f64 * profile.slow_factor).round() as u64
    } else {
        nominal
    }
}

fn percentile(sorted_us: &[u64], permille: u64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = (sorted_us.len() as u64 - 1) * permille / 1000;
    sorted_us[idx as usize]
}

fn validate(params: &RebuildParams) -> Result<(), RebuildError> {
    params.placement.validate()?;
    if let Some(spec) = &params.scenario {
        spec.validate().map_err(RebuildError::Fault)?;
    }
    if params.inject_failure {
        if params.placement.spares == 0 {
            return Err(RebuildError::Config {
                field: "spares",
                reason: "must be >= 1 when a failure is injected",
            });
        }
        if params.chunk_kib == 0 {
            return Err(RebuildError::Config {
                field: "chunk_kib",
                reason: "must be positive",
            });
        }
        if params.rebuild_period.is_zero() {
            return Err(RebuildError::Config {
                field: "rebuild_period",
                reason: "must be positive",
            });
        }
        if params.placement.replicas < 2 {
            return Err(RebuildError::Config {
                field: "replicas",
                reason: "must be >= 2 to survive a member failure",
            });
        }
    }
    Ok(())
}

/// Runs the scenario. Pass a [`TraceSink`] to capture the
/// `replica-route` / `rebuild-chunk` event stream.
///
/// # Errors
///
/// Returns [`RebuildError`] when the placement geometry, fault spec or
/// rebuild configuration is rejected; the simulation itself cannot fail.
#[allow(clippy::too_many_lines)]
pub fn run_rebuild(
    params: &RebuildParams,
    mut sink: Option<&mut TraceSink>,
) -> Result<RebuildResult, RebuildError> {
    validate(params)?;

    let objects = params.workload.object_table();
    let requests = params.workload.requests();
    let mut placement = Placement::build(&params.placement, &objects)?;
    let total_disks = placement.disk_count();

    // Expand the fault scenario against a flat pool: one node holding
    // every disk, so profile `d` matches placement disk `d`.
    let sectors = params.placement.disk_capacity / 512;
    let profiles: Vec<DiskFaultProfile> = match &params.scenario {
        Some(spec) => FaultPlan::generate(spec, 1, total_disks, sectors)
            .node(0)
            .to_vec(),
        None => vec![DiskFaultProfile::none(); total_disks],
    };
    let mut fault_rngs: Vec<DetRng> = profiles.iter().map(|p| DetRng::new(p.rng_seed)).collect();

    let mut scene = ScenePower::new(params.power, total_disks);
    let nominal_bytes = (params.workload.min_kib + params.workload.max_kib) / 2 * 1024;
    let mut router = Router {
        ewma_us: vec![work_us(nominal_bytes, &DiskFaultProfile::none()); total_disks],
        penalty_us: profiles
            .iter()
            .map(|p| REMAP_PENALTY_US * p.bad_sectors.len() as u64)
            .collect(),
        routing: params.routing,
    };

    // The member that dies: the data disk carrying the most replica
    // bytes (ties to the lowest index) — the worst case for rebuild.
    let failed: Option<usize> = params.inject_failure.then(|| {
        (0..params.placement.data_disks)
            .max_by_key(|&d| (placement.used_bytes(d), std::cmp::Reverse(d)))
            .unwrap_or(0)
    });

    // Mutable replica view: `sets[obj]` starts as the placement and has
    // the failed member swapped for the spare once its copy is valid.
    let mut sets: Vec<Vec<usize>> = (0..objects.len())
        .map(|o| placement.replicas_of(o).to_vec())
        .collect();
    // While degraded, the object's spare copy is not yet readable.
    let mut degraded = vec![false; objects.len()];

    let mut cal = Calendar::new(ArbitrationPolicy::Deterministic);
    let completions_slot = cal.register();
    let failure_slot = cal.register();
    let arrivals_slot = cal.register();
    let rebuild_slot = cal.register();

    // Pending completions, ordered by (time, insertion seq) so
    // same-instant completions apply in issue order.
    let mut completions: BTreeMap<(SimTime, u64), (usize, u64)> = BTreeMap::new();
    let mut completion_seq = 0u64;

    if params.inject_failure {
        cal.retarget(failure_slot, Some(params.fail_at));
    }
    let mut next_req = 0usize;
    if let Some(r) = requests.first() {
        cal.retarget(arrivals_slot, Some(r.at));
    }

    // Rebuild engine state.
    let mut spare: Option<usize> = None;
    let mut pending: Vec<usize> = Vec::new();
    let mut pending_pos = 0usize;
    let mut object_done_bytes = 0u64;
    let chunk_bytes = params.chunk_kib * 1024;

    // Counters.
    let mut out = RebuildResult {
        reads: 0,
        writes: 0,
        bytes_read: 0,
        bytes_written: 0,
        read_p50_us: 0,
        read_p99_us: 0,
        read_p999_us: 0,
        queue_us: 0,
        spin_up_wait_us: 0,
        service_us: 0,
        crash_wait_us: 0,
        response_us: 0,
        transient_retries: 0,
        deferred: 0,
        routed_skips: 0,
        failed_disk: failed.map(|d| d as u32),
        spare_disk: None,
        rebuild_bytes: 0,
        rebuild_chunks: 0,
        rebuild_skipped_ticks: 0,
        rebuild_done_us: None,
        energy: SceneEnergy::default(),
        foreground_active_j: 0.0,
        rebuild_active_j: 0.0,
        spin_downs: 0,
        spin_ups: 0,
        route_digest: 0,
        end_us: 0,
    };
    let mut read_resp_us: Vec<u64> = Vec::new();
    let mut digest = FxHasher::default();
    let mut end = SimTime::ZERO;

    while let Some((t, slot)) = cal.pop() {
        if slot == completions_slot {
            // Apply the earliest pending completion; same-instant
            // completions re-arm the slot at the same time.
            if let Some((&key, &(disk, resp_us))) = completions.iter().next() {
                completions.remove(&key);
                router.observe(disk, resp_us);
            }
            cal.retarget(completions_slot, completions.keys().next().map(|k| k.0));
        } else if slot == failure_slot {
            // The member dies: retire it from the power model, promote
            // the spare, and queue every replica it held for rebuild.
            let dead = match failed {
                Some(d) => d,
                None => continue,
            };
            scene.retire(dead, t);
            let promoted = match placement.promote_spare() {
                Some(s) => s,
                None => continue, // validated: spares >= 1
            };
            spare = Some(promoted);
            out.spare_disk = Some(promoted as u32);
            pending = placement.objects_on(dead).to_vec();
            for &obj in &pending {
                degraded[obj] = true;
                for r in &mut sets[obj] {
                    if *r == dead {
                        *r = promoted;
                    }
                }
            }
            cal.retarget(rebuild_slot, Some(t + params.rebuild_period));
        } else if slot == arrivals_slot {
            let req = requests[next_req];
            let req_index = next_req as u64;
            next_req += 1;
            cal.retarget(arrivals_slot, requests.get(next_req).map(|r| r.at));

            let obj = req.object;
            let bytes = objects[obj].bytes;
            if req.read {
                // Candidates in replica order; the spare is unreadable
                // while the object's copy is still being reconstructed.
                let mut alive: Vec<usize> = Vec::new();
                let mut crashed: Vec<(SimTime, usize)> = Vec::new();
                let mut skipped = 0u32;
                for &d in &sets[obj] {
                    if Some(d) == spare && degraded[obj] {
                        skipped += 1;
                        continue;
                    }
                    match profiles[d].crashed_at(t) {
                        None => alive.push(d),
                        Some(recovery) => {
                            skipped += 1;
                            crashed.push((recovery, d));
                        }
                    }
                }
                let (chosen, serve_at) = if alive.is_empty() {
                    // Every member is down: wait for the earliest
                    // recovery. `crashed` is non-empty because replica
                    // sets are never empty.
                    out.deferred += 1;
                    let &(recovery, d) = crashed
                        .iter()
                        .min_by_key(|&&(rec, d)| (rec, d))
                        .unwrap_or(&(t, sets[obj][0]));
                    (d, recovery)
                } else {
                    // The router sees each member's live state
                    // (software-directed): queue depth, an in-flight
                    // spin-up, or the wake a powered-down member would
                    // pay — all charged up front.
                    let chosen = router.choose(&alive, |d| scene.arrival_cost(d, t).as_micros());
                    skipped += alive.len() as u32 - 1;
                    (chosen, t)
                };
                let mut work = work_us(bytes, &profiles[chosen]);
                if fault_rngs[chosen].chance(profiles[chosen].transient_rate) {
                    out.transient_retries += 1;
                    work *= 2; // one in-place retry
                }
                let o = scene.serve_traced(chosen, serve_at, SimDuration::from_micros(work));
                let resp = o.done.saturating_since(t);
                let crash_wait = serve_at.saturating_since(t);
                out.reads += 1;
                out.bytes_read += bytes;
                out.queue_us += o.queue.as_micros();
                out.spin_up_wait_us += o.spin_up.as_micros();
                out.service_us += o.service.as_micros();
                out.crash_wait_us += crash_wait.as_micros();
                out.response_us += resp.as_micros();
                out.routed_skips += u64::from(skipped);
                read_resp_us.push(resp.as_micros());
                digest.write_u64(req_index);
                digest.write_u64(chosen as u64);
                end = end.max(o.done);
                // The EWMA learns intrinsic member speed (pure service,
                // straggler-stretched); queueing and spin state are
                // charged live by `arrival_cost` at decision time.
                completions.insert((o.done, completion_seq), (chosen, o.service.as_micros()));
                completion_seq += 1;
                cal.retarget(completions_slot, completions.keys().next().map(|k| k.0));
                if let Some(s) = sink.as_deref_mut() {
                    s.record(TraceEvent::ReplicaRoute {
                        at: t,
                        object: obj as u64,
                        chosen: chosen as u32,
                        skipped,
                    });
                }
            } else {
                // A PUT overwrites every replica; the copy that lands on
                // the spare is fresh data, so the object leaves the
                // rebuild queue.
                out.writes += 1;
                for &d in &sets[obj] {
                    let serve_at = match profiles[d].crashed_at(t) {
                        None => t,
                        Some(recovery) => {
                            out.deferred += 1;
                            recovery
                        }
                    };
                    let work = work_us(bytes, &profiles[d]);
                    let o = scene.serve_traced(d, serve_at, SimDuration::from_micros(work));
                    out.bytes_written += bytes;
                    end = end.max(o.done);
                    completions.insert((o.done, completion_seq), (d, o.service.as_micros()));
                    completion_seq += 1;
                }
                cal.retarget(completions_slot, completions.keys().next().map(|k| k.0));
                if degraded[obj] {
                    degraded[obj] = false;
                }
            }
        } else if slot == rebuild_slot {
            // Skip objects already restored (e.g. by a full overwrite).
            while pending_pos < pending.len() && !degraded[pending[pending_pos]] {
                pending_pos += 1;
                object_done_bytes = 0;
            }
            if pending_pos >= pending.len() {
                out.rebuild_done_us = Some(t.as_micros());
                end = end.max(t);
                continue; // slot left unarmed: rebuild complete
            }
            let obj = pending[pending_pos];
            let target = match spare {
                Some(s) => s,
                None => continue,
            };
            // Source: routed choice among readable survivors.
            let alive: Vec<usize> = sets[obj]
                .iter()
                .copied()
                .filter(|&d| d != target && profiles[d].crashed_at(t).is_none())
                .collect();
            if alive.is_empty() || profiles[target].crashed_at(t).is_some() {
                out.rebuild_skipped_ticks += 1;
                cal.retarget(rebuild_slot, Some(t + params.rebuild_period));
                continue;
            }
            let source = router.choose(&alive, |d| scene.arrival_cost(d, t).as_micros());
            let remaining = objects[obj].bytes - object_done_bytes;
            let chunk = remaining.min(chunk_bytes);

            scene.set_active_tag(ActiveTag::Rebuild);
            let read_done = scene.serve_traced(
                source,
                t,
                SimDuration::from_micros(work_us(chunk, &profiles[source])),
            );
            let write_done = scene.serve_traced(
                target,
                t,
                SimDuration::from_micros(work_us(chunk, &profiles[target])),
            );
            scene.set_active_tag(ActiveTag::Foreground);
            end = end.max(read_done.done).max(write_done.done);

            // Pin source and spare through the next tick so the
            // spin-down policy cannot power either off mid-rebuild.
            let hold_until = t + params.rebuild_period + params.rebuild_period;
            scene.hold(source, hold_until);
            scene.hold(target, hold_until);

            out.rebuild_bytes += chunk;
            out.rebuild_chunks += 1;
            object_done_bytes += chunk;
            if object_done_bytes >= objects[obj].bytes {
                degraded[obj] = false;
                pending_pos += 1;
                object_done_bytes = 0;
            }
            if let Some(s) = sink.as_deref_mut() {
                s.record(TraceEvent::RebuildChunk {
                    at: t,
                    source: source as u32,
                    spare: target as u32,
                    bytes: chunk,
                });
            }
            cal.retarget(rebuild_slot, Some(t + params.rebuild_period));
        }
    }

    scene.finish(end);
    let (fg, rb) = scene.active_split();
    out.energy = scene.energy();
    out.foreground_active_j = fg;
    out.rebuild_active_j = rb;
    out.spin_downs = scene.spin_downs;
    out.spin_ups = scene.spin_ups;
    read_resp_us.sort_unstable();
    out.read_p50_us = percentile(&read_resp_us, 500);
    out.read_p99_us = percentile(&read_resp_us, 990);
    out.read_p999_us = percentile(&read_resp_us, 999);
    out.route_digest = digest.finish();
    out.end_us = end.as_micros();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic() {
        let params = RebuildParams::small(42, FaultSpec::scenario("light", 42));
        let a = run_rebuild(&params, None).unwrap();
        let b = run_rebuild(&params, None).unwrap();
        assert_eq!(a, b);
        let other = RebuildParams::small(43, FaultSpec::scenario("light", 43));
        let c = run_rebuild(&other, None).unwrap();
        assert_ne!(a.route_digest, c.route_digest, "seed must matter");
    }

    #[test]
    fn span_identity_and_energy_reconcile() {
        let params = RebuildParams::small(7, FaultSpec::scenario("heavy", 7));
        let r = run_rebuild(&params, None).unwrap();
        assert_eq!(
            r.response_us,
            r.queue_us + r.spin_up_wait_us + r.service_us + r.crash_wait_us,
            "read spans must decompose exactly"
        );
        // Exact by construction: the headline active is the literal sum
        // of the two buckets.
        assert_eq!(
            r.energy.active_j,
            r.foreground_active_j + r.rebuild_active_j
        );
        assert!(r.rebuild_active_j > 0.0, "rebuild must cost energy");
    }

    #[test]
    fn rebuild_restores_every_lost_byte() {
        let params = RebuildParams::small(11, FaultSpec::scenario("light", 11));
        let r = run_rebuild(&params, None).unwrap();
        assert!(r.rebuild_done_us.is_some(), "rebuild must finish");
        assert!(r.rebuild_bytes > 0);
        assert!(r.failed_disk.is_some());
        assert!(r.spare_disk.is_some());

        // Foreground traffic is byte-identical to the fault-free twin:
        // the failure loses no client byte.
        let mut clean = params.clone();
        clean.scenario = None;
        clean.inject_failure = false;
        let c = run_rebuild(&clean, None).unwrap();
        assert_eq!(r.bytes_read, c.bytes_read);
        assert_eq!(r.bytes_written, c.bytes_written);
        assert_eq!(r.reads, c.reads);
        assert_eq!(r.writes, c.writes);
    }

    #[test]
    fn routing_improves_the_read_tail() {
        let params = RebuildParams::paper_default(42, FaultSpec::scenario("heavy", 42));
        let routed = run_rebuild(&params, None).unwrap();
        let mut un = params.clone();
        un.routing = false;
        let unrouted = run_rebuild(&un, None).unwrap();
        assert!(
            routed.read_p99_us < unrouted.read_p99_us,
            "routing must improve p99: routed {} vs unrouted {}",
            routed.read_p99_us,
            unrouted.read_p99_us
        );
        assert_ne!(routed.route_digest, unrouted.route_digest);
    }

    #[test]
    fn trace_sink_sees_routes_and_chunks() {
        let params = RebuildParams::small(5, FaultSpec::scenario("light", 5));
        let mut sink = TraceSink::new();
        let r = run_rebuild(&params, Some(&mut sink)).unwrap();
        let mut routes = 0u64;
        let mut chunks = 0u64;
        for e in sink.events() {
            match e {
                TraceEvent::ReplicaRoute { .. } => routes += 1,
                TraceEvent::RebuildChunk { .. } => chunks += 1,
                _ => {}
            }
        }
        assert_eq!(routes, r.reads);
        assert_eq!(chunks, r.rebuild_chunks);
    }

    #[test]
    fn bad_geometry_is_rejected() {
        let mut params = RebuildParams::small(1, None);
        params.placement.spares = 0;
        assert!(matches!(
            run_rebuild(&params, None),
            Err(RebuildError::Config {
                field: "spares",
                ..
            })
        ));
        let mut params = RebuildParams::small(1, None);
        params.placement.replicas = 1;
        assert!(matches!(
            run_rebuild(&params, None),
            Err(RebuildError::Config {
                field: "replicas",
                ..
            })
        ));
    }
}
