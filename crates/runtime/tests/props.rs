//! Property tests for the execution engine: random programs must run to
//! completion correctly with and without the software scheme.

use proptest::prelude::*;
use sdds_compiler::ir::{IoDirection, Program};
use sdds_compiler::{analyze_slacks, SchedulerConfig, SlotGranularity};
use sdds_power::PolicyKind;
use sdds_runtime::{CompiledPlan, Engine, EngineConfig};
use sdds_storage::{FileId, StorageConfig};
use simkit::SimDuration;

const STRIPE: i64 = 64 * 1024;

/// Random phased program: writes, a gap, reads of a shifted region, with
/// arbitrary interleaved compute.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        1usize..4, // procs
        1i64..8,   // blocks
        0u32..4,   // gap slots
        0i64..2,   // read shift
        1u64..40,  // compute ms
    )
        .prop_map(|(procs, blocks, gap, shift, compute)| {
            let blk = 2 * STRIPE;
            let span = blocks * blk + STRIPE;
            let mut p = Program::new("prop-engine", procs);
            let f = p.add_file(
                FileId(0),
                ((procs as i64) * span + (blocks + shift) * blk + blk) as u64,
            );
            p.push_loop("i", 0, blocks - 1, move |b| {
                b.io(
                    IoDirection::Write,
                    f,
                    |e| e.term("p", span).term("i", blk),
                    blk as u64,
                );
                b.compute(SimDuration::from_millis(compute));
            });
            if gap > 0 {
                p.push_skip(gap, SimDuration::from_millis(100));
            }
            p.push_loop("j", 0, blocks - 1, move |b| {
                b.io(
                    IoDirection::Read,
                    f,
                    |e| e.term("p", span).term("j", blk).plus(shift * blk),
                    blk as u64,
                );
                b.compute(SimDuration::from_millis(compute));
            });
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The engine terminates, moves exactly the program's bytes, finishes
    /// every process, and the scheme preserves the application-visible I/O
    /// volume.
    #[test]
    fn engine_terminates_and_conserves(program in arb_program(), buffer_kb in 64u64..4_096) {
        let trace = program.trace(SlotGranularity::unit()).unwrap();
        let (reads, writes) = trace.bytes_moved();

        let storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
        let plain = Engine::new(EngineConfig::paper_defaults(), storage.clone()).unwrap().run(&trace, None).unwrap();
        prop_assert_eq!(plain.bytes_moved, (reads, writes));
        prop_assert_eq!(plain.per_proc_finish.len(), trace.processes.len());

        let accesses = analyze_slacks(&trace, &storage.layout).unwrap();
        let table = SchedulerConfig::paper_defaults().schedule(&accesses, &trace).unwrap();
        let mut cfg = EngineConfig::paper_defaults();
        cfg.buffer_capacity = buffer_kb * 1024;
        cfg.min_prefetch_advance = 1;
        let schemed = Engine::new(cfg.clone(), storage).unwrap().run(&trace, Some(CompiledPlan::new(&accesses, &table))).unwrap();
        prop_assert_eq!(schemed.bytes_moved, (reads, writes));
        prop_assert!(schemed.buffer.peak_used <= cfg.buffer_capacity);
        // Prefetch bookkeeping is consistent: every admitted entry is
        // eventually hit, missed (became sync), or still resident.
        prop_assert!(schemed.buffer.hits + schemed.buffer.hits_in_flight <= schemed.prefetch.issued + schemed.buffer.misses);
    }

    /// Engine runs are reproducible bit-for-bit.
    #[test]
    fn engine_is_deterministic(program in arb_program()) {
        let trace = program.trace(SlotGranularity::unit()).unwrap();
        let run = || {
            let storage = StorageConfig::paper_defaults(PolicyKind::staggered_default());
            let accesses = analyze_slacks(&trace, &storage.layout).unwrap();
            let table = SchedulerConfig::paper_defaults().schedule(&accesses, &trace).unwrap();
            let r = Engine::new(EngineConfig::paper_defaults(), storage)
                .unwrap()
                .run(&trace, Some(CompiledPlan::new(&accesses, &table)))
                .unwrap();
            (r.exec_time, r.energy_joules.to_bits(), r.buffer.hits)
        };
        prop_assert_eq!(run(), run());
    }

    /// Execution time with the scheme never regresses catastrophically:
    /// prefetching may add queueing, but the run must stay within a small
    /// factor of the unscheduled run (liveness against pathological
    /// schedules).
    #[test]
    fn scheme_execution_stays_bounded(program in arb_program()) {
        let trace = program.trace(SlotGranularity::unit()).unwrap();
        let storage = StorageConfig::paper_defaults(PolicyKind::NoPm);
        let plain = Engine::new(EngineConfig::paper_defaults(), storage.clone()).unwrap().run(&trace, None).unwrap();
        let accesses = analyze_slacks(&trace, &storage.layout).unwrap();
        let table = SchedulerConfig::paper_defaults().schedule(&accesses, &trace).unwrap();
        let schemed = Engine::new(EngineConfig::paper_defaults(), storage)
            .unwrap()
            .run(&trace, Some(CompiledPlan::new(&accesses, &table)))
            .unwrap();
        let a = plain.exec_time.as_secs_f64();
        let b = schemed.exec_time.as_secs_f64();
        prop_assert!(b <= a * 3.0 + 1.0, "scheme blew up execution: {a} -> {b}");
    }
}
