//! Determinism and conservation properties of the replicated
//! object-store rebuild scenario.

use proptest::prelude::*;
use sdds_runtime::{run_rebuild, RebuildParams};
use simkit::fault::FaultSpec;

/// The routing sequence — and therefore the whole result — must not
/// depend on the worker-pool size: the scenario is a single-threaded
/// pure function of its params, so `--jobs` can never change a byte.
#[test]
fn router_choices_are_jobs_invariant() {
    let params = RebuildParams::paper_default(42, FaultSpec::scenario("light", 42));
    simkit::pool::set_jobs(1);
    let narrow = run_rebuild(&params, None).unwrap();
    simkit::pool::set_jobs(8);
    let wide = run_rebuild(&params, None).unwrap();
    assert_eq!(narrow, wide);
    assert_eq!(narrow.route_digest, wide.route_digest);
}

/// With a fixed seed, straggler-aware routing must improve the read
/// tail over primary-only reads under the same fault plan.
#[test]
fn routing_beats_primary_reads_at_fixed_seed() {
    for seed in [7u64, 42, 1234] {
        let routed_params = RebuildParams::paper_default(seed, FaultSpec::scenario("heavy", seed));
        let routed = run_rebuild(&routed_params, None).unwrap();
        let mut unrouted_params = routed_params.clone();
        unrouted_params.routing = false;
        let unrouted = run_rebuild(&unrouted_params, None).unwrap();
        assert!(
            routed.read_p99_us < unrouted.read_p99_us,
            "seed {seed}: routed p99 {} must beat unrouted {}",
            routed.read_p99_us,
            unrouted.read_p99_us
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The rebuild never loses a byte: foreground traffic (requests and
    /// bytes moved) is identical to the fault-free twin's, every lost
    /// replica is reconstructed, and the energy split reconciles exactly
    /// — for arbitrary seeds and both fault scenarios.
    #[test]
    fn rebuild_never_loses_a_byte(seed in 0u64..10_000, heavy in any::<bool>()) {
        let scenario = FaultSpec::scenario(if heavy { "heavy" } else { "light" }, seed);
        let params = RebuildParams::small(seed, scenario);
        let faulty = run_rebuild(&params, None).unwrap();

        let mut clean_params = params.clone();
        clean_params.scenario = None;
        clean_params.inject_failure = false;
        let clean = run_rebuild(&clean_params, None).unwrap();

        prop_assert_eq!(faulty.reads, clean.reads);
        prop_assert_eq!(faulty.writes, clean.writes);
        prop_assert_eq!(faulty.bytes_read, clean.bytes_read);
        prop_assert_eq!(faulty.bytes_written, clean.bytes_written);
        prop_assert!(faulty.rebuild_done_us.is_some(), "rebuild must complete");
        prop_assert_eq!(
            faulty.response_us,
            faulty.queue_us + faulty.spin_up_wait_us + faulty.service_us + faulty.crash_wait_us
        );
        prop_assert_eq!(
            faulty.energy.active_j,
            faulty.foreground_active_j + faulty.rebuild_active_j
        );
    }
}
