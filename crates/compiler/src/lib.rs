//! The optimizing compiler of the SDDS framework (§IV of the paper).
//!
//! The paper's compiler pass runs after code and I/O parallelization and
//! performs two steps:
//!
//! 1. **Access slack determination** — for every I/O call, find the region
//!    of loop iterations within which the access may be performed: from
//!    just after the producing write to the consuming read ([`slack`]).
//!    Affine programs are analyzed exactly ([`polyhedral`]); everything
//!    else falls back to profiling-based enumeration ([`trace`]).
//! 2. **Data access scheduling** — place each access at an iteration inside
//!    its slack so as to maximize horizontal and vertical I/O-node reuse,
//!    quantified through access signatures and the distance metric of
//!    §IV-B ([`signature`], [`reuse`], [`schedule`]).
//!
//! The input is a loop-nest intermediate representation ([`ir`]) standing
//! in for the Phoenix infrastructure the paper instruments: the analyses
//! only ever need loop structure and affine file-access functions, which
//! the IR captures directly.
//!
//! # Example
//!
//! ```
//! use sdds_compiler::ir::{IoDirection, Program};
//! use sdds_compiler::{analyze_slacks, SchedulerConfig, SlotGranularity};
//! use sdds_storage::{FileId, StripingLayout};
//!
//! // A two-process program: each process reads 64 KB blocks of one file.
//! let mut p = Program::new("quickstart", 2);
//! let file = p.add_file(FileId(0), 16 * 64 * 1024);
//! p.push_loop("i", 0, 7, |b| {
//!     // offset = 64KB * (i + 8p): each process scans its own half.
//!     b.io(IoDirection::Read, file, |e| {
//!         e.term("i", 64 * 1024).term("p", 8 * 64 * 1024)
//!     }, 64 * 1024);
//! });
//! let layout = StripingLayout::paper_defaults();
//! let trace = p.trace(SlotGranularity::unit()).expect("valid program");
//! let accesses = analyze_slacks(&trace, &layout).expect("consistent trace");
//! let table = SchedulerConfig::paper_defaults()
//!     .schedule(&accesses, &trace)
//!     .expect("valid scheduler configuration");
//! assert_eq!(table.scheduled_count(), accesses.len());
//! ```

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_debug_implementations)]

pub mod affine;
mod error;
pub mod ir;
pub mod mpiio;
pub mod polyhedral;
pub mod reuse;
pub mod schedule;
pub mod signature;
pub mod slack;
pub mod symbolic;
mod tables;
pub mod trace;

pub use error::CompileError;
pub use schedule::{ScheduleTable, ScheduledIo, SchedulerConfig};
pub use signature::Signature;
pub use slack::{analyze_slacks, SchedulableAccess};
pub use trace::{IoInstance, ProcessTrace, ProgramTrace, SlotGranularity};
