//! Access signatures and the distance metric (§IV-B).
//!
//! Each data access gets a signature `g = [η0 η1 … ηn−1]` with bit `i` set
//! when I/O node `i` is used. The distance between two signatures is
//!
//! ```text
//! distance(g1, g2) = n − similarity(g1, g2) + difference(g1, g2)
//! ```
//!
//! where `similarity` counts 1-bits in the same positions and `difference`
//! counts differing bits. Smaller distance means better reuse: shared
//! active nodes reduce it, newly-activated nodes increase it.

use std::fmt;

use sdds_storage::{FileId, NodeSet, StripingLayout};

/// An access signature over `n` I/O nodes.
///
/// # Example
///
/// The signatures of accesses A4 and A6 from Fig. 9 of the paper
/// (16 I/O nodes):
///
/// ```
/// use sdds_compiler::Signature;
/// use sdds_storage::NodeSet;
///
/// let g4 = Signature::new(NodeSet::from_nodes([1, 9]), 16);
/// let g6 = Signature::new(NodeSet::from_nodes([1, 2, 9, 10]), 16);
/// assert_eq!(g4.similarity(&g6), 2);
/// assert_eq!(g4.difference(&g6), 2);
/// assert_eq!(g4.distance(&g6), 16); // 16 − 2 + 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    nodes: NodeSet,
    width: usize,
}

impl Signature {
    /// Creates a signature over `width` I/O nodes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, exceeds [`NodeSet::MAX_NODES`], or the
    /// set contains a node `>= width`.
    pub fn new(nodes: NodeSet, width: usize) -> Self {
        assert!(
            width > 0 && width <= NodeSet::MAX_NODES,
            "signature width must be in 1..={}, got {width}",
            NodeSet::MAX_NODES
        );
        assert!(
            nodes.iter().all(|n| n < width),
            "node set {nodes:?} exceeds signature width {width}"
        );
        Signature { nodes, width }
    }

    /// The empty signature (the paper's initial group signature `G = 0`).
    pub fn empty(width: usize) -> Self {
        Signature::new(NodeSet::EMPTY, width)
    }

    /// Computes the signature of a file byte-range under a striping layout.
    pub fn of_range(layout: &StripingLayout, file: FileId, offset: u64, len: u64) -> Self {
        Signature::new(layout.nodes_for_range(file, offset, len), layout.io_nodes())
    }

    /// The underlying node set.
    pub fn nodes(&self) -> NodeSet {
        self.nodes
    }

    /// Number of I/O nodes `n` the signature ranges over.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of active I/O nodes that would be reused (1-bits in common).
    pub fn similarity(&self, other: &Signature) -> usize {
        self.check(other);
        self.nodes.intersection(other.nodes).len()
    }

    /// Number of additional I/O nodes that would be turned on (differing
    /// bits).
    pub fn difference(&self, other: &Signature) -> usize {
        self.check(other);
        self.nodes.symmetric_difference(other.nodes).len()
    }

    /// The paper's distance: `n − similarity + difference`.
    pub fn distance(&self, other: &Signature) -> usize {
        self.width - self.similarity(other) + self.difference(other)
    }

    /// Group-signature union (the bitwise OR of Eq. for `G`).
    pub fn union(&self, other: &Signature) -> Signature {
        self.check(other);
        Signature {
            nodes: self.nodes.union(other.nodes),
            width: self.width,
        }
    }

    /// Returns `true` when no node is set.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn check(&self, other: &Signature) {
        assert_eq!(
            self.width, other.width,
            "signatures over different I/O node counts are incomparable"
        );
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:width$}", self.nodes, width = self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(nodes: &[usize]) -> Signature {
        Signature::new(NodeSet::from_nodes(nodes.iter().copied()), 16)
    }

    #[test]
    fn identical_signatures_have_min_distance() {
        let a = sig(&[2, 10]);
        assert_eq!(a.similarity(&a), 2);
        assert_eq!(a.difference(&a), 0);
        assert_eq!(a.distance(&a), 14); // n − |g|
    }

    #[test]
    fn disjoint_signatures_have_max_distance() {
        let a = sig(&[2, 10]);
        let b = sig(&[1, 9]);
        assert_eq!(a.similarity(&b), 0);
        assert_eq!(a.difference(&b), 4);
        assert_eq!(a.distance(&b), 20); // n + |a ∪ b|
    }

    #[test]
    fn paper_worked_example_distances() {
        // Reverse-engineered from §IV-B1's R6 computation: D(g4,G8) = 14
        // with G8 = {1,9} (same as g4), D(g4,G5) = 20 with G5 = {2,10}
        // (disjoint), D(g4,G7) = 16 with G7 = {1,2,9,10}.
        let g4 = sig(&[1, 9]);
        assert_eq!(g4.distance(&sig(&[1, 9])), 14);
        assert_eq!(g4.distance(&sig(&[2, 10])), 20);
        assert_eq!(g4.distance(&sig(&[1, 2, 9, 10])), 16);
    }

    #[test]
    fn distance_vs_empty_group() {
        let g = sig(&[0, 1]);
        let empty = Signature::empty(16);
        assert_eq!(g.distance(&empty), 18); // 16 − 0 + 2
        assert_eq!(empty.distance(&empty), 16);
    }

    #[test]
    fn union_accumulates() {
        let g = sig(&[1]).union(&sig(&[9])).union(&sig(&[1]));
        assert_eq!(g, sig(&[1, 9]));
    }

    #[test]
    fn signature_of_range_uses_layout() {
        let layout = StripingLayout::new(64 * 1024, 8).unwrap();
        let s = Signature::of_range(&layout, FileId(0), 0, 3 * 64 * 1024);
        assert_eq!(s.nodes(), NodeSet::from_nodes([0, 1, 2]));
        assert_eq!(s.width(), 8);
    }

    #[test]
    fn distance_symmetry() {
        let a = sig(&[0, 3, 7]);
        let b = sig(&[3, 8]);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_triangle_like_bounds() {
        // distance is bounded by [n − min(|a|,|b|), n + |a| + |b|].
        let a = sig(&[0, 1, 2]);
        let b = sig(&[2, 3]);
        let d = a.distance(&b);
        assert!((16 - 2..=16 + 5).contains(&d), "distance {d} out of bounds");
    }

    #[test]
    #[should_panic(expected = "incomparable")]
    fn width_mismatch_panics() {
        let a = Signature::new(NodeSet::single(0), 8);
        let b = Signature::new(NodeSet::single(0), 16);
        let _ = a.distance(&b);
    }

    #[test]
    #[should_panic(expected = "exceeds signature width")]
    fn node_out_of_width_panics() {
        let _ = Signature::new(NodeSet::single(10), 8);
    }

    #[test]
    fn display_matches_paper_format() {
        let s = Signature::new(NodeSet::from_nodes([1, 2]), 4);
        assert_eq!(s.to_string(), "0 1 1 0");
    }
}
