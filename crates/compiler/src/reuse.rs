//! Reuse-factor computation (Eqs. 2 and 3 of the paper) and the shared
//! scheduling state.
//!
//! The reuse factor of a candidate slot `t` for an access with signature
//! `g` and length `l` sums, over every iteration `u` in the vertical reuse
//! range `[t − δ, t + l − 1 + δ]`, the weighted inverse distance between
//! `g` and the *group active signature* `G_u` (the OR of the signatures of
//! all already-scheduled unit accesses covering `u`):
//!
//! ```text
//! R_t = Σ_u σ(u) / distance(g, G_u)        σ(k) = 1 − k / (δ + 1)
//! ```
//!
//! with `1/d := 2` when the distance is zero, and weight index `k` the
//! distance of `u` from the occupied span `[t, t + l − 1]`.

use crate::signature::Signature;

/// The weight function σ of Eq. 3.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightFn {
    /// The paper's linear decay `σ(k) = 1 − k/(δ+1)`.
    Linear,
    /// An explicit table `σ(k) = table[k]` for `k = 0..=δ` (used to
    /// reproduce the paper's rounded worked examples and for ablations).
    Table(Vec<f64>),
}

// σ tables are fixed finite constants (never NaN), so bitwise equality
// and hashing are consistent with the derived `PartialEq`; this makes
// `WeightFn` (and through it `SchedulerConfig`) usable as a
// compilation-cache key.
impl Eq for WeightFn {}

impl std::hash::Hash for WeightFn {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            WeightFn::Linear => state.write_u8(0),
            WeightFn::Table(t) => {
                state.write_u8(1);
                for w in t {
                    state.write_u64(w.to_bits());
                }
            }
        }
    }
}

impl WeightFn {
    /// The weight of offset `k` from the occupied span, given range `δ`.
    ///
    /// # Panics
    ///
    /// Panics for a `Table` shorter than `k + 1`.
    pub fn weight(&self, k: u32, delta: u32) -> f64 {
        match self {
            WeightFn::Linear => 1.0 - k as f64 / (delta as f64 + 1.0),
            WeightFn::Table(t) => t[k as usize],
        }
    }

    /// Precomputes `σ(k)` for `k = 0..=δ`. Each entry is produced by the
    /// same expression as [`WeightFn::weight`], so sums built from the
    /// table are bit-for-bit identical to evaluating σ term by term — the
    /// table only hoists the per-term division out of hot loops.
    ///
    /// # Panics
    ///
    /// Panics for a `Table` shorter than `δ + 1`.
    pub fn table_for(&self, delta: u32) -> Vec<f64> {
        (0..=delta).map(|k| self.weight(k, delta)).collect()
    }
}

/// Per-slot scheduling state shared by the algorithms: group signatures,
/// per-node access counts (for θ) and per-process occupancy.
#[derive(Debug, Clone)]
pub struct GroupState {
    width: usize,
    total_slots: u32,
    nprocs: usize,
    /// Group active signature per slot.
    group: Vec<Signature>,
    /// Unit-access count per slot × node (for the θ constraint).
    counts: Vec<u16>,
    /// Occupancy per process × slot (one access per slot per process).
    occupied: Vec<bool>,
}

impl GroupState {
    /// Creates empty state for `total_slots` slots, `nprocs` processes and
    /// signatures over `width` I/O nodes.
    pub fn new(width: usize, total_slots: u32, nprocs: usize) -> Self {
        assert!(width > 0 && total_slots > 0 && nprocs > 0);
        GroupState {
            width,
            total_slots,
            nprocs,
            group: vec![Signature::empty(width); total_slots as usize],
            counts: vec![0; total_slots as usize * width],
            occupied: vec![false; total_slots as usize * nprocs],
        }
    }

    /// Total number of scheduling slots.
    pub fn total_slots(&self) -> u32 {
        self.total_slots
    }

    /// The group active signature at `slot`.
    pub fn group_at(&self, slot: u32) -> &Signature {
        &self.group[slot as usize]
    }

    /// The number of already-scheduled unit accesses using `node` at
    /// `slot`.
    pub fn count_at(&self, slot: u32, node: usize) -> u16 {
        self.counts[slot as usize * self.width + node]
    }

    /// Returns `true` if `proc` already has an access scheduled anywhere in
    /// `[start, start + length)`.
    pub fn occupied(&self, proc: usize, start: u32, length: u32) -> bool {
        let end = (start + length).min(self.total_slots);
        (start..end).any(|s| self.occupied[s as usize * self.nprocs + proc])
    }

    /// Records an access with signature `sig` from `proc` occupying
    /// `[start, start + length)`: its unit sub-accesses join every covered
    /// slot's group signature and node counts (§IV-B2).
    pub fn place(&mut self, proc: usize, start: u32, length: u32, sig: &Signature) {
        let end = (start + length).min(self.total_slots);
        for s in start..end {
            let idx = s as usize;
            self.group[idx] = self.group[idx].union(sig);
            for node in sig.nodes().iter() {
                self.counts[idx * self.width + node] += 1;
            }
            self.occupied[idx * self.nprocs + proc] = true;
        }
    }

    /// The reuse factor `R_t` of Eq. 2 for placing `sig` (length `length`)
    /// at slot `t`, with vertical reuse range `delta` and weights
    /// `weights`.
    pub fn reuse_factor(
        &self,
        sig: &Signature,
        t: u32,
        length: u32,
        delta: u32,
        weights: &WeightFn,
    ) -> f64 {
        let lo = (t as i64 - delta as i64).max(0) as u32;
        let hi = (t as i64 + length as i64 - 1 + delta as i64).min(self.total_slots as i64 - 1);
        let len = (hi - lo as i64 + 1).max(0) as usize;
        let mut memo = vec![f64::NAN; len];
        let wtab = weights.table_for(delta);
        self.reuse_factor_memo(sig, t, length, delta, &wtab, lo, &mut memo)
    }

    /// [`GroupState::reuse_factor`] with the per-slot inverse distances
    /// memoized in `memo` (indexed by `slot - memo_lo`; `NAN` marks a slot
    /// not yet computed) and the weights pretabulated in `wtab` (built by
    /// [`WeightFn::table_for`]). Candidate windows for one access overlap
    /// heavily, and the group signatures don't change between candidate
    /// evaluations, so the signature distance for each slot only needs
    /// computing once per access. Every term and the summation order match
    /// the plain version exactly, so the result is bit-for-bit identical;
    /// the loop is merely split into its three weight regimes (leading
    /// flank, occupied span, trailing flank) to keep the offset arithmetic
    /// and table lookups branch-free.
    ///
    /// # Panics
    ///
    /// Panics if `memo` does not cover `[t − delta, t + length − 1 + delta]`
    /// (clipped to the slot range) relative to `memo_lo`, or if `wtab` has
    /// fewer than `delta + 1` entries.
    #[allow(clippy::too_many_arguments)] // mirrors `reuse_factor` plus the two memo handles
    pub fn reuse_factor_memo(
        &self,
        sig: &Signature,
        t: u32,
        length: u32,
        delta: u32,
        wtab: &[f64],
        memo_lo: u32,
        memo: &mut [f64],
    ) -> f64 {
        let span_start = t as i64;
        let span_end = t as i64 + length as i64 - 1;
        let lo = (span_start - delta as i64).max(0);
        let hi = (span_end + delta as i64).min(self.total_slots as i64 - 1);
        let group = &self.group;
        let mut inv_at = |u: i64| -> f64 {
            let slot = &mut memo[(u - memo_lo as i64) as usize];
            if slot.is_nan() {
                let d = sig.distance(&group[u as usize]);
                *slot = if d == 0 { 2.0 } else { 1.0 / d as f64 };
            }
            *slot
        };
        let mut r = 0.0;
        let mut u = lo;
        // Leading flank: σ(span_start − u).
        while u <= hi && u < span_start {
            r += wtab[(span_start - u) as usize] * inv_at(u);
            u += 1;
        }
        // Occupied span: σ(0).
        let w0 = wtab[0];
        while u <= hi && u <= span_end {
            r += w0 * inv_at(u);
            u += 1;
        }
        // Trailing flank: σ(u − span_end).
        while u <= hi {
            r += wtab[(u - span_end) as usize] * inv_at(u);
            u += 1;
        }
        r
    }

    /// Returns `true` if placing `sig` over `[t, t + length)` keeps every
    /// touched node's access count within `theta` at every covered slot
    /// (§IV-B3).
    pub fn theta_ok(&self, sig: &Signature, t: u32, length: u32, theta: u16) -> bool {
        let end = (t + length).min(self.total_slots);
        (t..end).all(|s| {
            sig.nodes()
                .iter()
                .all(|node| self.count_at(s, node) < theta)
        })
    }

    /// The average number of additional (over-θ) accesses `E_t` that
    /// placing `sig` over `[t, t + length)` would create, averaged over
    /// the (slot, node) pairs that exceed θ. Zero when the placement is
    /// eligible.
    pub fn overflow_cost(&self, sig: &Signature, t: u32, length: u32, theta: u16) -> f64 {
        let end = (t + length).min(self.total_slots);
        let mut excess = 0u64;
        let mut offenders = 0u64;
        for s in t..end {
            for node in sig.nodes().iter() {
                let m = self.count_at(s, node) + 1;
                if m > theta {
                    excess += (m - theta) as u64;
                    offenders += 1;
                }
            }
        }
        if offenders == 0 {
            0.0
        } else {
            excess as f64 / offenders as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdds_storage::NodeSet;

    fn sig16(nodes: &[usize]) -> Signature {
        Signature::new(NodeSet::from_nodes(nodes.iter().copied()), 16)
    }

    #[test]
    fn linear_weights_match_paper_delta4() {
        // §IV-B1: "if δ = 4, we have σ0 = 1, σ1 = 0.8, σ2 = 0.6".
        let w = WeightFn::Linear;
        assert!((w.weight(0, 4) - 1.0).abs() < 1e-12);
        assert!((w.weight(1, 4) - 0.8).abs() < 1e-12);
        assert!((w.weight(2, 4) - 0.6).abs() < 1e-12);
        assert!((w.weight(3, 4) - 0.4).abs() < 1e-12);
        assert!((w.weight(4, 4) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn place_updates_group_counts_occupancy() {
        let mut st = GroupState::new(16, 10, 3);
        let g = sig16(&[1, 9]);
        st.place(0, 4, 2, &g);
        assert_eq!(st.group_at(4).nodes(), g.nodes());
        assert_eq!(st.group_at(5).nodes(), g.nodes());
        assert!(st.group_at(6).is_empty());
        assert_eq!(st.count_at(4, 1), 1);
        assert_eq!(st.count_at(4, 9), 1);
        assert_eq!(st.count_at(4, 2), 0);
        assert!(st.occupied(0, 4, 1));
        assert!(st.occupied(0, 5, 1));
        assert!(!st.occupied(0, 6, 1));
        assert!(!st.occupied(1, 4, 1));
        // Span queries.
        assert!(st.occupied(0, 3, 2));
        assert!(!st.occupied(0, 0, 4));
    }

    #[test]
    fn paper_worked_example_r6() {
        // §IV-B1's R6 for A4 (g4 = {1,9}) at slot t6 with δ = 2 and the
        // paper's rounded weights (1, 0.7, 0.4). Partial schedule consistent
        // with the published distances: G4 = {2,10}, G5 = {2,10},
        // G6 = {1,2,9,10}, G7 = {1,2,9,10}, G8 = {1,9}.
        // (Slots here are 1-based in the paper; we use the same numbers.)
        let mut st = GroupState::new(16, 14, 3);
        let g_2_10 = sig16(&[2, 10]);
        let g_1_9 = sig16(&[1, 9]);
        let g_all4 = sig16(&[1, 2, 9, 10]);
        st.place(1, 4, 1, &g_2_10); // A5 at t4
        st.place(2, 5, 1, &g_2_10); // A3 at t5
        st.place(2, 6, 1, &g_all4); // A8+A2 merged at t6
        st.place(1, 7, 1, &g_all4); // A6 at t7
        st.place(2, 8, 1, &g_1_9); // A9 at t8

        let g4 = sig16(&[1, 9]);
        assert_eq!(g4.distance(st.group_at(6)), 16);
        assert_eq!(g4.distance(st.group_at(5)), 20);
        assert_eq!(g4.distance(st.group_at(7)), 16);
        assert_eq!(g4.distance(st.group_at(4)), 20);
        assert_eq!(g4.distance(st.group_at(8)), 14);

        let weights = WeightFn::Table(vec![1.0, 0.7, 0.4]);
        let r6 = st.reuse_factor(&g4, 6, 1, 2, &weights);
        let expected = 1.0 / 16.0 + 0.7 / 20.0 + 0.7 / 16.0 + 0.4 / 20.0 + 0.4 / 14.0;
        assert!((r6 - expected).abs() < 1e-12);
        assert!((r6 - 0.19).abs() < 0.005, "paper reports ≈ 0.19, got {r6}");
    }

    #[test]
    fn paper_extended_example_groups() {
        // §IV-B2 / Fig. 10: A1 (len 12) at t1, A3 (len 4) at t2, A4 (len 6)
        // at t3, A5 (len 6) at t7 over 4 I/O nodes with Table I signatures.
        // Then G5 = g1|g3|g4 and G6 = g1|g4.
        let g1 = Signature::new(NodeSet::from_nodes([1, 2]), 4);
        let g3 = Signature::new(NodeSet::from_nodes([2]), 4);
        let g4 = Signature::new(NodeSet::from_nodes([3]), 4);
        let g5 = Signature::new(NodeSet::from_nodes([0, 3]), 4);
        let mut st = GroupState::new(4, 14, 5);
        st.place(0, 1, 12, &g1);
        st.place(2, 2, 4, &g3);
        st.place(3, 3, 6, &g4);
        st.place(4, 7, 6, &g5);
        assert_eq!(st.group_at(5).nodes(), NodeSet::from_nodes([1, 2, 3]));
        assert_eq!(st.group_at(6).nodes(), NodeSet::from_nodes([1, 2, 3]));
        // t6 has A1 and A4 only (A3 ends after t5): g1|g4 = {1,2,3}. Same
        // set here because g3 ⊂ g1; the node counts tell them apart:
        assert_eq!(st.count_at(5, 2), 2); // A1 + A3
        assert_eq!(st.count_at(6, 2), 1); // A1 only
    }

    #[test]
    fn paper_theta_example_t5_eligible() {
        // §IV-B3: with θ = 2, slot t5 is eligible for A2 (len 3, g2 = {1}):
        // every iteration t5..t7 keeps all node counts within 2.
        let g1 = Signature::new(NodeSet::from_nodes([1, 2]), 4);
        let g2 = Signature::new(NodeSet::from_nodes([1]), 4);
        let g3 = Signature::new(NodeSet::from_nodes([2]), 4);
        let g4 = Signature::new(NodeSet::from_nodes([3]), 4);
        let g5 = Signature::new(NodeSet::from_nodes([0, 3]), 4);
        let mut st = GroupState::new(4, 14, 5);
        st.place(0, 1, 12, &g1);
        st.place(2, 2, 4, &g3);
        st.place(3, 3, 6, &g4);
        st.place(4, 7, 6, &g5);
        assert!(st.theta_ok(&g2, 5, 3, 2));
        // With θ = 1 it is not (node 1 already used by A1 everywhere).
        assert!(!st.theta_ok(&g2, 5, 3, 1));
        assert_eq!(st.overflow_cost(&g2, 5, 3, 2), 0.0);
        // θ = 1: node 1 exceeds by one at each of the three slots.
        assert!((st.overflow_cost(&g2, 5, 3, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_range_clipped_at_boundaries() {
        let st = GroupState::new(8, 5, 1);
        let g = Signature::new(NodeSet::single(0), 8);
        // Empty state: every slot contributes weight / (8 + 1).
        let d = g.distance(&Signature::empty(8)) as f64;
        let w = WeightFn::Linear;
        // t = 0, len 1, δ = 2: slots 0,1,2 with weights 1, 2/3, 1/3.
        let r = st.reuse_factor(&g, 0, 1, 2, &w);
        let expected = (1.0 + 2.0 / 3.0 + 1.0 / 3.0) / d;
        assert!((r - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_counts_double() {
        let mut st = GroupState::new(2, 3, 1);
        let g_all = Signature::new(NodeSet::from_nodes([0, 1]), 2);
        st.place(0, 1, 1, &g_all);
        // distance(g_all, G1) = 2 − 2 + 0 = 0 → 1/d := 2.
        let r = st.reuse_factor(&g_all, 1, 1, 0, &WeightFn::Linear);
        assert!((r - 2.0).abs() < 1e-12);
    }
}
