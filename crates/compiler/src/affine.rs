//! Affine expressions over loop variables.
//!
//! File-access functions in the IR are affine combinations of enclosing
//! loop indices, the process identifier `p`, and a constant — the class of
//! references the paper's polyhedral path (the Omega library) handles.

use std::collections::BTreeMap;
use std::fmt;

/// An affine expression `c0 + Σ ci · vi` over named integer variables.
///
/// # Example
///
/// ```
/// use sdds_compiler::affine::AffineExpr;
///
/// // 100 + 8*i + 2*p
/// let e = AffineExpr::constant(100).with_term("i", 8).with_term("p", 2);
/// let env = [("i", 3), ("p", 5)];
/// assert_eq!(e.eval(|v| env.iter().find(|(n, _)| *n == v).map(|(_, x)| *x)).unwrap(), 134);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    constant: i64,
    /// Variable name -> coefficient; zero coefficients are never stored.
    terms: BTreeMap<String, i64>,
}

impl AffineExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// A single variable with coefficient 1.
    pub fn var(name: &str) -> Self {
        AffineExpr::zero().with_term(name, 1)
    }

    /// Returns this expression plus `coeff · name` (builder style).
    pub fn with_term(mut self, name: &str, coeff: i64) -> Self {
        self.add_term(name, coeff);
        self
    }

    /// Adds `coeff · name` in place.
    pub fn add_term(&mut self, name: &str, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(name.to_owned()).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            self.terms.remove(name);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: i64) {
        self.constant += c;
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `name` (zero if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(variable, coefficient)` pairs in name order.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Returns `true` if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The set of variables appearing with non-zero coefficient.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(String::as_str)
    }

    /// Evaluates the expression with `lookup` supplying variable values.
    ///
    /// # Errors
    ///
    /// Returns the name of the first unbound variable.
    pub fn eval<F>(&self, lookup: F) -> Result<i64, &str>
    where
        F: Fn(&str) -> Option<i64>,
    {
        let mut acc = self.constant;
        for (name, coeff) in &self.terms {
            let v = lookup(name).ok_or(name.as_str())?;
            acc += coeff * v;
        }
        Ok(acc)
    }

    /// Structural sum of two expressions.
    pub fn plus(&self, other: &AffineExpr) -> AffineExpr {
        let mut out = self.clone();
        out.constant += other.constant;
        for (name, coeff) in &other.terms {
            out.add_term(name, *coeff);
        }
        out
    }
}

impl From<i64> for AffineExpr {
    fn from(c: i64) -> Self {
        AffineExpr::constant(c)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if self.constant != 0 || self.terms.is_empty() {
            write!(f, "{}", self.constant)?;
            wrote = true;
        }
        for (name, coeff) in &self.terms {
            if wrote {
                if *coeff >= 0 {
                    write!(f, " + ")?;
                } else {
                    write!(f, " - ")?;
                }
                let mag = coeff.unsigned_abs();
                if mag == 1 {
                    write!(f, "{name}")?;
                } else {
                    write!(f, "{mag}*{name}")?;
                }
            } else {
                if *coeff == 1 {
                    write!(f, "{name}")?;
                } else if *coeff == -1 {
                    write!(f, "-{name}")?;
                } else {
                    write!(f, "{coeff}*{name}")?;
                }
            }
            wrote = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_eval() {
        let e = AffineExpr::constant(10)
            .with_term("i", 3)
            .with_term("j", -1);
        let val = e
            .eval(|v| match v {
                "i" => Some(4),
                "j" => Some(2),
                _ => None,
            })
            .unwrap();
        assert_eq!(val, 20);
    }

    #[test]
    fn unbound_variable_reports_name() {
        let e = AffineExpr::var("k");
        assert_eq!(e.eval(|_| None), Err("k"));
    }

    #[test]
    fn zero_coefficients_collapse() {
        let mut e = AffineExpr::var("i");
        e.add_term("i", -1);
        assert!(e.is_constant());
        assert_eq!(e.coeff("i"), 0);
        let e2 = AffineExpr::zero().with_term("x", 0);
        assert!(e2.is_constant());
    }

    #[test]
    fn plus_combines() {
        let a = AffineExpr::constant(1).with_term("i", 2);
        let b = AffineExpr::constant(3).with_term("i", 4).with_term("j", 1);
        let c = a.plus(&b);
        assert_eq!(c.constant_part(), 4);
        assert_eq!(c.coeff("i"), 6);
        assert_eq!(c.coeff("j"), 1);
    }

    #[test]
    fn variables_listed() {
        let e = AffineExpr::var("b").with_term("a", 2);
        let vars: Vec<&str> = e.variables().collect();
        assert_eq!(vars, vec!["a", "b"]); // sorted
    }

    #[test]
    fn display_forms() {
        assert_eq!(AffineExpr::zero().to_string(), "0");
        assert_eq!(AffineExpr::constant(5).to_string(), "5");
        assert_eq!(AffineExpr::var("i").to_string(), "i");
        assert_eq!(
            AffineExpr::constant(2).with_term("i", -3).to_string(),
            "2 - 3*i"
        );
        assert_eq!(AffineExpr::var("i").with_term("j", 1).to_string(), "i + j");
    }

    #[test]
    fn from_i64() {
        let e: AffineExpr = 42.into();
        assert_eq!(e.eval(|_| None).unwrap(), 42);
    }
}
