//! Access slack determination (§IV-A).
//!
//! For every read of disk-resident data, the slack is the iteration window
//! `[i_w + 1, i_r]` between the last preceding write `i_w` of the data and
//! the read point `i_r` (Fig. 6(a)). Reads of data never written during
//! the program (input files) may be scheduled anywhere in `[0, i_r]`.
//! A read whose producer executes at or after it — possible across
//! processes after loop parallelization and iteration-space normalization —
//! has *negative* slack and collapses to the single point `i_w + 1`
//! (Fig. 6(b)).
//!
//! Producers are resolved through the exact affine index
//! ([`crate::polyhedral::ProducerIndex`]) where ranges match exactly, and
//! through interval-overlap profiling otherwise — mirroring the paper's
//! Omega-library / profiling-tool split.

use std::collections::HashMap;

use sdds_storage::{FileId, StripingLayout};

use crate::error::CompileError;
use crate::ir::{IoDirection, ProgramError};
use crate::polyhedral::ProducerIndex;
use crate::signature::Signature;
use crate::trace::{IoInstance, ProgramTrace};

/// An access together with its slack window and signature — the scheduling
/// algorithm's input (`a.b`, `a.e`, `a.g`, `a.id` in Fig. 11's notation).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulableAccess {
    /// Index of this access in the analysis output (stable identifier).
    pub index: usize,
    /// The underlying I/O instance.
    pub io: IoInstance,
    /// First slot at which the access may execute (`a.b`).
    pub begin: u32,
    /// Last slot at which the access may start (`a.e`).
    pub end: u32,
    /// The access signature over the I/O nodes.
    pub signature: Signature,
    /// The producing write as `(process, slot)`, if the data is produced
    /// during the program (the runtime scheduler checks the producer's
    /// local time before fetching remote-produced data, §III).
    pub producer: Option<(usize, u32)>,
    /// `false` for writes (fixed at their original slot) and for reads
    /// whose slack has length 1.
    pub movable: bool,
}

impl SchedulableAccess {
    /// Slack length in slots (`a.e − a.b + 1`).
    pub fn slack_len(&self) -> u32 {
        self.end - self.begin + 1
    }

    /// Returns `true` if this is a read access.
    pub fn is_read(&self) -> bool {
        self.io.direction == IoDirection::Read
    }
}

/// Computes slacks and signatures for every I/O instance of a trace.
///
/// Writes are included with single-point slacks (they anchor the group
/// signatures and the θ constraint but never move); reads get the slack
/// the producer analysis yields.
///
/// # Example
///
/// ```
/// use sdds_compiler::ir::{IoDirection, Program};
/// use sdds_compiler::{analyze_slacks, SlotGranularity};
/// use sdds_storage::{FileId, StripingLayout};
///
/// let mut p = Program::new("example", 1);
/// let f = p.add_file(FileId(0), 1 << 20);
/// p.push_loop("i", 0, 3, |b| {
///     b.io(IoDirection::Write, f, |e| e.term("i", 65_536), 65_536);
/// });
/// p.push_loop("j", 0, 3, |b| {
///     b.io(IoDirection::Read, f, |e| e.term("j", 65_536), 65_536);
/// });
/// let trace = p.trace(SlotGranularity::unit()).unwrap();
/// let accesses = analyze_slacks(&trace, &StripingLayout::paper_defaults()).unwrap();
/// // Block i is written at slot i and read back at slot 4 + i.
/// let read0 = accesses.iter().find(|a| a.is_read() && a.io.offset == 0).unwrap();
/// assert_eq!((read0.begin, read0.end), (1, 4));
/// ```
///
/// # Errors
///
/// Returns a [`CompileError`] when the trace is internally inconsistent:
/// an instance referencing a process or slot outside the trace, or a
/// zero-length access.
pub fn analyze_slacks(
    trace: &ProgramTrace,
    layout: &StripingLayout,
) -> Result<Vec<SchedulableAccess>, CompileError> {
    let nprocs = trace.processes.len();
    for io in trace.all_ios() {
        if io.proc >= nprocs {
            return Err(CompileError::ProcOutOfRange {
                proc: io.proc,
                nprocs,
            });
        }
        if io.slot >= trace.total_slots {
            return Err(CompileError::SlotOutOfRange {
                slot: io.slot,
                total_slots: trace.total_slots,
            });
        }
        if io.len == 0 {
            return Err(CompileError::Program(ProgramError::EmptyAccess(io.call)));
        }
    }
    let exact = ProducerIndex::build(trace);
    let overlap = OverlapIndex::build(trace);
    let last_slot = trace.total_slots.saturating_sub(1);

    let mut out = Vec::with_capacity(trace.io_count());
    for io in trace.all_ios() {
        let index = out.len();
        let signature = Signature::of_range(layout, io.file, io.offset, io.len);
        let access = match io.direction {
            IoDirection::Write => SchedulableAccess {
                index,
                io: *io,
                begin: io.slot,
                end: io.slot,
                signature,
                producer: None,
                movable: false,
            },
            IoDirection::Read => {
                let producer = resolve_producer(io, &exact, &overlap);
                let (begin, end, producer) = match producer {
                    Producer::Before(w, q) => ((w + 1).min(last_slot), io.slot, Some((q, w))),
                    Producer::AtOrAfter(w, q) => {
                        // Negative slack: the read waits and issues at w+1.
                        let point = (w + 1).min(last_slot);
                        (point, point, Some((q, w)))
                    }
                    Producer::None => (0, io.slot, None),
                };
                let end = end.max(begin);
                SchedulableAccess {
                    index,
                    io: *io,
                    begin,
                    end,
                    signature,
                    producer,
                    movable: end > begin,
                }
            }
        };
        out.push(access);
    }
    Ok(out)
}

enum Producer {
    Before(u32, usize),
    AtOrAfter(u32, usize),
    None,
}

fn resolve_producer(io: &IoInstance, exact: &ProducerIndex, overlap: &OverlapIndex) -> Producer {
    // Affine fast path: ranges that match a written range exactly.
    if exact.has_writer(io) {
        if let Some((w, q)) = exact.last_exact_writer_before(io) {
            return Producer::Before(w, q);
        }
        if let Some((w, q)) = exact.first_exact_writer_at_or_after(io) {
            return Producer::AtOrAfter(w, q);
        }
    }
    // Profiling path: interval overlap.
    match overlap.last_overlapping_writer_before(io) {
        Some((w, q)) => Producer::Before(w, q),
        None => match overlap.first_overlapping_writer_at_or_after(io) {
            Some((w, q)) => Producer::AtOrAfter(w, q),
            None => Producer::None,
        },
    }
}

/// Per-file interval index over writes for the profiling path.
#[derive(Debug)]
struct OverlapIndex {
    /// file -> writes sorted by offset: (offset, len, slot, proc).
    by_file: HashMap<FileId, Vec<(u64, u64, u32, usize)>>,
    /// file -> longest write length (bounds the overlap scan window).
    max_len: HashMap<FileId, u64>,
}

impl OverlapIndex {
    fn build(trace: &ProgramTrace) -> Self {
        let mut by_file: HashMap<FileId, Vec<(u64, u64, u32, usize)>> = HashMap::new();
        let mut max_len: HashMap<FileId, u64> = HashMap::new();
        for io in trace.all_ios() {
            if io.direction == IoDirection::Write {
                by_file
                    .entry(io.file)
                    .or_default()
                    .push((io.offset, io.len, io.slot, io.proc));
                let m = max_len.entry(io.file).or_insert(0);
                *m = (*m).max(io.len);
            }
        }
        for writes in by_file.values_mut() {
            writes.sort_unstable();
        }
        OverlapIndex { by_file, max_len }
    }

    fn overlapping<'a>(
        &'a self,
        io: &'a IoInstance,
    ) -> impl Iterator<Item = (u64, u64, u32, usize)> + 'a {
        let writes = self.by_file.get(&io.file).map(Vec::as_slice).unwrap_or(&[]);
        let window = self.max_len.get(&io.file).copied().unwrap_or(0);
        // Writes starting before (offset + len) can overlap; writes
        // starting earlier than (offset - window) cannot reach us.
        let lo = io.offset.saturating_sub(window);
        let start = writes.partition_point(|&(o, _, _, _)| o < lo);
        writes[start..]
            .iter()
            .take_while(move |&&(o, _, _, _)| o < io.offset + io.len)
            .copied()
            .filter(move |&(o, l, _, _)| o + l > io.offset)
    }

    fn last_overlapping_writer_before(&self, io: &IoInstance) -> Option<(u32, usize)> {
        self.overlapping(io)
            .filter(|&(_, _, slot, _)| slot < io.slot)
            .map(|(_, _, slot, proc)| (slot, proc))
            .max_by_key(|&(slot, _)| slot)
    }

    fn first_overlapping_writer_at_or_after(&self, io: &IoInstance) -> Option<(u32, usize)> {
        self.overlapping(io)
            .filter(|&(_, _, slot, _)| slot >= io.slot)
            .map(|(_, _, slot, proc)| (slot, proc))
            .min_by_key(|&(slot, _)| slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IoDirection, Program};
    use crate::trace::SlotGranularity;

    const KB: u64 = 1024;
    const STRIPE: u64 = 64 * KB;

    fn layout() -> StripingLayout {
        StripingLayout::paper_defaults()
    }

    fn trace_of(p: &Program) -> ProgramTrace {
        p.trace(SlotGranularity::unit()).unwrap()
    }

    #[test]
    fn input_reads_have_full_prefix_slack() {
        let mut p = Program::new("inputs", 1);
        let f = p.add_file(FileId(0), 8 * STRIPE);
        p.push_loop("i", 0, 7, move |b| {
            b.io(IoDirection::Read, f, |e| e.term("i", STRIPE as i64), STRIPE);
        });
        let acc = analyze_slacks(&trace_of(&p), &layout()).unwrap();
        for a in &acc {
            assert_eq!(a.begin, 0);
            assert_eq!(a.end, a.io.slot);
            assert_eq!(a.producer, None);
            if a.io.slot > 0 {
                assert!(a.movable);
            }
        }
    }

    #[test]
    fn produced_reads_start_after_writer() {
        let mut p = Program::new("pc", 1);
        let f = p.add_file(FileId(0), 4 * STRIPE);
        p.push_loop("i", 0, 3, move |b| {
            b.io(
                IoDirection::Write,
                f,
                |e| e.term("i", STRIPE as i64),
                STRIPE,
            );
        });
        p.push_loop("j", 0, 3, move |b| {
            b.io(IoDirection::Read, f, |e| e.term("j", STRIPE as i64), STRIPE);
        });
        let acc = analyze_slacks(&trace_of(&p), &layout()).unwrap();
        let reads: Vec<&SchedulableAccess> = acc.iter().filter(|a| a.is_read()).collect();
        for r in reads {
            let (_, w) = r.producer.expect("produced");
            assert_eq!(r.begin, w + 1);
            assert_eq!(r.end, r.io.slot);
            assert_eq!(w, r.io.offset as u32 / STRIPE as u32);
        }
    }

    #[test]
    fn writes_are_fixed() {
        let mut p = Program::new("w", 1);
        let f = p.add_file(FileId(0), 4 * STRIPE);
        p.push_loop("i", 0, 3, move |b| {
            b.io(
                IoDirection::Write,
                f,
                |e| e.term("i", STRIPE as i64),
                STRIPE,
            );
        });
        let acc = analyze_slacks(&trace_of(&p), &layout()).unwrap();
        for a in &acc {
            assert!(!a.movable);
            assert_eq!(a.begin, a.end);
            assert_eq!(a.begin, a.io.slot);
            assert_eq!(a.slack_len(), 1);
        }
    }

    #[test]
    fn negative_slack_collapses_to_writer_plus_one() {
        // Each process writes its own block i at slot i and, in the same
        // slot, reads the block the *other* process writes at that slot —
        // so every read's producer executes at (not before) the read's
        // normalized iteration: the Fig. 6(b) negative-slack case.
        let mut prog = Program::new("neg", 2);
        let file = prog.add_file(FileId(0), 8 * STRIPE);
        prog.push_loop("i", 0, 3, move |b| {
            // Process 0 (p=0): writes block i at slot i.
            // Process 1 (p=1): the same call becomes a no-op region far
            // away; handled by reading instead.
            b.io(
                IoDirection::Write,
                file,
                |e| e.term("i", STRIPE as i64).term("p", 4 * STRIPE as i64),
                STRIPE,
            );
            // Every process reads block (i) of the *other* region:
            // p=0 reads blocks 4+i (written by p=1 at slot i),
            // p=1 reads blocks i (written by p=0 at slot i).
            b.io(
                IoDirection::Read,
                file,
                |e| {
                    e.term("i", STRIPE as i64)
                        .term("p", -(4 * STRIPE as i64))
                        .plus(4 * STRIPE as i64)
                },
                STRIPE,
            );
        });
        let acc = analyze_slacks(&trace_of(&prog), &layout()).unwrap();
        // Reads and writes of the same block share slot i: producer slot ==
        // read slot → negative slack → point i_w + 1, immovable.
        for a in acc.iter().filter(|a| a.is_read()) {
            let (_, w) = a.producer.expect("produced");
            assert_eq!(w, a.io.slot, "write and read share the slot");
            assert_eq!(a.begin, a.end);
            assert_eq!(a.begin, (w + 1).min(3));
            assert!(!a.movable);
        }
    }

    #[test]
    fn partial_overlap_resolved_by_profiling_path() {
        // A large write covers two later small reads (ranges differ, so the
        // exact index cannot resolve them).
        let mut p = Program::new("partial", 1);
        let f = p.add_file(FileId(0), 4 * STRIPE);
        p.push_loop("i", 0, 0, move |b| {
            b.io(IoDirection::Write, f, |e| e, 2 * STRIPE);
        });
        p.push_loop("j", 0, 1, move |b| {
            b.io(IoDirection::Read, f, |e| e.term("j", STRIPE as i64), STRIPE);
        });
        let acc = analyze_slacks(&trace_of(&p), &layout()).unwrap();
        for a in acc.iter().filter(|a| a.is_read()) {
            assert_eq!(a.producer.map(|p| p.1), Some(0));
            assert_eq!(a.begin, 1);
        }
    }

    #[test]
    fn signatures_come_from_striping() {
        let mut p = Program::new("sig", 1);
        let f = p.add_file(FileId(0), 16 * STRIPE);
        p.push_io(IoDirection::Read, f, |e| e, 3 * STRIPE);
        let acc = analyze_slacks(&trace_of(&p), &layout()).unwrap();
        assert_eq!(acc[0].signature.nodes().len(), 3);
    }

    #[test]
    fn cross_process_producer_found() {
        // Process 0 writes at slot 0..3; process 1 reads p0's blocks later
        // (slots 4..7 via a second loop).
        let mut p = Program::new("xproc", 2);
        let f = p.add_file(FileId(0), 8 * STRIPE);
        p.push_loop("i", 0, 3, move |b| {
            b.io(
                IoDirection::Write,
                f,
                |e| e.term("i", STRIPE as i64).term("p", 4 * STRIPE as i64),
                STRIPE,
            );
        });
        p.push_loop("j", 0, 3, move |b| {
            // Read the other process's block j.
            b.io(
                IoDirection::Read,
                f,
                |e| {
                    e.term("j", STRIPE as i64)
                        .term("p", -(4 * STRIPE as i64))
                        .plus(4 * STRIPE as i64)
                },
                STRIPE,
            );
        });
        let acc = analyze_slacks(&trace_of(&p), &layout()).unwrap();
        for a in acc.iter().filter(|a| a.is_read()) {
            let (_, w) = a.producer.expect("cross-process producer");
            assert_eq!(w as u64, a.io.offset % (4 * STRIPE) / STRIPE);
            assert!(a.begin == w + 1 && a.end == a.io.slot);
        }
    }
}
